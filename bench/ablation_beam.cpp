// Ablation: the offline-optimal planner's beam width (our substitution for
// the paper's CPLEX solve of QOE_MAX, see DESIGN.md). Sweeps the beam and
// reports plan quality and runtime; on small instances it also compares
// against exhaustive ground truth. Expected shape: quality saturates by a
// beam of ~512-1024 while runtime grows linearly — justifying the default.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  if (options.traces > 40) options.traces = 40;  // planner-heavy bench
  bench::Experiment experiment;

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kHsdpa, options.traces, options.duration_s,
      options.seed);

  std::printf("=== Ablation: planner beam width (%zu HSDPA traces) ===\n\n",
              options.traces);

  // Ground truth on small instances: 6-chunk video, exhaustive search.
  {
    const auto small =
        media::VideoManifest::cbr(6, 4.0, {350.0, 1000.0, 3000.0}, "small");
    core::PlannerConfig config;
    config.continuous_relaxation = false;
    const core::OfflineOptimalPlanner planner(small, experiment.qoe,
                                              experiment.session, config);
    std::size_t matches = 0;
    for (const auto& trace : traces) {
      const double beam = planner.plan(trace).qoe;
      const double exact = planner.plan_exhaustive(trace).qoe;
      if (std::abs(beam - exact) < 1e-6) ++matches;
    }
    std::printf("exhaustive check (6-chunk video): beam == exact on %zu/%zu "
                "traces\n\n",
                matches, traces.size());
  }

  struct Row {
    std::size_t beam;
    double mean_qoe;
    double ms_per_trace;
  };
  std::vector<Row> rows;
  for (const std::size_t beam : {64ul, 256ul, 1024ul, 4096ul}) {
    core::PlannerConfig config;
    config.beam_width = beam;
    const core::OfflineOptimalPlanner planner(experiment.manifest,
                                              experiment.qoe,
                                              experiment.session, config);
    util::RunningStats qoe_stats;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& trace : traces) {
      qoe_stats.add(planner.plan(trace).qoe);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    rows.push_back({beam, qoe_stats.mean(),
                    std::chrono::duration<double, std::milli>(elapsed).count() /
                        static_cast<double>(traces.size())});
  }

  const double reference = rows.back().mean_qoe;
  std::printf("%8s %16s %14s %14s\n", "beam", "mean QoE(OPT)", "vs widest",
              "time/trace ms");
  for (const Row& row : rows) {
    std::printf("%8zu %16.1f %13.3f%% %14.1f\n", row.beam, row.mean_qoe,
                100.0 * (row.mean_qoe - reference) /
                    std::max(1.0, std::abs(reference)),
                row.ms_per_trace);
  }
  return 0;
}
