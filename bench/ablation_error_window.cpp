// Ablation: RobustMPC's error-tracking window (Section 7.1.2 uses the max
// absolute percentage error "of the past 5 chunks"). Sweeps the window on
// the HSDPA dataset. Expected shape: window 1 barely protects (a single
// good chunk resets the bound), very long windows over-deflate the forecast
// and sacrifice bitrate; a handful of chunks balances both — supporting the
// paper's choice of 5.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mpc_controller.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kHsdpa, options.traces, options.duration_s,
      options.seed);
  const auto optimal = bench::compute_optimal_qoe(traces, experiment);

  std::printf(
      "=== Ablation: RobustMPC error window on HSDPA (%zu traces) ===\n\n",
      options.traces);
  std::printf("%8s %12s %12s %12s %12s\n", "window", "median nQoE",
              "mean nQoE", "bitrate", "rebuffer_s");

  for (const std::size_t window : {1ul, 2ul, 3ul, 5ul, 8ul, 12ul, 20ul}) {
    core::MpcConfig config;
    config.robust = true;
    config.error_window = window;
    core::MpcController controller(experiment.manifest, experiment.qoe,
                                   config);
    predict::HarmonicMeanPredictor predictor(5);
    util::Cdf n_qoe;
    util::RunningStats bitrate;
    util::RunningStats rebuffer;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto result = sim::simulate(traces[i], experiment.manifest,
                                        experiment.qoe, experiment.session,
                                        controller, predictor);
      if (optimal[i] > 0.0) {
        n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
      }
      bitrate.add(result.average_bitrate_kbps);
      rebuffer.add(result.total_rebuffer_s);
    }
    std::printf("%8zu %12.4f %12.4f %12.0f %12.2f\n", window, n_qoe.median(),
                n_qoe.mean(), bitrate.mean(), rebuffer.mean());
  }
  return 0;
}
