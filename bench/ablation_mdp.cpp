// Ablation: the MDP control strawman of Section 4.1. The paper rejects MDP
// because it "has a strong assumption that throughput dynamics follow
// Markov processes and it is unclear if this holds in practice". This bench
// tests that argument empirically: on the Markov synthetic dataset (where
// the assumption is exactly right) a fitted MDP policy should be
// competitive with MPC; on HSDPA-like traces (log-AR(1) with fades — not a
// 16-state chain) the model mismatch should cost it.
#include <cstdio>

#include "bench_common.hpp"
#include "core/mdp_controller.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;
  core::AlgorithmOptions algo_options;
  algo_options.fastmpc_table = core::default_fastmpc_table(
      experiment.manifest, experiment.qoe,
      experiment.session.buffer_capacity_s);

  std::printf("=== Ablation: MDP value iteration vs MPC (%zu traces) ===\n\n",
              options.traces);

  for (const trace::DatasetKind kind :
       {trace::DatasetKind::kMarkov, trace::DatasetKind::kHsdpa}) {
    // Train the throughput Markov model on a disjoint set of traces from
    // the same distribution (different seed).
    core::ThroughputMarkovModel model(16, 50.0, 10000.0);
    const auto training =
        trace::make_dataset(kind, 50, options.duration_s, options.seed + 1);
    model.fit(training, experiment.manifest.chunk_duration_s());
    core::MdpController mdp(experiment.manifest, experiment.qoe, model, {});

    const auto traces = trace::make_dataset(kind, options.traces,
                                            options.duration_s, options.seed);
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    std::printf("--- %s dataset ---\n", trace::dataset_name(kind));
    std::printf("%-12s %12s %12s %12s\n", "algorithm", "median nQoE",
                "mean nQoE", "rebuffer_s");

    // MDP row (shares the harmonic-mean predictor interface; it only reads
    // the newest measurement).
    {
      predict::HarmonicMeanPredictor predictor(5);
      util::Cdf n_qoe;
      util::RunningStats rebuffer;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        const auto result = sim::simulate(
            traces[i], experiment.manifest, experiment.qoe, experiment.session,
            mdp, predictor);
        if (optimal[i] > 0.0) {
          n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
        }
        rebuffer.add(result.total_rebuffer_s);
      }
      std::printf("%-12s %12.4f %12.4f %12.2f\n", "MDP", n_qoe.median(),
                  n_qoe.mean(), rebuffer.mean());
    }

    for (const core::Algorithm algorithm :
         {core::Algorithm::kMpc, core::Algorithm::kRobustMpc,
          core::Algorithm::kBufferBased}) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::Cdf n_qoe;
      util::RunningStats rebuffer;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
        rebuffer.add(outcomes[i].result.total_rebuffer_s);
      }
      std::printf("%-12s %12.4f %12.4f %12.2f\n",
                  core::algorithm_name(algorithm), n_qoe.median(),
                  n_qoe.mean(), rebuffer.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: on the Markov dataset (where the MDP's model is\n"
      "exactly right) MDP beats plain MPC and rivals RobustMPC. On HSDPA it\n"
      "stays competitive in median when trained in-distribution but shows\n"
      "heavier tails than RobustMPC — and unlike MPC it needs offline\n"
      "training per network class, the deployment cost behind the paper's\n"
      "Section 4.1 choice.\n");
  return 0;
}
