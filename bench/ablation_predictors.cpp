// Ablation: the throughput predictor feeding MPC (Section 7.1.2 picks the
// harmonic mean of the last 5 chunks "because it is robust to outliers").
// Sweeps estimator family and window for RobustMPC on both measured-like
// datasets. Expected shape: harmonic mean beats the arithmetic mean (which
// over-estimates after bursts); very short windows are noisy, very long
// windows lag.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/mpc_controller.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  struct Candidate {
    const char* name;
    std::unique_ptr<predict::ThroughputPredictor> predictor;
  };

  for (const trace::DatasetKind kind :
       {trace::DatasetKind::kFcc, trace::DatasetKind::kHsdpa}) {
    const auto traces = trace::make_dataset(kind, options.traces,
                                            options.duration_s, options.seed);
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    std::vector<Candidate> candidates;
    candidates.push_back(
        {"harmonic-3", std::make_unique<predict::HarmonicMeanPredictor>(3)});
    candidates.push_back(
        {"harmonic-5", std::make_unique<predict::HarmonicMeanPredictor>(5)});
    candidates.push_back(
        {"harmonic-10", std::make_unique<predict::HarmonicMeanPredictor>(10)});
    candidates.push_back(
        {"arith-5", std::make_unique<predict::SlidingMeanPredictor>(5)});
    candidates.push_back(
        {"ewma-0.4", std::make_unique<predict::EwmaPredictor>(0.4)});
    candidates.push_back(
        {"ewma-0.8", std::make_unique<predict::EwmaPredictor>(0.8)});

    std::printf("--- RobustMPC on %s (%zu traces) ---\n",
                trace::dataset_name(kind), options.traces);
    std::printf("%-14s %12s %12s %12s\n", "predictor", "median nQoE",
                "mean nQoE", "rebuffer_s");
    for (Candidate& candidate : candidates) {
      core::MpcConfig config;
      config.robust = true;
      core::MpcController controller(experiment.manifest, experiment.qoe,
                                     config);
      util::Cdf n_qoe;
      util::RunningStats rebuffer;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        const auto result = sim::simulate(
            traces[i], experiment.manifest, experiment.qoe, experiment.session,
            controller, *candidate.predictor);
        if (optimal[i] > 0.0) {
          n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
        }
        rebuffer.add(result.total_rebuffer_s);
      }
      std::printf("%-14s %12.4f %12.4f %12.2f\n", candidate.name,
                  n_qoe.median(), n_qoe.mean(), rebuffer.mean());
    }
    std::printf("\n");
  }
  return 0;
}
