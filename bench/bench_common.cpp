#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/strings.hpp"

namespace abr::bench {

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next_value = [&](double& out) {
      if (i + 1 >= argc || !util::parse_double(argv[i + 1], out)) {
        std::fprintf(stderr, "missing/invalid value for %s\n", argv[i]);
        std::exit(2);
      }
      ++i;
    };
    double value = 0.0;
    if (arg == "--traces") {
      next_value(value);
      options.traces = static_cast<std::size_t>(value);
    } else if (arg == "--seed") {
      next_value(value);
      options.seed = static_cast<std::uint64_t>(value);
    } else if (arg == "--duration") {
      next_value(value);
      options.duration_s = value;
    } else if (arg == "--help") {
      std::printf(
          "options: --traces N (default 150)  --seed S  --duration D\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return options;
}

std::vector<SessionOutcome> run_dataset(
    core::Algorithm algorithm,
    const std::vector<trace::ThroughputTrace>& traces,
    const Experiment& experiment, const core::AlgorithmOptions& options,
    const std::vector<double>& optimal_qoe) {
  auto instance = core::make_algorithm(algorithm, experiment.manifest,
                                       experiment.qoe, options);
  std::vector<SessionOutcome> outcomes;
  outcomes.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    SessionOutcome outcome;
    outcome.result =
        sim::simulate(traces[i], experiment.manifest, experiment.qoe,
                      experiment.session, *instance.controller,
                      *instance.predictor);
    if (!optimal_qoe.empty()) {
      outcome.optimal_qoe = optimal_qoe[i];
      outcome.normalized_qoe =
          core::normalized_qoe(outcome.result.qoe, optimal_qoe[i]);
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

std::vector<double> compute_optimal_qoe(
    const std::vector<trace::ThroughputTrace>& traces,
    const Experiment& experiment) {
  const core::OfflineOptimalPlanner planner(experiment.manifest,
                                            experiment.qoe,
                                            experiment.session);
  std::vector<double> optimal(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    optimal[i] = planner.plan(traces[i]).qoe;
  }
  return optimal;
}

void print_cdf_curve(const std::string& label, const util::Cdf& cdf,
                     double lo, double hi, std::size_t points) {
  std::printf("# CDF %s\n", label.c_str());
  for (const auto& [x, fraction] : cdf.curve(lo, hi, points)) {
    std::printf("%-28s %10.3f %8.4f\n", label.c_str(), x, fraction);
  }
}

void print_summary_header(const std::string& metric) {
  std::printf("%-14s %10s %10s %10s %10s %10s %10s   (%s)\n", "algorithm",
              "p10", "p25", "median", "p75", "p90", "mean", metric.c_str());
  print_table_rule(7);
}

void print_summary_row(const std::string& label, const util::Cdf& cdf) {
  if (cdf.empty()) {
    std::printf("%-14s (no samples)\n", label.c_str());
    return;
  }
  std::printf("%-14s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
              label.c_str(), cdf.percentile(10), cdf.percentile(25),
              cdf.median(), cdf.percentile(75), cdf.percentile(90),
              cdf.mean());
}

void print_table_rule(std::size_t columns) {
  for (std::size_t i = 0; i < 14 + columns * 11; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace abr::bench
