#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "core/offline_optimal.hpp"
#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "sim/player.hpp"
#include "trace/generators.hpp"
#include "util/stats.hpp"

namespace abr::bench {

/// Command-line knobs shared by every experiment binary.
///
///   --traces N      traces per dataset (default 150; the paper uses 1000 —
///                   pass --traces 1000 to match at ~6x the runtime)
///   --seed S        dataset RNG seed (default 20150817, the paper's
///                   publication date)
///   --duration D    trace length in seconds (default 320)
struct BenchOptions {
  std::size_t traces = 150;
  std::uint64_t seed = 20150817;
  double duration_s = 320.0;

  static BenchOptions parse(int argc, char** argv);
};

/// The paper's standard experiment fixture: Envivio video, balanced QoE
/// weights, Bmax = 30 s.
struct Experiment {
  media::VideoManifest manifest = media::VideoManifest::envivio_default();
  qoe::QoeModel qoe{media::QualityFunction::identity(),
                    qoe::QoeWeights::balanced()};
  sim::SessionConfig session;
};

/// Per-(algorithm, trace) outcome enriched with the trace's offline optimum.
struct SessionOutcome {
  sim::SessionResult result;
  double optimal_qoe = 0.0;
  double normalized_qoe = 0.0;
};

/// Runs one algorithm over a whole dataset. `optimal_qoe[i]` must align with
/// traces[i] (pass an empty vector to skip normalization).
std::vector<SessionOutcome> run_dataset(
    core::Algorithm algorithm, const std::vector<trace::ThroughputTrace>& traces,
    const Experiment& experiment, const core::AlgorithmOptions& options,
    const std::vector<double>& optimal_qoe);

/// Computes QoE(OPT) for every trace with the default beam planner.
std::vector<double> compute_optimal_qoe(
    const std::vector<trace::ThroughputTrace>& traces,
    const Experiment& experiment);

/// Prints a CDF as rows "x F(x)" at `points` evenly spaced x values, in a
/// column labelled `label` (the textual equivalent of one figure line).
void print_cdf_curve(const std::string& label, const util::Cdf& cdf,
                     double lo, double hi, std::size_t points);

/// Prints one summary row: label, p10/p25/median/p75/p90, mean.
void print_summary_row(const std::string& label, const util::Cdf& cdf);
void print_summary_header(const std::string& metric);

/// Markdown-style table separator helpers.
void print_table_rule(std::size_t columns);

}  // namespace abr::bench
