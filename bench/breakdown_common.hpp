#pragma once

// Shared implementation of Figures 9 and 10: the per-metric breakdown
// (average bitrate, average per-chunk bitrate change, total rebuffer time)
// of every algorithm over one dataset.

#include <cstdio>

#include "bench_common.hpp"

namespace abr::bench {

inline int run_breakdown(int argc, char** argv, trace::DatasetKind kind,
                         const char* figure) {
  const BenchOptions options = BenchOptions::parse(argc, argv);
  Experiment experiment;
  core::AlgorithmOptions algo_options;
  algo_options.fastmpc_table = core::default_fastmpc_table(
      experiment.manifest, experiment.qoe,
      experiment.session.buffer_capacity_s);

  std::printf("=== %s: per-metric breakdown, %s dataset (%zu traces) ===\n\n",
              figure, trace::dataset_name(kind), options.traces);
  const auto traces =
      make_dataset(kind, options.traces, options.duration_s, options.seed);

  struct Row {
    util::Cdf bitrate;
    util::Cdf change;
    util::Cdf rebuffer;
    double zero_rebuffer_fraction = 0.0;
  };
  std::vector<std::pair<std::string, Row>> rows;

  for (const core::Algorithm algorithm : core::all_algorithms()) {
    const auto outcomes =
        run_dataset(algorithm, traces, experiment, algo_options, {});
    Row row;
    std::size_t zero_rebuffer = 0;
    for (const SessionOutcome& outcome : outcomes) {
      row.bitrate.add(outcome.result.average_bitrate_kbps);
      row.change.add(outcome.result.average_bitrate_change_kbps);
      row.rebuffer.add(outcome.result.total_rebuffer_s);
      if (outcome.result.total_rebuffer_s <= 1e-9) ++zero_rebuffer;
    }
    row.zero_rebuffer_fraction =
        static_cast<double>(zero_rebuffer) / static_cast<double>(traces.size());
    rows.emplace_back(core::algorithm_name(algorithm), std::move(row));
  }

  std::printf("Average bitrate (kbps):\n");
  print_summary_header("kbps");
  for (const auto& [name, row] : rows) print_summary_row(name, row.bitrate);

  std::printf("\nAverage bitrate change (kbps/chunk):\n");
  print_summary_header("kbps/chunk");
  for (const auto& [name, row] : rows) print_summary_row(name, row.change);

  std::printf("\nTotal rebuffer time (s):\n");
  print_summary_header("seconds");
  for (const auto& [name, row] : rows) print_summary_row(name, row.rebuffer);

  std::printf("\nZero-rebuffer session fraction:\n");
  for (const auto& [name, row] : rows) {
    std::printf("%-14s %6.1f%%\n", name.c_str(),
                100.0 * row.zero_rebuffer_fraction);
  }

  std::printf("\nCDF curves:\n");
  for (const auto& [name, row] : rows) {
    print_cdf_curve(name + ":bitrate", row.bitrate, 0.0, 3000.0, 13);
    print_cdf_curve(name + ":change", row.change, 0.0, 1500.0, 13);
    print_cdf_curve(name + ":rebuffer", row.rebuffer, 0.0, 30.0, 13);
  }
  return 0;
}

}  // namespace abr::bench
