// Reproduces Figure 7: characteristics of the three evaluation datasets —
// CDFs of per-trace mean throughput, standard deviation of throughput, and
// average percentage prediction error of the harmonic-mean predictor.
#include <cstdio>

#include "bench_common.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  std::printf("=== Figure 7: dataset characteristics (%zu traces each) ===\n\n",
              options.traces);

  for (const trace::DatasetKind kind :
       {trace::DatasetKind::kFcc, trace::DatasetKind::kHsdpa,
        trace::DatasetKind::kMarkov}) {
    const auto traces = trace::make_dataset(kind, options.traces,
                                            options.duration_s, options.seed);
    util::Cdf mean_cdf;
    util::Cdf stddev_cdf;
    util::Cdf error_cdf;
    predict::HarmonicMeanPredictor predictor(5);
    for (const auto& trace : traces) {
      mean_cdf.add(trace.mean_kbps());
      stddev_cdf.add(trace.stddev_kbps());
      error_cdf.add(predict::average_prediction_error(trace, predictor, 4.0,
                                                      trace.period_s()));
    }
    std::printf("--- %s ---\n", trace::dataset_name(kind));
    bench::print_summary_header("kbps / error");
    bench::print_summary_row("mean tput", mean_cdf);
    bench::print_summary_row("stddev tput", stddev_cdf);
    bench::print_summary_row("avg pred err", error_cdf);
    std::printf("\n");
    bench::print_cdf_curve(std::string(trace::dataset_name(kind)) + ":mean",
                           mean_cdf, 0.0, 5000.0, 11);
    bench::print_cdf_curve(std::string(trace::dataset_name(kind)) + ":stddev",
                           stddev_cdf, 0.0, 2000.0, 11);
    bench::print_cdf_curve(std::string(trace::dataset_name(kind)) + ":prederr",
                           error_cdf, -0.1, 0.4, 11);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 7): FCC most stable; HSDPA most variable\n"
      "with the heaviest prediction-error tail; Synthetic in between.\n");
  return 0;
}
