// Reproduces Figure 8: CDF of normalized QoE for RB, BB, FastMPC,
// RobustMPC, dash.js, and FESTIVE on the FCC, HSDPA, and Synthetic
// datasets, plus the median-improvement headlines of Section 7.2.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;
  core::AlgorithmOptions algo_options;
  algo_options.fastmpc_table = core::default_fastmpc_table(
      experiment.manifest, experiment.qoe,
      experiment.session.buffer_capacity_s);

  std::printf("=== Figure 8: normalized QoE CDFs (%zu traces/dataset) ===\n\n",
              options.traces);

  for (const trace::DatasetKind kind :
       {trace::DatasetKind::kFcc, trace::DatasetKind::kHsdpa,
        trace::DatasetKind::kMarkov}) {
    const auto traces = trace::make_dataset(kind, options.traces,
                                            options.duration_s, options.seed);
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    std::printf("--- %s dataset ---\n", trace::dataset_name(kind));
    bench::print_summary_header("normalized QoE");

    std::map<core::Algorithm, double> medians;
    std::map<core::Algorithm, util::Cdf> cdfs;
    for (const core::Algorithm algorithm : core::all_algorithms()) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::Cdf cdf;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) cdf.add(outcomes[i].normalized_qoe);
      }
      bench::print_summary_row(core::algorithm_name(algorithm), cdf);
      medians[algorithm] = cdf.median();
      cdfs[algorithm] = cdf;
    }

    // Headline deltas (Section 7.2): RobustMPC vs best non-MPC and dash.js.
    const double robust = medians[core::Algorithm::kRobustMpc];
    const double best_non_mpc =
        std::max({medians[core::Algorithm::kRateBased],
                  medians[core::Algorithm::kBufferBased],
                  medians[core::Algorithm::kFestive]});
    const double dashjs = medians[core::Algorithm::kDashJs];
    std::printf(
        "\nRobustMPC median n-QoE improvement: vs best non-MPC %+.1f%%, "
        "vs dash.js %+.1f%%\n\n",
        100.0 * (robust - best_non_mpc) / std::abs(best_non_mpc),
        100.0 * (robust - dashjs) / std::abs(dashjs));

    for (auto& [algorithm, cdf] : cdfs) {
      bench::print_cdf_curve(std::string(trace::dataset_name(kind)) + ":" +
                                 core::algorithm_name(algorithm),
                             cdf, -0.5, 1.0, 13);
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig. 8): RobustMPC best median everywhere\n"
      "(~+15%% FCC, ~+10%% HSDPA vs best non-MPC); FastMPC ~= RobustMPC on\n"
      "FCC/Synthetic but loses its edge on HSDPA; dash.js far behind.\n");
  return 0;
}
