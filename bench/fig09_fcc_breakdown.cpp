// Reproduces Figure 9: detailed performance breakdown on the FCC
// (broadband) dataset. Expected shape: all algorithms see similarly low
// rebuffer time; RobustMPC matches BB/FastMPC on average bitrate with fewer
// bitrate switches; dash.js switches the most.
#include "breakdown_common.hpp"

int main(int argc, char** argv) {
  return abr::bench::run_breakdown(argc, argv, abr::trace::DatasetKind::kFcc,
                                   "Figure 9");
}
