// Reproduces Figure 10: detailed performance breakdown on the HSDPA
// (mobile) dataset. Expected shape: FastMPC matches BB on bitrate but
// suffers heavy rebuffering; RobustMPC rebuffers far less (zero-rebuffer in
// ~65% of sessions vs ~40% for BB/FastMPC in the paper) at slightly lower
// average bitrate.
#include "breakdown_common.hpp"

int main(int argc, char** argv) {
  return abr::bench::run_breakdown(argc, argv, abr::trace::DatasetKind::kHsdpa,
                                   "Figure 10");
}
