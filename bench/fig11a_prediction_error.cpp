// Reproduces Figure 11a: sensitivity of n-QoE to throughput prediction
// error. The predictor is a noisy oracle (true throughput corrupted by a
// controlled average error level, Section 7.3); BB ignores predictions and
// serves as the flat reference line. Expected shape: MPC dominates at low
// error, degrades as error grows, and crosses below BB past ~25% error;
// RobustMPC degrades much more slowly.
#include <cstdio>

#include "bench_common.hpp"
#include "core/buffer_based.hpp"
#include "core/mpc_controller.hpp"
#include "core/rate_based.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);
  const auto optimal = bench::compute_optimal_qoe(traces, experiment);

  std::printf(
      "=== Figure 11a: n-QoE vs prediction error (%zu synthetic traces) "
      "===\n\n",
      options.traces);
  std::printf("%10s %12s %12s %12s %12s\n", "error", "MPC", "RobustMPC", "RB",
              "BB");

  for (const double error :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.50}) {
    struct Entry {
      const char* name;
      std::unique_ptr<sim::BitrateController> controller;
    };
    core::MpcConfig mpc_config;
    core::MpcConfig robust_config;
    robust_config.robust = true;
    std::vector<Entry> entries;
    entries.push_back({"MPC", std::make_unique<core::MpcController>(
                                  experiment.manifest, experiment.qoe,
                                  mpc_config)});
    entries.push_back({"RobustMPC", std::make_unique<core::MpcController>(
                                        experiment.manifest, experiment.qoe,
                                        robust_config)});
    entries.push_back({"RB", std::make_unique<core::RateBasedController>()});
    entries.push_back({"BB", std::make_unique<core::BufferBasedController>()});

    std::printf("%9.0f%%", error * 100.0);
    for (Entry& entry : entries) {
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (optimal[i] <= 0.0) continue;
        predict::NoisyOraclePredictor predictor(error,
                                                options.seed + 31 * i + 7);
        const auto result = sim::simulate(
            traces[i], experiment.manifest, experiment.qoe, experiment.session,
            *entry.controller, predictor);
        n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
      }
      std::printf(" %12.4f", n_qoe.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 11a): BB flat; MPC starts highest and\n"
      "falls below BB beyond ~25%% error; RobustMPC degrades more slowly.\n");
  return 0;
}
