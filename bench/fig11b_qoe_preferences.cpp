// Reproduces Figure 11b: n-QoE of MPC-OPT, FastMPC, BB, and RB under the
// three user-preference weightings (Balanced / Avoid Instability / Avoid
// Rebuffering). Expected shape: the MPC family's advantage grows with the
// instability penalty (it models the smoothness term explicitly) and
// shrinks when rebuffering dominates (BB's reservoir is a strong defence).
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);

  std::printf(
      "=== Figure 11b: n-QoE vs user QoE preference (%zu synthetic traces) "
      "===\n\n",
      options.traces);
  std::printf("%-18s %12s %12s %12s %12s\n", "preference", "MPC-OPT",
              "FastMPC", "BB", "RB");

  for (const qoe::QoePreference preference :
       {qoe::QoePreference::kBalanced, qoe::QoePreference::kAvoidInstability,
        qoe::QoePreference::kAvoidRebuffering}) {
    bench::Experiment experiment;
    experiment.qoe = qoe::QoeModel(media::QualityFunction::identity(),
                                   qoe::preset_weights(preference));
    // The FastMPC table and the offline optimum are weight-dependent:
    // rebuild both per preference.
    core::AlgorithmOptions algo_options;
    algo_options.fastmpc_table = core::default_fastmpc_table(
        experiment.manifest, experiment.qoe,
        experiment.session.buffer_capacity_s);
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    std::printf("%-18s", qoe::preference_name(preference));
    for (const core::Algorithm algorithm :
         {core::Algorithm::kMpcOpt, core::Algorithm::kFastMpc,
          core::Algorithm::kBufferBased, core::Algorithm::kRateBased}) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
      }
      std::printf(" %12.4f", n_qoe.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 11b): MPC's margin over RB/BB widens\n"
      "under AvoidInstability and narrows under AvoidRebuffering.\n");
  return 0;
}
