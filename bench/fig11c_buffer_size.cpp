// Reproduces Figure 11c: n-QoE vs playout buffer size Bmax. Expected shape:
// every algorithm improves as Bmax grows to ~25 s and then plateaus; RB is
// the least affected because its decisions never read the buffer.
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);

  std::printf("=== Figure 11c: n-QoE vs buffer size (%zu synthetic traces) ===\n\n",
              options.traces);
  std::printf("%10s %12s %12s %12s %12s\n", "Bmax (s)", "MPC-OPT", "FastMPC",
              "BB", "RB");

  // Normalize every sweep point by the optimum at the largest buffer so the
  // Bmax trend is visible (a per-point optimum would also shrink with Bmax
  // and flatten the curves).
  std::vector<double> optimal;
  {
    bench::Experiment reference;
    reference.session.buffer_capacity_s = 50.0;
    optimal = bench::compute_optimal_qoe(traces, reference);
  }

  for (const double buffer_size : {10.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0}) {
    bench::Experiment experiment;
    experiment.session.buffer_capacity_s = buffer_size;
    core::AlgorithmOptions algo_options;
    algo_options.buffer_capacity_s = buffer_size;
    algo_options.fastmpc_table = core::default_fastmpc_table(
        experiment.manifest, experiment.qoe, buffer_size);

    std::printf("%10.0f", buffer_size);
    for (const core::Algorithm algorithm :
         {core::Algorithm::kMpcOpt, core::Algorithm::kFastMpc,
          core::Algorithm::kBufferBased, core::Algorithm::kRateBased}) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
      }
      std::printf(" %12.4f", n_qoe.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 11c): improvement up to ~25 s, then\n"
      "flat; RB least affected by Bmax.\n");
  return 0;
}
