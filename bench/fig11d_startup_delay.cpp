// Reproduces Figure 11d: n-QoE (startup term excluded) vs a fixed startup
// delay Ts. Expected shape: all algorithms improve with startup time — the
// player banks more buffer before draining begins.
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);

  std::printf(
      "=== Figure 11d: n-QoE vs fixed startup delay (%zu synthetic traces) "
      "===\n\n",
      options.traces);
  std::printf("%10s %12s %12s %12s %12s\n", "Ts (s)", "MPC-OPT", "FastMPC",
              "BB", "RB");

  // Normalize every sweep point by a single reference optimum (the most
  // generous setting, Ts = 10 s) so the upward trend with Ts is visible and
  // n-QoE stays <= 1 throughout.
  std::vector<double> optimal;
  {
    bench::Experiment reference;
    reference.session.startup_policy = sim::StartupPolicy::kFixedDelay;
    reference.session.fixed_startup_delay_s = 10.0;
    reference.session.include_startup_in_qoe = false;
    optimal = bench::compute_optimal_qoe(traces, reference);
  }

  for (const double startup : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    bench::Experiment experiment;
    experiment.session.startup_policy = sim::StartupPolicy::kFixedDelay;
    experiment.session.fixed_startup_delay_s = startup;
    experiment.session.include_startup_in_qoe = false;
    core::AlgorithmOptions algo_options;
    algo_options.fastmpc_table = core::default_fastmpc_table(
        experiment.manifest, experiment.qoe,
        experiment.session.buffer_capacity_s);

    std::printf("%10.0f", startup);
    for (const core::Algorithm algorithm :
         {core::Algorithm::kMpcOpt, core::Algorithm::kFastMpc,
          core::Algorithm::kBufferBased, core::Algorithm::kRateBased}) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
      }
      std::printf(" %12.4f", n_qoe.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 11d): every algorithm's n-QoE rises\n"
      "with the allowed startup time.\n");
  return 0;
}
