// Reproduces Figure 12a: n-QoE of FastMPC vs the number of discretization
// levels (bins per dimension), with harmonic-mean and with perfect
// prediction. Expected shape: diminishing returns — ~70% of optimal at 5
// levels, ~90% at 100 levels; the perfect-prediction curve sits above the
// harmonic-mean curve, with the gap largest at coarse discretization.
#include <cstdio>

#include "bench_common.hpp"
#include "core/fastmpc_table.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);
  const auto optimal = bench::compute_optimal_qoe(traces, experiment);

  std::printf(
      "=== Figure 12a: FastMPC n-QoE vs discretization levels (%zu traces) "
      "===\n\n",
      options.traces);
  std::printf("%10s %22s %22s\n", "levels", "perfect prediction",
              "harmonic mean");

  for (const std::size_t levels : {5ul, 10ul, 50ul, 100ul, 500ul}) {
    core::FastMpcConfig config;
    config.buffer_bins = levels;
    config.throughput_bins = levels;
    config.buffer_capacity_s = experiment.session.buffer_capacity_s;
    const auto table = std::make_shared<const core::FastMpcTable>(
        core::FastMpcTable::build(experiment.manifest, experiment.qoe,
                                  config));

    double means[2] = {0.0, 0.0};
    for (int which = 0; which < 2; ++which) {
      core::FastMpcController controller(table);
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (optimal[i] <= 0.0) continue;
        std::unique_ptr<predict::ThroughputPredictor> predictor;
        if (which == 0) {
          predictor = std::make_unique<predict::PerfectPredictor>();
        } else {
          predictor = std::make_unique<predict::HarmonicMeanPredictor>(5);
        }
        const auto result = sim::simulate(
            traces[i], experiment.manifest, experiment.qoe, experiment.session,
            controller, *predictor);
        n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
      }
      means[which] = n_qoe.mean();
    }
    std::printf("%10zu %22.4f %22.4f\n", levels, means[0], means[1]);
  }
  std::printf(
      "\nExpected shape (paper Fig. 12a): rising with diminishing returns;\n"
      "perfect prediction above harmonic mean, converging at fine grids.\n");
  return 0;
}
