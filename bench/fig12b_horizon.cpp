// Reproduces Figure 12b: MPC n-QoE vs the look-ahead horizon N at oracle
// prediction error levels 10% / 15% / 20%. Expected shape: performance
// rises with the horizon and then plateaus (and can dip at long horizons
// under higher error, as predictions outrun their accuracy).
#include <cstdio>

#include "bench_common.hpp"
#include "core/mpc_controller.hpp"
#include "predict/predictor.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);
  const auto optimal = bench::compute_optimal_qoe(traces, experiment);

  std::printf("=== Figure 12b: MPC n-QoE vs look-ahead horizon (%zu traces) ===\n\n",
              options.traces);
  std::printf("%10s %14s %14s %14s\n", "horizon", "error=10%", "error=15%",
              "error=20%");

  for (std::size_t horizon = 2; horizon <= 9; ++horizon) {
    std::printf("%10zu", horizon);
    for (const double error : {0.10, 0.15, 0.20}) {
      core::MpcConfig config;
      config.horizon = horizon;
      core::MpcController controller(experiment.manifest, experiment.qoe,
                                     config);
      util::RunningStats n_qoe;
      for (std::size_t i = 0; i < traces.size(); ++i) {
        if (optimal[i] <= 0.0) continue;
        predict::NoisyOraclePredictor predictor(
            error, options.seed + 13 * i + horizon);
        const auto result = sim::simulate(
            traces[i], experiment.manifest, experiment.qoe, experiment.session,
            controller, predictor);
        n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
      }
      std::printf(" %14.4f", n_qoe.mean());
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper Fig. 12b): gains from longer horizons level\n"
      "off around N=5; higher error lowers every curve.\n");
  return 0;
}
