// Fleet-scale soak harness for the SoA shared-link engine
// (BENCH_fleet.json).
//
// Simulates a rolling-arrival fleet of N sessions on one shared link —
// joins staggered across an arrival window, every session streaming the
// same CBR ladder with a fixed rung — and reports:
//
//   - sessions/sec        (N / simulation wall time)
//   - p99 step latency    (abr_fleet_step_latency_us histogram)
//   - peak RSS            (getrusage ru_maxrss)
//   - deterministic outcome checksums (chunks, QoE sum, Jain, utilization)
//
// The deterministic metrics are gated hard against --baseline (the outcome
// of the soak is a pure function of the config); sessions/sec is gated
// loosely (--min-sessions-frac, default 0.25x baseline) so a noisy CI box
// does not flake while a real 4x regression still fails. --compare-reference
// additionally runs the reference engine on the same workload and reports
// the speedup (gated by --min-speedup when nonzero).
//
// Usage:
//   fleet_bench [--sessions N] [--engine soa|reference] [--out FILE]
//               [--baseline FILE] [--compare-reference] [--min-speedup X]
//               [--min-sessions-frac F] [--chunks N] [--chunk-duration S]
//               [--dt S] [--arrival-window-factor F] [--link-kbps-per-session K]

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "media/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/fleet_engine.hpp"
#include "sim/multiplayer.hpp"
#include "trace/throughput_trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::size_t sessions = 1000000;
  std::string engine = "soa";
  std::string out = "BENCH_fleet.json";
  std::string baseline;
  bool compare_reference = false;
  double min_speedup = 0.0;
  double min_sessions_frac = 0.25;
  std::size_t chunks = 32;
  double chunk_duration_s = 4.0;
  double dt_s = 0.02;
  double arrival_window_factor = 2.0;
  double link_kbps_per_session = 3000.0;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fleet_bench: missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--sessions") {
      options.sessions = std::stoul(next());
    } else if (flag == "--engine") {
      options.engine = next();
    } else if (flag == "--out") {
      options.out = next();
    } else if (flag == "--baseline") {
      options.baseline = next();
    } else if (flag == "--compare-reference") {
      options.compare_reference = true;
    } else if (flag == "--min-speedup") {
      options.min_speedup = std::stod(next());
    } else if (flag == "--min-sessions-frac") {
      options.min_sessions_frac = std::stod(next());
    } else if (flag == "--chunks") {
      options.chunks = std::stoul(next());
    } else if (flag == "--chunk-duration") {
      options.chunk_duration_s = std::stod(next());
    } else if (flag == "--dt") {
      options.dt_s = std::stod(next());
    } else if (flag == "--arrival-window-factor") {
      options.arrival_window_factor = std::stod(next());
    } else if (flag == "--link-kbps-per-session") {
      options.link_kbps_per_session = std::stod(next());
    } else {
      std::cerr << "fleet_bench: unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  if (options.sessions == 0 ||
      (options.engine != "soa" && options.engine != "reference")) {
    std::cerr << "fleet_bench: bad --sessions or --engine\n";
    std::exit(2);
  }
  return options;
}

/// Every session streams one fixed rung; the fleet mixes rungs round-robin.
class FixedRungController final : public abr::sim::BitrateController {
 public:
  explicit FixedRungController(std::size_t level) : level_(level) {}
  std::size_t decide(const abr::sim::AbrState&,
                     const abr::media::VideoManifest&) override {
    return level_;
  }
  std::string name() const override { return "fixed"; }

 private:
  std::size_t level_;
};

class FlatPredictor final : public abr::predict::ThroughputPredictor {
 public:
  explicit FlatPredictor(double kbps) : kbps_(kbps) {}
  std::vector<double> predict(const abr::predict::PredictionInput&,
                              std::size_t horizon) override {
    return std::vector<double>(horizon, kbps_);
  }
  std::string name() const override { return "flat"; }

 private:
  double kbps_;
};

struct SoakOutcome {
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  std::size_t total_chunks = 0;
  double qoe_sum = 0.0;
  double jain = 0.0;
  double link_utilization = 0.0;
};

SoakOutcome run_soak(const Options& options, bool soa) {
  const auto ladder = abr::media::VideoManifest::envivio_default();
  const auto manifest = abr::media::VideoManifest::cbr(
      options.chunks, options.chunk_duration_s, ladder.bitrates_kbps());
  const abr::qoe::QoeModel qoe(abr::media::QualityFunction::identity(),
                               abr::qoe::QoeWeights::balanced());
  const std::size_t n = options.sessions;
  const auto link = abr::trace::ThroughputTrace::constant(
      options.link_kbps_per_session * static_cast<double>(n), 1000.0);

  std::vector<std::unique_ptr<FixedRungController>> controllers;
  std::vector<std::unique_ptr<FlatPredictor>> predictors;
  std::vector<abr::sim::BitrateController*> controller_ptrs;
  std::vector<abr::predict::ThroughputPredictor*> predictor_ptrs;
  controllers.reserve(n);
  predictors.reserve(n);
  controller_ptrs.reserve(n);
  predictor_ptrs.reserve(n);
  const std::size_t levels = manifest.level_count();
  for (std::size_t i = 0; i < n; ++i) {
    controllers.push_back(std::make_unique<FixedRungController>(i % levels));
    predictors.push_back(
        std::make_unique<FlatPredictor>(options.link_kbps_per_session));
    controller_ptrs.push_back(controllers.back().get());
    predictor_ptrs.push_back(predictors.back().get());
  }

  abr::sim::MultiPlayerConfig config;
  config.time_step_s = options.dt_s;
  config.startup_stagger_s = options.arrival_window_factor *
                             manifest.duration_s() / static_cast<double>(n);

  const std::span<abr::sim::BitrateController* const> cs(controller_ptrs);
  const std::span<abr::predict::ThroughputPredictor* const> ps(predictor_ptrs);
  const auto start = Clock::now();
  const abr::sim::MultiPlayerResult result =
      soa ? abr::sim::simulate_shared_link_soa(link, manifest, qoe, config,
                                               cs, ps)
          : abr::sim::simulate_shared_link(link, manifest, qoe, config, cs,
                                           ps);
  SoakOutcome outcome;
  outcome.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  outcome.sessions_per_sec = static_cast<double>(n) / outcome.wall_s;
  for (const abr::sim::SessionResult& player : result.players) {
    outcome.total_chunks += player.chunks.size();
    outcome.qoe_sum += player.qoe;
  }
  outcome.jain = result.jain_fairness;
  outcome.link_utilization = result.link_utilization;
  return outcome;
}

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB on Linux
}

/// Pulls `"key": <number>` out of a flat JSON text (same convention as
/// solver_bench: our own baseline files only).
bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bool failed = false;

  // Reference comparison first so the primary soak's histogram and RSS are
  // not polluted by the warm-up run's instruments.
  double reference_wall_s = 0.0;
  double speedup = 0.0;
  if (options.compare_reference) {
    const SoakOutcome reference = run_soak(options, /*soa=*/false);
    reference_wall_s = reference.wall_s;
    std::cout << "fleet_bench: reference engine " << reference.wall_s
              << " s (" << reference.sessions_per_sec << " sessions/sec)\n";
  }

  abr::obs::MetricsRegistry& registry = abr::obs::MetricsRegistry::global();
  registry.set_enabled(true);
  registry.reset();
  const SoakOutcome soak = run_soak(options, options.engine == "soa");
  const abr::obs::HistogramSnapshot step_latency =
      registry.histogram(abr::obs::kFleetStepLatencyUs).snapshot();
  const double rss_mb = peak_rss_mb();

  if (options.compare_reference) {
    speedup = reference_wall_s / soak.wall_s;
    std::cout << "fleet_bench: speedup " << speedup << "x over reference\n";
    if (options.min_speedup > 0.0 && speedup < options.min_speedup) {
      std::cerr << "fleet_bench: FAIL speedup " << speedup << "x < required "
                << options.min_speedup << "x\n";
      failed = true;
    }
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"config\": {\"sessions\": " << options.sessions
       << ", \"engine\": \"" << options.engine
       << "\", \"chunks\": " << options.chunks
       << ", \"chunk_duration_s\": " << options.chunk_duration_s
       << ", \"dt_s\": " << options.dt_s
       << ", \"arrival_window_factor\": " << options.arrival_window_factor
       << ", \"link_kbps_per_session\": " << options.link_kbps_per_session
       << "},\n";
  json << "  \"soak\": {\n";
  json << "    \"wall_s\": " << soak.wall_s << ",\n";
  json << "    \"sessions_per_sec\": " << soak.sessions_per_sec << ",\n";
  json << "    \"p50_step_us\": " << step_latency.p50 << ",\n";
  json << "    \"p99_step_us\": " << step_latency.p99 << ",\n";
  json << "    \"steps\": " << step_latency.count << ",\n";
  json << "    \"peak_rss_mb\": " << rss_mb << ",\n";
  json << "    \"total_chunks\": " << soak.total_chunks << ",\n";
  json << "    \"qoe_sum\": " << soak.qoe_sum << ",\n";
  json << "    \"jain_fairness\": " << soak.jain << ",\n";
  json << "    \"link_utilization\": " << soak.link_utilization << "\n";
  json << "  }";
  if (options.compare_reference) {
    json << ",\n  \"compare\": {\n";
    json << "    \"reference_wall_s\": " << reference_wall_s << ",\n";
    json << "    \"speedup\": " << speedup << "\n  }";
  }
  json << "\n}\n";

  std::ofstream out(options.out);
  out << json.str();
  if (!out) {
    std::cerr << "fleet_bench: cannot write " << options.out << "\n";
    return 2;
  }
  std::cout << json.str();

  if (!options.baseline.empty()) {
    std::ifstream in(options.baseline);
    if (!in) {
      std::cerr << "fleet_bench: cannot read baseline " << options.baseline
                << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string baseline = buffer.str();

    // Deterministic outcome metrics: hard gate (pure function of config).
    struct Metric {
      const char* key;
      double value;
      double tolerance;
    };
    const Metric metrics[] = {
        {"total_chunks", static_cast<double>(soak.total_chunks), 0.0},
        {"qoe_sum", soak.qoe_sum, 1e-6},
        {"jain_fairness", soak.jain, 1e-9},
        {"link_utilization", soak.link_utilization, 1e-9},
    };
    for (const Metric& metric : metrics) {
      double expected = 0.0;
      if (!extract_number(baseline, metric.key, &expected)) {
        std::cerr << "fleet_bench: baseline missing " << metric.key << "\n";
        failed = true;
        continue;
      }
      const double drift = std::abs(metric.value - expected);
      if (drift > metric.tolerance * std::abs(expected)) {
        std::cerr << "fleet_bench: FAIL " << metric.key << " = "
                  << metric.value << " drifted from baseline " << expected
                  << "\n";
        failed = true;
      }
    }

    // Throughput: loose gate against the committed baseline.
    double baseline_rate = 0.0;
    if (extract_number(baseline, "sessions_per_sec", &baseline_rate) &&
        baseline_rate > 0.0) {
      if (soak.sessions_per_sec < options.min_sessions_frac * baseline_rate) {
        std::cerr << "fleet_bench: FAIL sessions/sec "
                  << soak.sessions_per_sec << " < "
                  << options.min_sessions_frac << "x baseline "
                  << baseline_rate << "\n";
        failed = true;
      }
    } else {
      std::cerr << "fleet_bench: baseline missing sessions_per_sec\n";
      failed = true;
    }
  }

  if (failed) return 1;
  std::cout << "fleet_bench: OK (" << soak.sessions_per_sec
            << " sessions/sec, p99 step " << step_latency.p99 << " us, peak "
            << rss_mb << " MB)\n";
  return 0;
}
