// Reproduces the Section 7.4 overhead microbenchmarks: per-decision CPU
// cost of each controller and the memory footprint of the FastMPC table.
// Expected shape: FastMPC decisions cost within noise of BB/RB (a binary
// search), online MPC costs orders of magnitude more (the full horizon
// solve), and the 100x100x5 table is tens of kB compressed (the paper
// reports ~60 kB extra memory).
//
// Also benchmarks the obs/ layer itself: every BM_Decision_* runs with the
// global metrics registry disabled (the library default), the
// *_Instrumented variants enable it, and the BM_Obs_* group prices the
// primitives — so the cost of observability is itself observable.
#include <benchmark/benchmark.h>

#include <fstream>

#include "core/algorithms.hpp"
#include "core/buffer_based.hpp"
#include "core/dashjs_rules.hpp"
#include "core/fastmpc_table.hpp"
#include "core/festive.hpp"
#include "core/mpc_controller.hpp"
#include "core/rate_based.hpp"
#include "media/manifest.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "qoe/qoe.hpp"
#include "util/rng.hpp"

namespace {

using namespace abr;

/// Turns the global registry on for one benchmark's scope.
class ScopedMetricsEnabled {
 public:
  ScopedMetricsEnabled() { obs::MetricsRegistry::global().set_enabled(true); }
  ~ScopedMetricsEnabled() {
    obs::MetricsRegistry::global().set_enabled(false);
  }
};

const media::VideoManifest& manifest() {
  static const media::VideoManifest m = media::VideoManifest::envivio_default();
  return m;
}

const qoe::QoeModel& qoe_model() {
  static const qoe::QoeModel q(media::QualityFunction::identity(),
                               qoe::QoeWeights::balanced());
  return q;
}

std::shared_ptr<const core::FastMpcTable> shared_table() {
  static const std::shared_ptr<const core::FastMpcTable> table =
      core::default_fastmpc_table(manifest(), qoe_model(), 30.0);
  return table;
}

/// Drives one controller through a stream of plausible random states.
template <typename MakeController>
void run_decision_bench(benchmark::State& state, MakeController make) {
  auto controller = make();
  util::Rng rng(7);
  std::vector<double> history = {1200.0, 900.0, 1500.0, 1100.0, 1300.0};
  std::vector<double> prediction(controller->prediction_horizon(), 1150.0);
  std::size_t prev = 2;
  std::size_t chunk = 1;
  for (auto _ : state) {
    sim::AbrState abr_state;
    abr_state.chunk_index = chunk;
    abr_state.buffer_s = rng.uniform(0.0, 30.0);
    abr_state.prev_level = prev;
    abr_state.has_prev = true;
    abr_state.throughput_history_kbps = history;
    abr_state.prediction_kbps = prediction;
    abr_state.playback_started = true;
    prev = controller->decide(abr_state, manifest());
    benchmark::DoNotOptimize(prev);
    chunk = chunk % 60 + 1;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_Decision_RB(benchmark::State& state) {
  run_decision_bench(state,
                     [] { return std::make_unique<core::RateBasedController>(); });
}
BENCHMARK(BM_Decision_RB);

void BM_Decision_BB(benchmark::State& state) {
  run_decision_bench(
      state, [] { return std::make_unique<core::BufferBasedController>(); });
}
BENCHMARK(BM_Decision_BB);

void BM_Decision_FastMPC(benchmark::State& state) {
  run_decision_bench(state, [] {
    return std::make_unique<core::FastMpcController>(shared_table());
  });
}
BENCHMARK(BM_Decision_FastMPC);

void BM_Decision_OnlineMPC(benchmark::State& state) {
  run_decision_bench(state, [] {
    return std::make_unique<core::MpcController>(manifest(), qoe_model(),
                                                 core::MpcConfig{});
  });
}
BENCHMARK(BM_Decision_OnlineMPC);

void BM_Decision_RobustMPC(benchmark::State& state) {
  run_decision_bench(state, [] {
    core::MpcConfig config;
    config.robust = true;
    return std::make_unique<core::MpcController>(manifest(), qoe_model(),
                                                 config);
  });
}
BENCHMARK(BM_Decision_RobustMPC);

void BM_Decision_Festive(benchmark::State& state) {
  run_decision_bench(
      state, [] { return std::make_unique<core::FestiveController>(); });
}
BENCHMARK(BM_Decision_Festive);

void BM_Decision_DashJs(benchmark::State& state) {
  run_decision_bench(
      state, [] { return std::make_unique<core::DashJsRulesController>(); });
}
BENCHMARK(BM_Decision_DashJs);

// --- Instrumented variants: same decision loops with metrics enabled, so
// --- the delta against the baseline BM_Decision_* is the live cost of the
// --- obs layer on each hot path.

void BM_Decision_FastMPC_Instrumented(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  run_decision_bench(state, [] {
    return std::make_unique<core::FastMpcController>(shared_table());
  });
}
BENCHMARK(BM_Decision_FastMPC_Instrumented);

void BM_Decision_OnlineMPC_Instrumented(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  run_decision_bench(state, [] {
    return std::make_unique<core::MpcController>(manifest(), qoe_model(),
                                                 core::MpcConfig{});
  });
}
BENCHMARK(BM_Decision_OnlineMPC_Instrumented);

void BM_Decision_RobustMPC_Instrumented(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  run_decision_bench(state, [] {
    core::MpcConfig config;
    config.robust = true;
    return std::make_unique<core::MpcController>(manifest(), qoe_model(),
                                                 config);
  });
}
BENCHMARK(BM_Decision_RobustMPC_Instrumented);

// --- Primitive costs of the obs layer. The *_Disabled numbers are what
// --- every production code path pays when nobody asked for metrics (the
// --- acceptance bar: small vs the cheapest decision, i.e. well under 2%).

void BM_Obs_CounterIncrement_Disabled(benchmark::State& state) {
  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("bench_counter_disabled");
  for (auto _ : state) {
    counter.increment();
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_Obs_CounterIncrement_Disabled);

void BM_Obs_CounterIncrement_Enabled(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  obs::Counter& counter =
      obs::MetricsRegistry::global().counter("bench_counter_enabled");
  for (auto _ : state) {
    counter.increment();
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_Obs_CounterIncrement_Enabled);

void BM_Obs_HistogramObserve_Disabled(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("bench_histogram_disabled");
  util::Rng rng(11);
  for (auto _ : state) {
    histogram.observe(rng.uniform(0.0, 1e6));
    benchmark::DoNotOptimize(&histogram);
  }
}
BENCHMARK(BM_Obs_HistogramObserve_Disabled);

void BM_Obs_HistogramObserve_Enabled(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("bench_histogram_enabled");
  util::Rng rng(11);
  for (auto _ : state) {
    histogram.observe(rng.uniform(0.0, 1e6));
    benchmark::DoNotOptimize(&histogram);
  }
}
BENCHMARK(BM_Obs_HistogramObserve_Enabled);

void BM_Obs_LatencyTimer_Disabled(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("bench_timer_disabled");
  for (auto _ : state) {
    obs::LatencyTimer timer(&histogram);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_Obs_LatencyTimer_Disabled);

void BM_Obs_LatencyTimer_Enabled(benchmark::State& state) {
  ScopedMetricsEnabled metrics_on;
  obs::Histogram& histogram =
      obs::MetricsRegistry::global().histogram("bench_timer_enabled");
  for (auto _ : state) {
    obs::LatencyTimer timer(&histogram);
    benchmark::DoNotOptimize(&timer);
  }
}
BENCHMARK(BM_Obs_LatencyTimer_Enabled);

// --- Journal emission cost: serialize one full chunk record (the Eq. 5
// --- attribution plus predictor/solver/provenance fields) and write the
// --- line. /dev/null isolates serialization + stream cost from the disk.

obs::ChunkJournalEntry bench_chunk_entry(util::Rng& rng) {
  obs::ChunkJournalEntry entry;
  entry.session = "s0";
  entry.algorithm = "RobustMPC";
  entry.chunk = static_cast<std::size_t>(rng.uniform_int(0, 64));
  entry.level = static_cast<std::size_t>(rng.uniform_int(0, 4));
  entry.t_s = rng.uniform(0.0, 260.0);
  entry.bitrate_kbps = 1200.0;
  entry.download_s = rng.uniform(0.5, 6.0);
  entry.throughput_kbps = rng.uniform(300.0, 4000.0);
  entry.buffer_before_s = rng.uniform(0.0, 30.0);
  entry.buffer_after_s = rng.uniform(0.0, 30.0);
  entry.qoe_utility = 1200.0;
  entry.qoe_switch_penalty = rng.uniform(0.0, 850.0);
  entry.qoe_chunk = entry.qoe_utility - entry.qoe_switch_penalty;
  entry.qoe_cumulative = rng.uniform(0.0, 70000.0);
  entry.predicted_kbps = rng.uniform(300.0, 4000.0);
  entry.effective_kbps = entry.predicted_kbps * 0.9;
  entry.error_window = rng.uniform(0.0, 0.4);
  entry.nodes_expanded = static_cast<std::size_t>(rng.uniform_int(0, 400));
  entry.warm_start = true;
  entry.solver_path = "online";
  return entry;
}

void BM_Journal_ChunkRecord(benchmark::State& state) {
  std::ofstream sink("/dev/null");
  obs::Journal journal(sink);
  util::Rng rng(13);
  for (auto _ : state) {
    journal.chunk(bench_chunk_entry(rng));
    benchmark::DoNotOptimize(&journal);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Journal_ChunkRecord);

void BM_Journal_NumberFormatting(benchmark::State& state) {
  util::Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::json_number(rng.uniform(0.0, 70000.0)));
  }
}
BENCHMARK(BM_Journal_NumberFormatting);

/// Table construction cost (the offline step) and memory footprint counters.
void BM_FastMpcTableBuild_30x30(benchmark::State& state) {
  for (auto _ : state) {
    core::FastMpcConfig config;
    config.buffer_bins = 30;
    config.throughput_bins = 30;
    auto table = core::FastMpcTable::build(manifest(), qoe_model(), config);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_FastMpcTableBuild_30x30)->Unit(benchmark::kMillisecond);

void BM_FastMpcTableLookup(benchmark::State& state) {
  const auto table = shared_table();
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->lookup(
        rng.uniform(0.0, 30.0), static_cast<std::size_t>(rng.uniform_int(0, 4)),
        rng.uniform(60.0, 8000.0)));
  }
  state.counters["table_rle_bytes"] =
      static_cast<double>(table->rle_binary_bytes());
  state.counters["table_full_bytes"] =
      static_cast<double>(table->full_table_bytes());
}
BENCHMARK(BM_FastMpcTableLookup);

}  // namespace

BENCHMARK_MAIN();
