// Deterministic solver performance harness (BENCH_solver.json).
//
// Measures the three hot paths of the MPC solver stack and verifies, in the
// same run, that every optimization is exactness preserving:
//
//   1. FastMPC table build, cold vs. neighbor-warm-started sweep
//      (node counts are deterministic; wall time is reported, not judged);
//   2. online MPC solves over a synthetic session, cold vs. shifted-tail
//      warm starts, with latency percentiles;
//   3. table lookup, RLE binary search vs. decoded flat array.
//
// Exits non-zero if warm != cold anywhere, if the table-build node
// reduction falls below --min-reduction (default 3x, the PR's headline
// claim), or if deterministic metrics regress against --baseline.
//
// Usage:
//   solver_bench [--out FILE] [--baseline FILE] [--buffer-bins N]
//                [--throughput-bins N] [--horizon N] [--threads N]
//                [--chunks N] [--min-reduction X]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fastmpc_table.hpp"
#include "core/horizon_solver.hpp"
#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Options {
  std::string out = "BENCH_solver.json";
  std::string baseline;
  std::size_t buffer_bins = 100;
  std::size_t throughput_bins = 100;
  std::size_t horizon = 5;
  std::size_t threads = 0;
  std::size_t chunks = 400;
  double min_reduction = 3.0;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "solver_bench: missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--out") {
      options.out = next();
    } else if (flag == "--baseline") {
      options.baseline = next();
    } else if (flag == "--buffer-bins") {
      options.buffer_bins = std::stoul(next());
    } else if (flag == "--throughput-bins") {
      options.throughput_bins = std::stoul(next());
    } else if (flag == "--horizon") {
      options.horizon = std::stoul(next());
    } else if (flag == "--threads") {
      options.threads = std::stoul(next());
    } else if (flag == "--chunks") {
      options.chunks = std::stoul(next());
    } else if (flag == "--min-reduction") {
      options.min_reduction = std::stod(next());
    } else {
      std::cerr << "solver_bench: unknown flag " << flag << "\n";
      std::exit(2);
    }
  }
  return options;
}

/// Pulls `"key": <number>` out of a flat JSON text. Good enough for reading
/// our own baseline files without a JSON dependency.
bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

struct Metric {
  const char* key;
  double value;
  double tolerance;  ///< allowed relative drift (decisions can shift with libm)
};

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);
  bool failed = false;

  const auto manifest = abr::media::VideoManifest::envivio_default();
  const auto qoe = abr::qoe::QoeModel(abr::media::QualityFunction::identity(),
                                      abr::qoe::QoeWeights::balanced());

  // --- 1. Table build: cold sweep vs. neighbor-warm-started sweep --------
  abr::core::FastMpcConfig config;
  config.buffer_bins = options.buffer_bins;
  config.throughput_bins = options.throughput_bins;
  config.horizon = options.horizon;
  config.threads = options.threads;

  abr::core::FastMpcConfig cold_config = config;
  cold_config.warm_start = false;
  abr::core::FastMpcConfig warm_config = config;
  warm_config.warm_start = true;
  warm_config.flat_lookup = true;

  abr::core::FastMpcBuildStats cold_stats;
  abr::core::FastMpcBuildStats warm_stats;
  const auto cold_table =
      abr::core::FastMpcTable::build(manifest, qoe, cold_config, &cold_stats);
  const auto warm_table =
      abr::core::FastMpcTable::build(manifest, qoe, warm_config, &warm_stats);

  const bool tables_equal = cold_table == warm_table;
  const double build_reduction =
      static_cast<double>(cold_stats.total_nodes_expanded) /
      static_cast<double>(warm_stats.total_nodes_expanded);
  if (!tables_equal) {
    std::cerr << "solver_bench: FAIL warm-built table differs from cold\n";
    failed = true;
  }
  if (build_reduction < options.min_reduction) {
    std::cerr << "solver_bench: FAIL table-build node reduction "
              << build_reduction << "x < required " << options.min_reduction
              << "x\n";
    failed = true;
  }

  // --- 2. Online solves: cold vs. shifted-tail warm starts ----------------
  // A deterministic synthetic session: a bounded random-walk forecast over a
  // long CBR video with the paper's ladder. Each chunk is solved cold and
  // warm (previous plan's tail); decisions must agree chunk for chunk.
  const auto video = abr::media::VideoManifest::cbr(
      options.chunks + options.horizon, manifest.chunk_duration_s(),
      manifest.bitrates_kbps());
  abr::core::HorizonSolver solver(video, qoe);
  abr::core::HorizonSolver::Workspace cold_ws;
  abr::core::HorizonSolver::Workspace warm_ws;

  abr::util::Rng rng(20150817);  // the paper's publication date
  double throughput = 2000.0;
  std::vector<double> forecast(options.horizon);
  std::vector<std::size_t> previous_plan;
  abr::util::Cdf cold_latency_us;
  abr::util::Cdf warm_latency_us;
  std::size_t online_cold_nodes = 0;
  std::size_t online_warm_nodes = 0;
  bool online_match = true;
  double buffer_s = 8.0;
  std::size_t prev_level = 0;
  bool has_prev = false;

  for (std::size_t chunk = 0; chunk < options.chunks; ++chunk) {
    throughput = std::min(6000.0,
                          std::max(150.0, throughput * rng.uniform(0.8, 1.25)));
    for (double& c : forecast) c = throughput;

    abr::core::HorizonProblem problem;
    problem.buffer_s = buffer_s;
    problem.prev_level = prev_level;
    problem.has_prev = has_prev;
    problem.predicted_kbps = forecast;
    problem.first_chunk = chunk;
    problem.buffer_capacity_s = 30.0;

    const auto cold_start = Clock::now();
    const auto cold = solver.solve(problem, cold_ws);
    cold_latency_us.add(seconds_since(cold_start) * 1e6);
    online_cold_nodes += cold.nodes_expanded;

    abr::core::HorizonProblem warm_problem = problem;
    if (!previous_plan.empty()) {
      warm_problem.warm_hint =
          std::span<const std::size_t>(previous_plan).subspan(1);
    }
    const auto warm_start = Clock::now();
    auto warm = solver.solve(warm_problem, warm_ws);
    warm_latency_us.add(seconds_since(warm_start) * 1e6);
    online_warm_nodes += warm.nodes_expanded;

    if (cold.levels != warm.levels || cold.objective != warm.objective) {
      online_match = false;
    }

    // Advance the session with the chosen decision's buffer dynamics.
    const std::size_t decision = warm.levels.front();
    const double download_s =
        video.chunk_kilobits(chunk, decision) / throughput;
    buffer_s = std::min(std::max(buffer_s - download_s, 0.0) +
                            video.chunk_duration_s(),
                        30.0);
    prev_level = decision;
    has_prev = true;
    previous_plan = std::move(warm.levels);
  }
  if (!online_match) {
    std::cerr << "solver_bench: FAIL warm online solve diverged from cold\n";
    failed = true;
  }
  const double online_reduction = static_cast<double>(online_cold_nodes) /
                                  static_cast<double>(online_warm_nodes);

  // --- 3. Lookup: RLE binary search vs. decoded flat array ----------------
  // Fixed query grid; the checksum both defeats dead-code elimination and
  // pins the decision surface for baseline comparison.
  const std::size_t levels = manifest.level_count();
  constexpr std::size_t kBufferSteps = 128;
  constexpr std::size_t kThroughputSteps = 128;
  constexpr std::size_t kLookupReps = 4;
  std::uint64_t rle_checksum = 0;
  std::uint64_t flat_checksum = 0;
  const std::size_t lookup_ops =
      kLookupReps * kBufferSteps * levels * kThroughputSteps;

  auto lookup_pass = [&](const abr::core::FastMpcTable& table,
                         std::uint64_t* checksum) {
    const auto start = Clock::now();
    for (std::size_t rep = 0; rep < kLookupReps; ++rep) {
      for (std::size_t bi = 0; bi < kBufferSteps; ++bi) {
        const double buffer = 30.0 * static_cast<double>(bi) / kBufferSteps;
        for (std::size_t prev = 0; prev < levels; ++prev) {
          for (std::size_t ci = 0; ci < kThroughputSteps; ++ci) {
            const double kbps =
                50.0 + 9950.0 * static_cast<double>(ci) / kThroughputSteps;
            *checksum += table.lookup(buffer, prev, kbps);
          }
        }
      }
    }
    return seconds_since(start) * 1e9 / static_cast<double>(lookup_ops);
  };
  const double rle_ns = lookup_pass(cold_table, &rle_checksum);
  const double flat_ns = lookup_pass(warm_table, &flat_checksum);
  if (rle_checksum != flat_checksum) {
    std::cerr << "solver_bench: FAIL flat lookup diverged from RLE lookup\n";
    failed = true;
  }

  // --- Report -------------------------------------------------------------
  std::ostringstream json;
  json << "{\n";
  json << "  \"config\": {\"buffer_bins\": " << options.buffer_bins
       << ", \"throughput_bins\": " << options.throughput_bins
       << ", \"horizon\": " << options.horizon << ", \"levels\": " << levels
       << ", \"chunks\": " << options.chunks << "},\n";
  json << "  \"table_build\": {\n";
  json << "    \"cells\": " << cold_table.cell_count() << ",\n";
  json << "    \"cold_nodes\": " << cold_stats.total_nodes_expanded << ",\n";
  json << "    \"warm_nodes\": " << warm_stats.total_nodes_expanded << ",\n";
  json << "    \"node_reduction\": " << build_reduction << ",\n";
  json << "    \"cold_wall_s\": " << cold_stats.wall_seconds << ",\n";
  json << "    \"warm_wall_s\": " << warm_stats.wall_seconds << ",\n";
  json << "    \"run_count\": " << warm_table.run_count() << ",\n";
  json << "    \"rle_binary_bytes\": " << warm_table.rle_binary_bytes()
       << ",\n";
  json << "    \"flat_bytes\": " << warm_table.full_table_bytes() << ",\n";
  json << "    \"tables_equal\": " << (tables_equal ? "true" : "false")
       << "\n  },\n";
  json << "  \"online_solve\": {\n";
  json << "    \"solves\": " << options.chunks << ",\n";
  json << "    \"cold_nodes\": " << online_cold_nodes << ",\n";
  json << "    \"warm_nodes\": " << online_warm_nodes << ",\n";
  json << "    \"node_reduction\": " << online_reduction << ",\n";
  json << "    \"cold_p50_us\": " << cold_latency_us.percentile(50.0) << ",\n";
  json << "    \"cold_p99_us\": " << cold_latency_us.percentile(99.0) << ",\n";
  json << "    \"warm_p50_us\": " << warm_latency_us.percentile(50.0) << ",\n";
  json << "    \"warm_p99_us\": " << warm_latency_us.percentile(99.0) << ",\n";
  json << "    \"decisions_match\": " << (online_match ? "true" : "false")
       << "\n  },\n";
  json << "  \"lookup\": {\n";
  json << "    \"ops\": " << lookup_ops << ",\n";
  json << "    \"rle_ns_per_op\": " << rle_ns << ",\n";
  json << "    \"flat_ns_per_op\": " << flat_ns << ",\n";
  json << "    \"checksum\": " << rle_checksum << ",\n";
  json << "    \"decisions_match\": "
       << (rle_checksum == flat_checksum ? "true" : "false") << "\n  }\n";
  json << "}\n";

  std::ofstream out(options.out);
  out << json.str();
  if (!out) {
    std::cerr << "solver_bench: cannot write " << options.out << "\n";
    return 2;
  }
  std::cout << json.str();

  // --- Baseline gate: deterministic metrics only --------------------------
  if (!options.baseline.empty()) {
    std::ifstream in(options.baseline);
    if (!in) {
      std::cerr << "solver_bench: cannot read baseline " << options.baseline
                << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string baseline = buffer.str();

    const Metric metrics[] = {
        {"cells", static_cast<double>(cold_table.cell_count()), 0.0},
        {"cold_nodes", static_cast<double>(cold_stats.total_nodes_expanded),
         0.02},
        {"warm_nodes", static_cast<double>(warm_stats.total_nodes_expanded),
         0.02},
        {"run_count", static_cast<double>(warm_table.run_count()), 0.02},
        {"rle_binary_bytes", static_cast<double>(warm_table.rle_binary_bytes()),
         0.02},
        {"checksum", static_cast<double>(rle_checksum), 0.02},
    };
    for (const Metric& metric : metrics) {
      double expected = 0.0;
      if (!extract_number(baseline, metric.key, &expected)) {
        std::cerr << "solver_bench: baseline missing " << metric.key << "\n";
        failed = true;
        continue;
      }
      const double drift = std::abs(metric.value - expected);
      if (drift > metric.tolerance * expected) {
        std::cerr << "solver_bench: FAIL " << metric.key << " = "
                  << metric.value << " drifted from baseline " << expected
                  << " (tolerance " << metric.tolerance * 100.0 << "%)\n";
        failed = true;
      }
    }
  }

  if (failed) return 1;
  std::cout << "solver_bench: OK (" << build_reduction
            << "x table-build node reduction, " << online_reduction
            << "x online)\n";
  return 0;
}
