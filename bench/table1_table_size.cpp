// Reproduces Table 1: FastMPC table size vs discretization levels, as a
// full table and with run-length coding, modeled both as JavaScript source
// text (the paper's deployment vehicle) and as our binary format. Expected
// shape: full-table size grows quadratically with the level count; RLE
// compresses ~2x at 100 levels and ~5x at 500 (paper: 100 kB -> 56.4 kB,
// 2.50 MB -> 451 kB).
#include <cstdio>

#include "bench_common.hpp"
#include "core/fastmpc_table.hpp"

using namespace abr;

namespace {

std::string human(std::size_t bytes) {
  char buffer[32];
  if (bytes >= 1000 * 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.2f MB",
                  static_cast<double>(bytes) / 1e6);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f kB",
                  static_cast<double>(bytes) / 1e3);
  }
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::BenchOptions::parse(argc, argv);
  bench::Experiment experiment;

  std::printf("=== Table 1: FastMPC table sizes ===\n\n");
  std::printf("%8s | %14s %14s | %14s %14s | %8s %8s\n", "levels",
              "JS full", "JS RLE", "bin full", "bin RLE", "runs", "ratio");
  std::printf(
      "---------+-------------------------------+----------------------------"
      "---+------------------\n");

  for (const std::size_t levels : {50ul, 100ul, 200ul, 500ul}) {
    core::FastMpcConfig config;
    config.buffer_bins = levels;
    config.throughput_bins = levels;
    config.buffer_capacity_s = experiment.session.buffer_capacity_s;
    const auto table =
        core::FastMpcTable::build(experiment.manifest, experiment.qoe, config);
    const double ratio = static_cast<double>(table.js_rle_bytes()) /
                         static_cast<double>(table.js_full_bytes());
    std::printf("%8zu | %14s %14s | %14s %14s | %8zu %7.2f%%\n", levels,
                human(table.js_full_bytes()).c_str(),
                human(table.js_rle_bytes()).c_str(),
                human(table.full_table_bytes()).c_str(),
                human(table.rle_binary_bytes()).c_str(), table.run_count(),
                100.0 * ratio);
  }
  std::printf(
      "\nPaper Table 1 (JS text): 50 -> 25.0/19.1 kB, 100 -> 100/56.4 kB,\n"
      "200 -> 400/141 kB, 500 -> 2.50 MB/451 kB. Expected shape: quadratic\n"
      "full-table growth; RLE ratio improves with finer discretization.\n");
  return 0;
}
