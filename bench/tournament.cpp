// Scenario-matrix tournament: every registered controller x trace family x
// delivery scenario, ranked by QoE. Produces BENCH_tournament.json (byte
// identical across runs of the same build) plus a text table, then runs the
// DP-vs-BnB solver cross-check and, when --baseline is given, gates each
// cell's rebuffer ratio against the committed baseline.
//
// Usage:
//   tournament [--smoke] [--out FILE] [--baseline FILE] [--traces N]
//              [--duration D] [--seed S] [--threads N]
//
// --smoke runs the reduced CI matrix (2 traces per cell, FCC+HSDPA); the
// default is the full EXPERIMENTS.md matrix. Exit status is non-zero on any
// cross-check violation, baseline regression, or cell failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dp_solver.hpp"
#include "core/horizon_solver.hpp"
#include "media/manifest.hpp"
#include "obs/journal.hpp"
#include "qoe/qoe.hpp"
#include "testing/scenario_matrix.hpp"
#include "util/rng.hpp"

namespace {

struct Options {
  bool smoke = false;
  std::string out = "BENCH_tournament.json";
  std::string baseline;
  std::size_t traces = 0;     // 0 = keep the matrix default
  double duration_s = 0.0;    // 0 = keep the matrix default
  std::uint64_t seed = 0;     // 0 = keep the matrix default
  std::size_t threads = 0;
};

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tournament: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--out") {
      options.out = next("--out");
    } else if (arg == "--baseline") {
      options.baseline = next("--baseline");
    } else if (arg == "--traces") {
      options.traces = std::strtoull(next("--traces").c_str(), nullptr, 10);
    } else if (arg == "--duration") {
      options.duration_s = std::strtod(next("--duration").c_str(), nullptr);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next("--seed").c_str(), nullptr, 10);
    } else if (arg == "--threads") {
      options.threads = std::strtoull(next("--threads").c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "tournament: unknown option %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Exercises the value-iteration backend against branch-and-bound over a
/// seeded grid of randomized horizon problems. Every solve must land within
/// the documented discretization tolerance of the exact optimum.
abr::core::DpHorizonSolver::CrossCheckStats run_cross_check(
    const abr::media::VideoManifest& manifest, const abr::qoe::QoeModel& qoe,
    double* max_bound_out) {
  abr::core::DpSolverConfig config;
  config.cross_check = true;
  abr::core::DpHorizonSolver solver(manifest, qoe, config);

  const std::uint64_t cross_check_seed = 0xd1ce;
  abr::util::Rng rng(cross_check_seed);
  const std::size_t levels = manifest.level_count();
  double max_bound = 0.0;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> forecast(5);
    double kbps = rng.uniform(200.0, 5000.0);
    for (double& f : forecast) {
      kbps = std::min(6000.0, std::max(150.0, kbps * rng.uniform(0.6, 1.5)));
      f = kbps;
    }
    abr::core::HorizonProblem problem;
    problem.buffer_s = rng.uniform(0.0, 30.0);
    problem.prev_level = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(levels) - 1));
    problem.has_prev = rng.uniform() < 0.8;
    problem.predicted_kbps = forecast;
    problem.first_chunk = static_cast<std::size_t>(rng.uniform_int(0, 40));
    problem.buffer_capacity_s = 30.0;
    max_bound = std::max(max_bound, solver.tolerance_bound(problem));
    solver.solve(problem);
  }
  *max_bound_out = max_bound;
  return solver.cross_check_stats();
}

/// Pulls `"key": <number>` out of a flat JSON object fragment.
bool extract_number(const std::string& json, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + pos + needle.size(), nullptr);
  return true;
}

/// Gates each current cell's rebuffer ratio against the committed baseline:
/// a cell fails when its ratio exceeds baseline + max(0.02, 50% relative).
/// Cells absent from the baseline (new algorithms) are reported, not gated.
int gate_against_baseline(const std::string& baseline_path,
                          const std::vector<abr::testing::CellResult>& cells) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "tournament: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string baseline = buffer.str();

  int failures = 0;
  std::size_t skipped = 0;
  for (const auto& cell : cells) {
    // Locate the baseline cell by its identity prefix; cell objects are
    // emitted with algorithm/family/scenario as the first three keys.
    const std::string prefix = "{\"algorithm\": \"" + cell.algorithm +
                               "\", \"family\": \"" + cell.family +
                               "\", \"scenario\": \"" + cell.scenario + "\"";
    const std::size_t pos = baseline.find(prefix);
    if (pos == std::string::npos) {
      ++skipped;
      continue;
    }
    const std::size_t end = baseline.find('}', pos);
    const std::string fragment = baseline.substr(pos, end - pos);
    double expected = 0.0;
    if (!extract_number(fragment, "rebuffer_ratio", &expected)) {
      std::fprintf(stderr, "tournament: baseline cell %s/%s/%s lacks "
                   "rebuffer_ratio\n", cell.algorithm.c_str(),
                   cell.family.c_str(), cell.scenario.c_str());
      ++failures;
      continue;
    }
    const double allowance = std::max(0.02, 0.5 * expected);
    if (cell.rebuffer_ratio > expected + allowance) {
      std::fprintf(stderr,
                   "FAIL %s/%s/%s rebuffer_ratio %.4f exceeds baseline %.4f "
                   "(+%.4f allowed)\n",
                   cell.algorithm.c_str(), cell.family.c_str(),
                   cell.scenario.c_str(), cell.rebuffer_ratio, expected,
                   allowance);
      ++failures;
    }
  }
  if (skipped > 0) {
    std::fprintf(stderr, "tournament: %zu cells not in baseline (skipped)\n",
                 skipped);
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_options(argc, argv);

  abr::testing::MatrixConfig config = options.smoke
                                          ? abr::testing::MatrixConfig::smoke()
                                          : abr::testing::MatrixConfig::full();
  config.threads = options.threads;
  for (auto& family : config.families) {
    if (options.traces > 0) family.count = options.traces;
    if (options.duration_s > 0.0) family.duration_s = options.duration_s;
    if (options.seed > 0) family.seed = options.seed;
  }

  const auto start = std::chrono::steady_clock::now();
  abr::testing::TournamentReport report;
  try {
    report = abr::testing::run_tournament(config);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tournament: cell failure: %s\n", error.what());
    return 1;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const abr::media::VideoManifest manifest =
      abr::media::VideoManifest::envivio_default();
  const abr::qoe::QoeModel qoe(abr::media::QualityFunction::identity(),
                               abr::qoe::preset_weights(config.preference));
  double max_bound = 0.0;
  const auto stats = run_cross_check(manifest, qoe, &max_bound);

  std::string json = "{\n  \"bench\": \"tournament\",\n  \"mode\": \"";
  json += options.smoke ? "smoke" : "full";
  json += "\",\n  \"dp_cross_check\": {\"solves\": ";
  json += std::to_string(stats.solves);
  json += ", \"violations\": ";
  json += std::to_string(stats.violations);
  json += ", \"first_decision_matches\": ";
  json += std::to_string(stats.first_decision_matches);
  json += ", \"max_gap\": ";
  json += abr::obs::json_number(stats.max_gap);
  json += ", \"max_tolerance_bound\": ";
  json += abr::obs::json_number(max_bound);
  json += "},\n  \"report\": ";
  json += report.to_json();
  if (!json.empty() && json.back() == '\n') json.pop_back();
  json += "\n}\n";

  std::fputs(report.to_table().c_str(), stdout);
  std::printf("dp cross-check: %zu solves, %zu violations, %zu/%zu first "
              "decisions match, max gap %.6g (bound %.6g)\n",
              stats.solves, stats.violations, stats.first_decision_matches,
              stats.solves, stats.max_gap, max_bound);

  std::ofstream out(options.out);
  out << json;
  out.close();
  std::fprintf(stderr, "tournament: wall %.1fs, report written to %s\n",
               wall_s, options.out.c_str());

  int failures = 0;
  if (stats.violations != 0) {
    std::fprintf(stderr, "FAIL dp cross-check: %zu violations (max gap %.6g, "
                 "bound %.6g)\n", stats.violations, stats.max_gap, max_bound);
    ++failures;
  }
  if (!options.baseline.empty()) {
    failures += gate_against_baseline(options.baseline, report.cells);
  }
  if (failures > 0) {
    std::fprintf(stderr, "tournament: FAIL (%d)\n", failures);
    return 1;
  }
  std::printf("tournament: OK (%zu cells)\n", report.cells.size());
  return 0;
}
