// Reproduces the Section 7.3 "bitrate levels" sensitivity experiment
// (described in the text but not plotted): n-QoE vs the number of ladder
// levels. Expected shape: BB and MPC improve monotonically with
// finer-grained ladders; RB improves at first and then degrades as many
// near-by levels make it switch constantly.
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kMarkov, options.traces, options.duration_s,
      options.seed);

  std::printf("=== Extra: n-QoE and switching vs ladder size (%zu traces) ===\n\n",
              options.traces);
  std::printf("%8s %12s %12s %12s %12s | %12s %12s\n", "levels", "RobustMPC",
              "FastMPC", "BB", "RB", "RB switches", "RB kbps-chg");

  for (const std::size_t levels : {2ul, 3ul, 5ul, 7ul, 10ul, 15ul}) {
    bench::Experiment experiment;
    experiment.manifest = media::VideoManifest::cbr(
        65, 4.0, media::VideoManifest::geometric_ladder(350.0, 3000.0, levels),
        "ladder-" + std::to_string(levels));
    core::AlgorithmOptions algo_options;
    algo_options.fastmpc_table = core::default_fastmpc_table(
        experiment.manifest, experiment.qoe,
        experiment.session.buffer_capacity_s);
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    double n_qoe_means[4] = {0.0, 0.0, 0.0, 0.0};
    double rb_switches = 0.0;
    double rb_smoothness = 0.0;
    const core::Algorithm algorithms[4] = {
        core::Algorithm::kRobustMpc, core::Algorithm::kFastMpc,
        core::Algorithm::kBufferBased, core::Algorithm::kRateBased};
    for (int a = 0; a < 4; ++a) {
      const auto outcomes = bench::run_dataset(algorithms[a], traces,
                                               experiment, algo_options,
                                               optimal);
      util::RunningStats n_qoe;
      util::RunningStats switches;
      util::RunningStats smoothness;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
        switches.add(static_cast<double>(outcomes[i].result.switch_count));
        smoothness.add(outcomes[i].result.average_bitrate_change_kbps);
      }
      n_qoe_means[a] = n_qoe.mean();
      if (algorithms[a] == core::Algorithm::kRateBased) {
        rb_switches = switches.mean();
        rb_smoothness = smoothness.mean();
      }
    }
    std::printf("%8zu %12.4f %12.4f %12.4f %12.4f | %12.1f %12.1f\n", levels,
                n_qoe_means[0], n_qoe_means[1], n_qoe_means[2],
                n_qoe_means[3], rb_switches, rb_smoothness);
  }
  std::printf(
      "\nExpected shape (Section 7.3 text): BB and exact MPC (RobustMPC) gain\n"
      "from finer ladders; RB's switching grows until the instability cost\n"
      "eats its gains; FastMPC at fixed 100x100 bins eventually degrades —\n"
      "the discretization caveat the paper notes for fine ladders.\n");
  return 0;
}
