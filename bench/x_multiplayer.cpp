// Extension (Section 8 future work): multi-player interaction over a shared
// bottleneck. N identical players stream the same video; the link's
// capacity is fair-shared among concurrently active downloads. Reports
// per-algorithm average bitrate, rebuffering, switching, Jain fairness, and
// link utilization. Expected shape: FESTIVE — designed for this setting —
// achieves the most stable sharing; pure RB oscillates (each player's
// throughput samples are biased by the others' on/off behaviour); MPC
// remains efficient but was not designed for fairness (the paper's stated
// future work).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "sim/fleet_engine.hpp"
#include "sim/multiplayer.hpp"

using namespace abr;

namespace {

// --engine selects the shared-link engine: the SoA fleet engine (default)
// or the reference array-of-structs implementation. Both produce
// bit-identical results; the flag keeps the reference exercisable.
bool g_use_soa = true;

sim::MultiPlayerResult run_shared_link(
    const trace::ThroughputTrace& link, const bench::Experiment& experiment,
    const sim::MultiPlayerConfig& config,
    std::span<sim::BitrateController* const> controllers,
    std::span<predict::ThroughputPredictor* const> predictors) {
  return g_use_soa
             ? sim::simulate_shared_link_soa(link, experiment.manifest,
                                             experiment.qoe, config,
                                             controllers, predictors)
             : sim::simulate_shared_link(link, experiment.manifest,
                                         experiment.qoe, config, controllers,
                                         predictors);
}

void run_case(const char* label, const trace::ThroughputTrace& link,
              std::size_t player_count, core::Algorithm algorithm,
              const bench::Experiment& experiment,
              const core::AlgorithmOptions& algo_options) {
  std::vector<core::AlgorithmInstance> instances;
  std::vector<sim::BitrateController*> controllers;
  std::vector<predict::ThroughputPredictor*> predictors;
  for (std::size_t i = 0; i < player_count; ++i) {
    instances.push_back(core::make_algorithm(algorithm, experiment.manifest,
                                             experiment.qoe, algo_options));
    controllers.push_back(instances.back().controller.get());
    predictors.push_back(instances.back().predictor.get());
  }
  sim::MultiPlayerConfig config;
  config.session = experiment.session;
  config.startup_stagger_s = 2.0;
  const sim::MultiPlayerResult result =
      run_shared_link(link, experiment, config, controllers, predictors);

  util::RunningStats bitrate;
  util::RunningStats rebuffer;
  util::RunningStats switches;
  for (const sim::SessionResult& player : result.players) {
    bitrate.add(player.average_bitrate_kbps);
    rebuffer.add(player.total_rebuffer_s);
    switches.add(static_cast<double>(player.switch_count));
  }
  std::printf("%-10s %-10s %3zu %10.0f %10.2f %10.1f %10.4f %10.3f\n", label,
              core::algorithm_name(algorithm), player_count, bitrate.mean(),
              rebuffer.mean(), switches.mean(), result.jain_fairness,
              result.link_utilization);
}

}  // namespace

int main(int argc, char** argv) {
  // BenchOptions::parse exits(2) on flags it does not know, so peel the
  // fleet-telemetry and engine flags off argv before handing the rest over.
  std::string fleet_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet-out") == 0 && i + 1 < argc) {
      fleet_out = argv[++i];
    } else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      const std::string engine = argv[++i];
      if (engine == "soa") {
        g_use_soa = true;
      } else if (engine == "reference") {
        g_use_soa = false;
      } else {
        std::fprintf(stderr, "x_multiplayer: unknown --engine %s\n",
                     engine.c_str());
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::BenchOptions options = bench::BenchOptions::parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::Experiment experiment;
  core::AlgorithmOptions algo_options;
  algo_options.fastmpc_table = core::default_fastmpc_table(
      experiment.manifest, experiment.qoe,
      experiment.session.buffer_capacity_s);

  std::printf("=== Extension: shared-bottleneck multi-player streaming ===\n\n");
  std::printf("%-10s %-10s %3s %10s %10s %10s %10s %10s\n", "link", "algo",
              "N", "bitrate", "rebuf_s", "switches", "jain", "util");

  const auto steady = trace::ThroughputTrace::constant(6000.0, 2000.0, "6Mbps");
  util::Rng rng(options.seed);
  const auto variable =
      trace::MarkovConfig{}.generate(rng, 2000.0, "markov").scaled(2.5);

  for (const std::size_t players : {2ul, 4ul}) {
    for (const core::Algorithm algorithm :
         {core::Algorithm::kRateBased, core::Algorithm::kFestive,
          core::Algorithm::kBufferBased, core::Algorithm::kRobustMpc}) {
      run_case("steady", steady, players, algorithm, experiment, algo_options);
    }
    std::printf("\n");
    for (const core::Algorithm algorithm :
         {core::Algorithm::kRateBased, core::Algorithm::kFestive,
          core::Algorithm::kBufferBased, core::Algorithm::kRobustMpc}) {
      run_case("variable", variable, players, algorithm, experiment,
               algo_options);
    }
    std::printf("\n");
  }

  if (!fleet_out.empty()) {
    // Dedicated fleet-telemetry run: four RobustMPC players competing on the
    // variable link, with the time-series aggregator attached. Virtual time
    // only, so the export is byte-identical for a given seed.
    sim::FleetSeriesConfig fleet_config;
    fleet_config.chunk_duration_s = experiment.manifest.chunk_duration_s();
    sim::FleetSeries fleet(fleet_config);
    std::vector<core::AlgorithmInstance> instances;
    std::vector<sim::BitrateController*> controllers;
    std::vector<predict::ThroughputPredictor*> predictors;
    for (std::size_t i = 0; i < 4; ++i) {
      instances.push_back(core::make_algorithm(core::Algorithm::kRobustMpc,
                                               experiment.manifest,
                                               experiment.qoe, algo_options));
      controllers.push_back(instances.back().controller.get());
      predictors.push_back(instances.back().predictor.get());
    }
    sim::MultiPlayerConfig config;
    config.session = experiment.session;
    config.startup_stagger_s = 2.0;
    config.fleet = &fleet;
    run_shared_link(variable, experiment, config, controllers, predictors);
    try {
      fleet.save(fleet_out);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    std::printf("wrote fleet series: %s (%zu buckets)\n", fleet_out.c_str(),
                fleet.bucket_count());
  }
  return 0;
}
