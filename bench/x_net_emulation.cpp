// The Section 7.2 real-player analogue: streams the Envivio video over a
// real loopback HTTP connection shaped by throughput traces (the in-process
// equivalent of the paper's node.js + tc + Emulab testbed) and compares
// RobustMPC against BB and RB. Fewer traces than the simulation benches —
// each session costs real wall time even at 40x speedup. Expected shape:
// the same ordering the simulation produces (RobustMPC ahead), confirming
// the controller behaves identically over a real transport.
#include <cstdio>

#include "bench_common.hpp"
#include "net/streaming_client.hpp"

using namespace abr;

int main(int argc, char** argv) {
  bench::BenchOptions options;
  options.traces = 6;  // real time: ~8 s per session at 40x speedup
  options = [&] {
    bench::BenchOptions parsed = bench::BenchOptions::parse(argc, argv);
    if (parsed.traces == 150) parsed.traces = 6;  // keep the small default
    return parsed;
  }();

  bench::Experiment experiment;
  core::AlgorithmOptions algo_options;
  algo_options.fastmpc_table = core::default_fastmpc_table(
      experiment.manifest, experiment.qoe,
      experiment.session.buffer_capacity_s);
  constexpr double kSpeedup = 40.0;

  std::printf(
      "=== Emulation: shaped loopback HTTP sessions (%zu HSDPA traces, %gx "
      "time compression) ===\n\n",
      options.traces, kSpeedup);
  const auto traces = trace::make_dataset(
      trace::DatasetKind::kHsdpa, options.traces, options.duration_s,
      options.seed);

  std::printf("%-12s %12s %12s %12s %12s\n", "algorithm", "QoE(mean)",
              "bitrate", "rebuffer_s", "switches");
  for (const core::Algorithm algorithm :
       {core::Algorithm::kRobustMpc, core::Algorithm::kFastMpc,
        core::Algorithm::kBufferBased, core::Algorithm::kRateBased}) {
    auto instance = core::make_algorithm(algorithm, experiment.manifest,
                                         experiment.qoe, algo_options);
    util::RunningStats qoe_stats;
    util::RunningStats bitrate;
    util::RunningStats rebuffer;
    util::RunningStats switches;
    for (const auto& trace : traces) {
      const sim::SessionResult result = net::run_emulated_session(
          trace, experiment.manifest, experiment.qoe, experiment.session,
          *instance.controller, *instance.predictor, kSpeedup);
      qoe_stats.add(result.qoe);
      bitrate.add(result.average_bitrate_kbps);
      rebuffer.add(result.total_rebuffer_s);
      switches.add(static_cast<double>(result.switch_count));
    }
    std::printf("%-12s %12.0f %12.0f %12.2f %12.1f\n",
                core::algorithm_name(algorithm), qoe_stats.mean(),
                bitrate.mean(), rebuffer.mean(), switches.mean());
  }
  std::printf(
      "\nExpected shape: same ordering as the Fig. 8/10 simulations —\n"
      "RobustMPC leads on QoE with the least rebuffering.\n");
  return 0;
}
