// Extension: variable-bitrate (VBR) video. The paper's model carries
// per-chunk sizes d_k(R) precisely so VBR is representable (Section 3.1),
// and its Section 6 implementation note argues manifests must expose chunk
// sizes because MPC needs them. This bench quantifies that: as per-chunk
// size variability grows, MPC (which plans with exact sizes) should hold
// its QoE while RB/BB (which only see nominal bitrates) degrade.
#include <cstdio>

#include "bench_common.hpp"

using namespace abr;

int main(int argc, char** argv) {
  const bench::BenchOptions options = bench::BenchOptions::parse(argc, argv);

  const auto traces = trace::make_dataset(
      trace::DatasetKind::kHsdpa, options.traces, options.duration_s,
      options.seed);

  std::printf("=== Extension: VBR chunk-size variability (%zu traces) ===\n\n",
              options.traces);
  std::printf("%10s %12s %12s %12s | %12s\n", "sigma", "RobustMPC", "BB",
              "RB", "RobustMPC rebuf");

  for (const double sigma : {0.0, 0.2, 0.4}) {
    bench::Experiment experiment;
    util::Rng vbr_rng(options.seed + 5);
    experiment.manifest =
        sigma == 0.0
            ? media::VideoManifest::envivio_default()
            : media::VideoManifest::vbr(
                  65, 4.0, {350.0, 600.0, 1000.0, 2000.0, 3000.0}, sigma,
                  vbr_rng, "envivio-vbr");
    core::AlgorithmOptions algo_options;
    const auto optimal = bench::compute_optimal_qoe(traces, experiment);

    std::printf("%10.1f", sigma);
    double robust_rebuffer = 0.0;
    for (const core::Algorithm algorithm :
         {core::Algorithm::kRobustMpc, core::Algorithm::kBufferBased,
          core::Algorithm::kRateBased}) {
      const auto outcomes = bench::run_dataset(algorithm, traces, experiment,
                                               algo_options, optimal);
      util::Cdf n_qoe;
      util::RunningStats rebuffer;
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (optimal[i] > 0.0) n_qoe.add(outcomes[i].normalized_qoe);
        rebuffer.add(outcomes[i].result.total_rebuffer_s);
      }
      if (algorithm == core::Algorithm::kRobustMpc) {
        robust_rebuffer = rebuffer.mean();
      }
      std::printf(" %12.4f", n_qoe.median());
    }
    std::printf(" | %12.2f\n", robust_rebuffer);
  }
  std::printf(
      "\nExpected shape: RobustMPC holds its n-QoE as sigma grows (it plans\n"
      "with exact d_k(R)) while RB/BB — which only see nominal bitrates —\n"
      "drift down. The gap is modest because the n-QoE denominator also\n"
      "uses exact sizes.\n");
  return 0;
}
