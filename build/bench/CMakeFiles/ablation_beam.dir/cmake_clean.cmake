file(REMOVE_RECURSE
  "CMakeFiles/ablation_beam.dir/ablation_beam.cpp.o"
  "CMakeFiles/ablation_beam.dir/ablation_beam.cpp.o.d"
  "ablation_beam"
  "ablation_beam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
