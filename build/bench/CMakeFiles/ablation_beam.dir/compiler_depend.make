# Empty compiler generated dependencies file for ablation_beam.
# This may be replaced when dependencies are built.
