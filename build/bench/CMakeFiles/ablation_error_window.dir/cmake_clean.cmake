file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_window.dir/ablation_error_window.cpp.o"
  "CMakeFiles/ablation_error_window.dir/ablation_error_window.cpp.o.d"
  "ablation_error_window"
  "ablation_error_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
