# Empty compiler generated dependencies file for ablation_error_window.
# This may be replaced when dependencies are built.
