file(REMOVE_RECURSE
  "CMakeFiles/ablation_mdp.dir/ablation_mdp.cpp.o"
  "CMakeFiles/ablation_mdp.dir/ablation_mdp.cpp.o.d"
  "ablation_mdp"
  "ablation_mdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
