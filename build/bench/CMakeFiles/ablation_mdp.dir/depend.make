# Empty dependencies file for ablation_mdp.
# This may be replaced when dependencies are built.
