file(REMOVE_RECURSE
  "CMakeFiles/ablation_predictors.dir/ablation_predictors.cpp.o"
  "CMakeFiles/ablation_predictors.dir/ablation_predictors.cpp.o.d"
  "ablation_predictors"
  "ablation_predictors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
