file(REMOVE_RECURSE
  "CMakeFiles/fig07_datasets.dir/fig07_datasets.cpp.o"
  "CMakeFiles/fig07_datasets.dir/fig07_datasets.cpp.o.d"
  "fig07_datasets"
  "fig07_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
