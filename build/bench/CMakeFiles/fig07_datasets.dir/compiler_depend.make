# Empty compiler generated dependencies file for fig07_datasets.
# This may be replaced when dependencies are built.
