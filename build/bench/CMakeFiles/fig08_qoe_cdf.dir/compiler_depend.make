# Empty compiler generated dependencies file for fig08_qoe_cdf.
# This may be replaced when dependencies are built.
