# Empty compiler generated dependencies file for fig09_fcc_breakdown.
# This may be replaced when dependencies are built.
