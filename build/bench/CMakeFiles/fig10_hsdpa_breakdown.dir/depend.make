# Empty dependencies file for fig10_hsdpa_breakdown.
# This may be replaced when dependencies are built.
