file(REMOVE_RECURSE
  "CMakeFiles/fig11a_prediction_error.dir/fig11a_prediction_error.cpp.o"
  "CMakeFiles/fig11a_prediction_error.dir/fig11a_prediction_error.cpp.o.d"
  "fig11a_prediction_error"
  "fig11a_prediction_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_prediction_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
