# Empty dependencies file for fig11a_prediction_error.
# This may be replaced when dependencies are built.
