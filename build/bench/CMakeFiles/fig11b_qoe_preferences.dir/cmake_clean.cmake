file(REMOVE_RECURSE
  "CMakeFiles/fig11b_qoe_preferences.dir/fig11b_qoe_preferences.cpp.o"
  "CMakeFiles/fig11b_qoe_preferences.dir/fig11b_qoe_preferences.cpp.o.d"
  "fig11b_qoe_preferences"
  "fig11b_qoe_preferences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_qoe_preferences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
