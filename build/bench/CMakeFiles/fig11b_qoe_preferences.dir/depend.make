# Empty dependencies file for fig11b_qoe_preferences.
# This may be replaced when dependencies are built.
