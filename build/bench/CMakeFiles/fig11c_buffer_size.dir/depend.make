# Empty dependencies file for fig11c_buffer_size.
# This may be replaced when dependencies are built.
