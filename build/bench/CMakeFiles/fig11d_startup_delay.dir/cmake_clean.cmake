file(REMOVE_RECURSE
  "CMakeFiles/fig11d_startup_delay.dir/fig11d_startup_delay.cpp.o"
  "CMakeFiles/fig11d_startup_delay.dir/fig11d_startup_delay.cpp.o.d"
  "fig11d_startup_delay"
  "fig11d_startup_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11d_startup_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
