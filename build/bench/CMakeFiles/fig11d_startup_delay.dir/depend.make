# Empty dependencies file for fig11d_startup_delay.
# This may be replaced when dependencies are built.
