file(REMOVE_RECURSE
  "CMakeFiles/fig12a_discretization.dir/fig12a_discretization.cpp.o"
  "CMakeFiles/fig12a_discretization.dir/fig12a_discretization.cpp.o.d"
  "fig12a_discretization"
  "fig12a_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
