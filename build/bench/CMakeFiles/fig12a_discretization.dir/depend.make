# Empty dependencies file for fig12a_discretization.
# This may be replaced when dependencies are built.
