file(REMOVE_RECURSE
  "CMakeFiles/fig12b_horizon.dir/fig12b_horizon.cpp.o"
  "CMakeFiles/fig12b_horizon.dir/fig12b_horizon.cpp.o.d"
  "fig12b_horizon"
  "fig12b_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
