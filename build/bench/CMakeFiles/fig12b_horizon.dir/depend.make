# Empty dependencies file for fig12b_horizon.
# This may be replaced when dependencies are built.
