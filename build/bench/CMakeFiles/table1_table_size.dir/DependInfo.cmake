
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_table_size.cpp" "bench/CMakeFiles/table1_table_size.dir/table1_table_size.cpp.o" "gcc" "bench/CMakeFiles/table1_table_size.dir/table1_table_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/abr_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/abr_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/abr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
