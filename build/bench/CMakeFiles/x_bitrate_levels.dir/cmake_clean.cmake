file(REMOVE_RECURSE
  "CMakeFiles/x_bitrate_levels.dir/x_bitrate_levels.cpp.o"
  "CMakeFiles/x_bitrate_levels.dir/x_bitrate_levels.cpp.o.d"
  "x_bitrate_levels"
  "x_bitrate_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_bitrate_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
