# Empty compiler generated dependencies file for x_bitrate_levels.
# This may be replaced when dependencies are built.
