file(REMOVE_RECURSE
  "CMakeFiles/x_multiplayer.dir/x_multiplayer.cpp.o"
  "CMakeFiles/x_multiplayer.dir/x_multiplayer.cpp.o.d"
  "x_multiplayer"
  "x_multiplayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_multiplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
