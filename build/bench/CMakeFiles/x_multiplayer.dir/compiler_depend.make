# Empty compiler generated dependencies file for x_multiplayer.
# This may be replaced when dependencies are built.
