file(REMOVE_RECURSE
  "CMakeFiles/x_net_emulation.dir/x_net_emulation.cpp.o"
  "CMakeFiles/x_net_emulation.dir/x_net_emulation.cpp.o.d"
  "x_net_emulation"
  "x_net_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_net_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
