# Empty compiler generated dependencies file for x_net_emulation.
# This may be replaced when dependencies are built.
