file(REMOVE_RECURSE
  "CMakeFiles/x_vbr.dir/x_vbr.cpp.o"
  "CMakeFiles/x_vbr.dir/x_vbr.cpp.o.d"
  "x_vbr"
  "x_vbr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x_vbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
