# Empty dependencies file for x_vbr.
# This may be replaced when dependencies are built.
