file(REMOVE_RECURSE
  "CMakeFiles/fastmpc_table_tool.dir/fastmpc_table_tool.cpp.o"
  "CMakeFiles/fastmpc_table_tool.dir/fastmpc_table_tool.cpp.o.d"
  "fastmpc_table_tool"
  "fastmpc_table_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastmpc_table_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
