# Empty dependencies file for fastmpc_table_tool.
# This may be replaced when dependencies are built.
