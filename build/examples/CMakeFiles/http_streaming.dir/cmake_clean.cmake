file(REMOVE_RECURSE
  "CMakeFiles/http_streaming.dir/http_streaming.cpp.o"
  "CMakeFiles/http_streaming.dir/http_streaming.cpp.o.d"
  "http_streaming"
  "http_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
