# Empty dependencies file for http_streaming.
# This may be replaced when dependencies are built.
