file(REMOVE_RECURSE
  "CMakeFiles/multiplayer_demo.dir/multiplayer_demo.cpp.o"
  "CMakeFiles/multiplayer_demo.dir/multiplayer_demo.cpp.o.d"
  "multiplayer_demo"
  "multiplayer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplayer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
