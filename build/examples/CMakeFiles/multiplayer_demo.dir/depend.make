# Empty dependencies file for multiplayer_demo.
# This may be replaced when dependencies are built.
