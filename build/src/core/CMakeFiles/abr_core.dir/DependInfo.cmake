
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/abr_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/buffer_based.cpp" "src/core/CMakeFiles/abr_core.dir/buffer_based.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/buffer_based.cpp.o.d"
  "/root/repo/src/core/dashjs_rules.cpp" "src/core/CMakeFiles/abr_core.dir/dashjs_rules.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/dashjs_rules.cpp.o.d"
  "/root/repo/src/core/fastmpc_table.cpp" "src/core/CMakeFiles/abr_core.dir/fastmpc_table.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/fastmpc_table.cpp.o.d"
  "/root/repo/src/core/festive.cpp" "src/core/CMakeFiles/abr_core.dir/festive.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/festive.cpp.o.d"
  "/root/repo/src/core/horizon_solver.cpp" "src/core/CMakeFiles/abr_core.dir/horizon_solver.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/horizon_solver.cpp.o.d"
  "/root/repo/src/core/mdp_controller.cpp" "src/core/CMakeFiles/abr_core.dir/mdp_controller.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/mdp_controller.cpp.o.d"
  "/root/repo/src/core/mpc_controller.cpp" "src/core/CMakeFiles/abr_core.dir/mpc_controller.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/mpc_controller.cpp.o.d"
  "/root/repo/src/core/offline_optimal.cpp" "src/core/CMakeFiles/abr_core.dir/offline_optimal.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/offline_optimal.cpp.o.d"
  "/root/repo/src/core/rate_based.cpp" "src/core/CMakeFiles/abr_core.dir/rate_based.cpp.o" "gcc" "src/core/CMakeFiles/abr_core.dir/rate_based.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/abr_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/abr_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/abr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
