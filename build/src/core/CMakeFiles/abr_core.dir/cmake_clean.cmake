file(REMOVE_RECURSE
  "CMakeFiles/abr_core.dir/algorithms.cpp.o"
  "CMakeFiles/abr_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/abr_core.dir/buffer_based.cpp.o"
  "CMakeFiles/abr_core.dir/buffer_based.cpp.o.d"
  "CMakeFiles/abr_core.dir/dashjs_rules.cpp.o"
  "CMakeFiles/abr_core.dir/dashjs_rules.cpp.o.d"
  "CMakeFiles/abr_core.dir/fastmpc_table.cpp.o"
  "CMakeFiles/abr_core.dir/fastmpc_table.cpp.o.d"
  "CMakeFiles/abr_core.dir/festive.cpp.o"
  "CMakeFiles/abr_core.dir/festive.cpp.o.d"
  "CMakeFiles/abr_core.dir/horizon_solver.cpp.o"
  "CMakeFiles/abr_core.dir/horizon_solver.cpp.o.d"
  "CMakeFiles/abr_core.dir/mdp_controller.cpp.o"
  "CMakeFiles/abr_core.dir/mdp_controller.cpp.o.d"
  "CMakeFiles/abr_core.dir/mpc_controller.cpp.o"
  "CMakeFiles/abr_core.dir/mpc_controller.cpp.o.d"
  "CMakeFiles/abr_core.dir/offline_optimal.cpp.o"
  "CMakeFiles/abr_core.dir/offline_optimal.cpp.o.d"
  "CMakeFiles/abr_core.dir/rate_based.cpp.o"
  "CMakeFiles/abr_core.dir/rate_based.cpp.o.d"
  "libabr_core.a"
  "libabr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
