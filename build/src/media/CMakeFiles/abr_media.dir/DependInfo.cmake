
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/manifest.cpp" "src/media/CMakeFiles/abr_media.dir/manifest.cpp.o" "gcc" "src/media/CMakeFiles/abr_media.dir/manifest.cpp.o.d"
  "/root/repo/src/media/mpd.cpp" "src/media/CMakeFiles/abr_media.dir/mpd.cpp.o" "gcc" "src/media/CMakeFiles/abr_media.dir/mpd.cpp.o.d"
  "/root/repo/src/media/quality.cpp" "src/media/CMakeFiles/abr_media.dir/quality.cpp.o" "gcc" "src/media/CMakeFiles/abr_media.dir/quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
