file(REMOVE_RECURSE
  "CMakeFiles/abr_media.dir/manifest.cpp.o"
  "CMakeFiles/abr_media.dir/manifest.cpp.o.d"
  "CMakeFiles/abr_media.dir/mpd.cpp.o"
  "CMakeFiles/abr_media.dir/mpd.cpp.o.d"
  "CMakeFiles/abr_media.dir/quality.cpp.o"
  "CMakeFiles/abr_media.dir/quality.cpp.o.d"
  "libabr_media.a"
  "libabr_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
