file(REMOVE_RECURSE
  "libabr_media.a"
)
