# Empty compiler generated dependencies file for abr_media.
# This may be replaced when dependencies are built.
