file(REMOVE_RECURSE
  "CMakeFiles/abr_net.dir/chunk_server.cpp.o"
  "CMakeFiles/abr_net.dir/chunk_server.cpp.o.d"
  "CMakeFiles/abr_net.dir/http.cpp.o"
  "CMakeFiles/abr_net.dir/http.cpp.o.d"
  "CMakeFiles/abr_net.dir/shaper.cpp.o"
  "CMakeFiles/abr_net.dir/shaper.cpp.o.d"
  "CMakeFiles/abr_net.dir/socket.cpp.o"
  "CMakeFiles/abr_net.dir/socket.cpp.o.d"
  "CMakeFiles/abr_net.dir/streaming_client.cpp.o"
  "CMakeFiles/abr_net.dir/streaming_client.cpp.o.d"
  "libabr_net.a"
  "libabr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
