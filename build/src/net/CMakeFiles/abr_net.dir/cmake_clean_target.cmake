file(REMOVE_RECURSE
  "libabr_net.a"
)
