# Empty compiler generated dependencies file for abr_net.
# This may be replaced when dependencies are built.
