file(REMOVE_RECURSE
  "CMakeFiles/abr_predict.dir/error_tracker.cpp.o"
  "CMakeFiles/abr_predict.dir/error_tracker.cpp.o.d"
  "CMakeFiles/abr_predict.dir/predictor.cpp.o"
  "CMakeFiles/abr_predict.dir/predictor.cpp.o.d"
  "libabr_predict.a"
  "libabr_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
