file(REMOVE_RECURSE
  "libabr_predict.a"
)
