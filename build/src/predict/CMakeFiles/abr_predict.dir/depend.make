# Empty dependencies file for abr_predict.
# This may be replaced when dependencies are built.
