file(REMOVE_RECURSE
  "CMakeFiles/abr_qoe.dir/qoe.cpp.o"
  "CMakeFiles/abr_qoe.dir/qoe.cpp.o.d"
  "libabr_qoe.a"
  "libabr_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
