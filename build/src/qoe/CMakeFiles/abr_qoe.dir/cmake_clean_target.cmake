file(REMOVE_RECURSE
  "libabr_qoe.a"
)
