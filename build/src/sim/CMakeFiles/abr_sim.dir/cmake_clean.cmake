file(REMOVE_RECURSE
  "CMakeFiles/abr_sim.dir/chunk_source.cpp.o"
  "CMakeFiles/abr_sim.dir/chunk_source.cpp.o.d"
  "CMakeFiles/abr_sim.dir/multiplayer.cpp.o"
  "CMakeFiles/abr_sim.dir/multiplayer.cpp.o.d"
  "CMakeFiles/abr_sim.dir/player.cpp.o"
  "CMakeFiles/abr_sim.dir/player.cpp.o.d"
  "libabr_sim.a"
  "libabr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
