file(REMOVE_RECURSE
  "CMakeFiles/abr_trace.dir/generators.cpp.o"
  "CMakeFiles/abr_trace.dir/generators.cpp.o.d"
  "CMakeFiles/abr_trace.dir/throughput_trace.cpp.o"
  "CMakeFiles/abr_trace.dir/throughput_trace.cpp.o.d"
  "CMakeFiles/abr_trace.dir/trace_io.cpp.o"
  "CMakeFiles/abr_trace.dir/trace_io.cpp.o.d"
  "libabr_trace.a"
  "libabr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
