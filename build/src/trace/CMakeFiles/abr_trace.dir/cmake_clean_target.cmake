file(REMOVE_RECURSE
  "libabr_trace.a"
)
