# Empty dependencies file for abr_trace.
# This may be replaced when dependencies are built.
