file(REMOVE_RECURSE
  "CMakeFiles/abr_util.dir/binning.cpp.o"
  "CMakeFiles/abr_util.dir/binning.cpp.o.d"
  "CMakeFiles/abr_util.dir/csv.cpp.o"
  "CMakeFiles/abr_util.dir/csv.cpp.o.d"
  "CMakeFiles/abr_util.dir/rle.cpp.o"
  "CMakeFiles/abr_util.dir/rle.cpp.o.d"
  "CMakeFiles/abr_util.dir/rng.cpp.o"
  "CMakeFiles/abr_util.dir/rng.cpp.o.d"
  "CMakeFiles/abr_util.dir/stats.cpp.o"
  "CMakeFiles/abr_util.dir/stats.cpp.o.d"
  "CMakeFiles/abr_util.dir/strings.cpp.o"
  "CMakeFiles/abr_util.dir/strings.cpp.o.d"
  "CMakeFiles/abr_util.dir/xml.cpp.o"
  "CMakeFiles/abr_util.dir/xml.cpp.o.d"
  "libabr_util.a"
  "libabr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
