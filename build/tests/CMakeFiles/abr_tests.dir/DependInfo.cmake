
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms_test.cpp" "tests/CMakeFiles/abr_tests.dir/algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/algorithms_test.cpp.o.d"
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/abr_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/fastmpc_test.cpp" "tests/CMakeFiles/abr_tests.dir/fastmpc_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/fastmpc_test.cpp.o.d"
  "/root/repo/tests/horizon_solver_test.cpp" "tests/CMakeFiles/abr_tests.dir/horizon_solver_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/horizon_solver_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/abr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/mdp_controller_test.cpp" "tests/CMakeFiles/abr_tests.dir/mdp_controller_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/mdp_controller_test.cpp.o.d"
  "/root/repo/tests/media_test.cpp" "tests/CMakeFiles/abr_tests.dir/media_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/media_test.cpp.o.d"
  "/root/repo/tests/mpc_controller_test.cpp" "tests/CMakeFiles/abr_tests.dir/mpc_controller_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/mpc_controller_test.cpp.o.d"
  "/root/repo/tests/mpd_test.cpp" "tests/CMakeFiles/abr_tests.dir/mpd_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/mpd_test.cpp.o.d"
  "/root/repo/tests/multiplayer_test.cpp" "tests/CMakeFiles/abr_tests.dir/multiplayer_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/multiplayer_test.cpp.o.d"
  "/root/repo/tests/net_emulation_test.cpp" "tests/CMakeFiles/abr_tests.dir/net_emulation_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/net_emulation_test.cpp.o.d"
  "/root/repo/tests/net_http_test.cpp" "tests/CMakeFiles/abr_tests.dir/net_http_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/net_http_test.cpp.o.d"
  "/root/repo/tests/net_shaper_test.cpp" "tests/CMakeFiles/abr_tests.dir/net_shaper_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/net_shaper_test.cpp.o.d"
  "/root/repo/tests/net_socket_test.cpp" "tests/CMakeFiles/abr_tests.dir/net_socket_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/net_socket_test.cpp.o.d"
  "/root/repo/tests/offline_optimal_test.cpp" "tests/CMakeFiles/abr_tests.dir/offline_optimal_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/offline_optimal_test.cpp.o.d"
  "/root/repo/tests/predict_test.cpp" "tests/CMakeFiles/abr_tests.dir/predict_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/predict_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/abr_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/qoe_test.cpp" "tests/CMakeFiles/abr_tests.dir/qoe_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/qoe_test.cpp.o.d"
  "/root/repo/tests/sim_player_test.cpp" "tests/CMakeFiles/abr_tests.dir/sim_player_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/sim_player_test.cpp.o.d"
  "/root/repo/tests/tools_test.cpp" "tests/CMakeFiles/abr_tests.dir/tools_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/tools_test.cpp.o.d"
  "/root/repo/tests/trace_generators_test.cpp" "tests/CMakeFiles/abr_tests.dir/trace_generators_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/trace_generators_test.cpp.o.d"
  "/root/repo/tests/trace_io_test.cpp" "tests/CMakeFiles/abr_tests.dir/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/trace_io_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/abr_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_binning_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_binning_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_binning_test.cpp.o.d"
  "/root/repo/tests/util_csv_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_csv_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_csv_test.cpp.o.d"
  "/root/repo/tests/util_parallel_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_parallel_test.cpp.o.d"
  "/root/repo/tests/util_rle_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_rle_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_rle_test.cpp.o.d"
  "/root/repo/tests/util_rng_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_rng_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_rng_test.cpp.o.d"
  "/root/repo/tests/util_stats_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_stats_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_stats_test.cpp.o.d"
  "/root/repo/tests/util_strings_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_strings_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_strings_test.cpp.o.d"
  "/root/repo/tests/util_xml_test.cpp" "tests/CMakeFiles/abr_tests.dir/util_xml_test.cpp.o" "gcc" "tests/CMakeFiles/abr_tests.dir/util_xml_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/abr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/abr_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/abr_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/abr_media.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/abr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
