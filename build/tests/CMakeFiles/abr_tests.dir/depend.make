# Empty dependencies file for abr_tests.
# This may be replaced when dependencies are built.
