file(REMOVE_RECURSE
  "CMakeFiles/abrsim.dir/abrsim.cpp.o"
  "CMakeFiles/abrsim.dir/abrsim.cpp.o.d"
  "abrsim"
  "abrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
