# Empty dependencies file for abrsim.
# This may be replaced when dependencies are built.
