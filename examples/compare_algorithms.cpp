// Compares every bitrate adaptation algorithm from the paper's evaluation
// (RB, BB, FastMPC, RobustMPC, dash.js rules, FESTIVE) on a small dataset
// of mobile-like traces and prints a Fig. 8-style summary, including each
// algorithm's normalized QoE against the offline optimum.
//
// Usage: ./examples/compare_algorithms [trace-count]
#include <cstdio>
#include <cstdlib>

#include "core/algorithms.hpp"
#include "core/offline_optimal.hpp"
#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "sim/player.hpp"
#include "trace/generators.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace abr;

  const std::size_t trace_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 20;

  const media::VideoManifest manifest = media::VideoManifest::envivio_default();
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::QoeWeights::balanced());
  const sim::SessionConfig session;

  const auto traces = trace::make_dataset(trace::DatasetKind::kHsdpa,
                                          trace_count, 320.0, 99);

  // Offline optimum per trace (the n-QoE denominator).
  const core::OfflineOptimalPlanner planner(manifest, qoe, session);
  std::vector<double> optimal(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    optimal[i] = planner.plan(traces[i]).qoe;
  }

  // One shared FastMPC table for the whole comparison.
  core::AlgorithmOptions options;
  options.fastmpc_table = core::default_fastmpc_table(manifest, qoe, 30.0);

  std::printf("%zu HSDPA-like traces, Envivio video, balanced QoE weights\n\n",
              traces.size());
  std::printf("%-12s %12s %12s %12s %12s %12s\n", "algorithm", "median nQoE",
              "mean QoE", "bitrate", "rebuffer_s", "switches");

  for (const core::Algorithm algorithm : core::all_algorithms()) {
    auto instance = core::make_algorithm(algorithm, manifest, qoe, options);
    util::Cdf n_qoe;
    util::RunningStats raw_qoe;
    util::RunningStats bitrate;
    util::RunningStats rebuffer;
    util::RunningStats switches;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const sim::SessionResult result =
          sim::simulate(traces[i], manifest, qoe, session,
                        *instance.controller, *instance.predictor);
      if (optimal[i] > 0.0) {
        n_qoe.add(core::normalized_qoe(result.qoe, optimal[i]));
      }
      raw_qoe.add(result.qoe);
      bitrate.add(result.average_bitrate_kbps);
      rebuffer.add(result.total_rebuffer_s);
      switches.add(static_cast<double>(result.switch_count));
    }
    std::printf("%-12s %12.3f %12.0f %12.0f %12.2f %12.1f\n",
                core::algorithm_name(algorithm), n_qoe.median(),
                raw_qoe.mean(), bitrate.mean(), rebuffer.mean(),
                switches.mean());
  }
  return 0;
}
