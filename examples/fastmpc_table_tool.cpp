// FastMPC table tooling: builds the offline decision table for a video +
// QoE objective (the Fig. 5 enumeration), reports its Table 1-style size
// accounting, round-trips it through disk, and answers a few example
// queries — everything a deployment pipeline would do before shipping the
// table to players.
//
// Usage: ./examples/fastmpc_table_tool [levels] [output.bin]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fastmpc_table.hpp"
#include "media/manifest.hpp"
#include "qoe/qoe.hpp"

int main(int argc, char** argv) {
  using namespace abr;

  const std::size_t levels =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
  const std::string path = argc > 2 ? argv[2] : "/tmp/fastmpc_table.bin";

  const media::VideoManifest manifest = media::VideoManifest::envivio_default();
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::QoeWeights::balanced());

  core::FastMpcConfig config;
  config.buffer_bins = levels;
  config.throughput_bins = levels;
  std::printf("building %zux%zux%zu table (horizon %zu)...\n",
              config.buffer_bins, manifest.level_count(),
              config.throughput_bins, config.horizon);
  const core::FastMpcTable table =
      core::FastMpcTable::build(manifest, qoe, config);

  std::printf("\nsize accounting (Table 1 of the paper):\n");
  std::printf("  scenarios:           %zu\n", table.cell_count());
  std::printf("  RLE runs:            %zu\n", table.run_count());
  std::printf("  full table (JS):     %.1f kB\n", table.js_full_bytes() / 1e3);
  std::printf("  RLE coded (JS):      %.1f kB\n", table.js_rle_bytes() / 1e3);
  std::printf("  full table (binary): %.1f kB\n",
              table.full_table_bytes() / 1e3);
  std::printf("  RLE coded (binary):  %.1f kB\n",
              table.rle_binary_bytes() / 1e3);

  table.save(path);
  const core::FastMpcTable loaded = core::FastMpcTable::load(path);
  std::printf("\nsaved + reloaded %s: %s\n", path.c_str(),
              loaded == table ? "identical" : "MISMATCH");

  std::printf("\nexample queries (buffer, prev bitrate, predicted tput):\n");
  const struct {
    double buffer_s;
    std::size_t prev;
    double tput;
  } queries[] = {
      {2.0, 0, 400.0},  {10.0, 1, 800.0},  {15.0, 2, 1500.0},
      {25.0, 3, 2500.0}, {29.0, 4, 5000.0},
  };
  for (const auto& q : queries) {
    const std::size_t decision = loaded.lookup(q.buffer_s, q.prev, q.tput);
    std::printf("  B=%5.1fs prev=%4.0f kbps C=%6.0f kbps  ->  %4.0f kbps\n",
                q.buffer_s, manifest.bitrate_kbps(q.prev), q.tput,
                manifest.bitrate_kbps(decision));
  }
  return 0;
}
