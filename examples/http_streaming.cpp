// Streams a video over a real (loopback) HTTP connection: an in-process
// reproduction of the paper's emulation testbed (Section 7.2). A ChunkServer
// serves the MPD and segments with its send path shaped by a throughput
// trace; the client fetches the manifest, then drives the same PlayerSession
// used in simulation over real sockets with RobustMPC deciding bitrates.
//
// Usage: ./examples/http_streaming [speedup]   (default 40x time compression)
#include <cstdio>
#include <cstdlib>

#include "core/mpc_controller.hpp"
#include "media/manifest.hpp"
#include "media/mpd.hpp"
#include "net/chunk_server.hpp"
#include "net/streaming_client.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace abr;

  const double speedup = argc > 1 ? std::atof(argv[1]) : 40.0;

  const media::VideoManifest manifest = media::VideoManifest::envivio_default();
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::QoeWeights::balanced());

  util::Rng rng(7);
  const trace::ThroughputTrace trace =
      trace::HsdpaLikeConfig{}.generate(rng, 320.0, "mobile");
  std::printf("link: HSDPA-like trace, mean %.0f kbps, %gx time compression\n",
              trace.mean_kbps(), speedup);

  // Origin server on an ephemeral loopback port, shaped by the trace.
  net::ChunkServer server(manifest, trace, speedup);
  server.start();
  std::printf("origin: http://127.0.0.1:%u/manifest.mpd\n", server.port());

  // Client: fetch and parse the MPD first (as a DASH player would), then
  // stream with RobustMPC.
  net::HttpChunkSource source("127.0.0.1", server.port(), manifest, speedup);
  const media::VideoManifest fetched = source.fetch_manifest();
  std::printf("manifest: %zu chunks x %.0f s, %zu bitrates (%.0f-%.0f kbps)\n",
              fetched.chunk_count(), fetched.chunk_duration_s(),
              fetched.level_count(), fetched.bitrates_kbps().front(),
              fetched.bitrates_kbps().back());

  core::MpcConfig config;
  config.robust = true;
  core::MpcController controller(manifest, qoe, config);
  predict::HarmonicMeanPredictor predictor(5);

  server.reset_trace_clock();
  sim::PlayerSession player(manifest, qoe, sim::SessionConfig{});
  const sim::SessionResult result = player.run(source, controller, predictor);

  std::printf("\nstreamed %zu chunks over HTTP (%zu requests served)\n",
              result.chunks.size(), server.requests_served());
  std::printf("  QoE:               %.0f\n", result.qoe);
  std::printf("  average bitrate:   %.0f kbps\n", result.average_bitrate_kbps);
  std::printf("  rebuffering:       %.2f s\n", result.total_rebuffer_s);
  std::printf("  startup delay:     %.2f s\n", result.startup_delay_s);
  std::printf("  switches:          %zu\n", result.switch_count);
  server.stop();
  return 0;
}
