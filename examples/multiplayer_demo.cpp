// Multi-player demo: four viewers share one bottleneck link, each running a
// different adaptation algorithm. Shows the Section 8 future-work setting —
// how efficiency, stability, and fairness interact when players compete.
//
// Usage: ./examples/multiplayer_demo [link-kbps]   (default 8000)
#include <cstdio>
#include <cstdlib>

#include "core/buffer_based.hpp"
#include "core/festive.hpp"
#include "core/mpc_controller.hpp"
#include "core/rate_based.hpp"
#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/multiplayer.hpp"

int main(int argc, char** argv) {
  using namespace abr;

  const double link_kbps = argc > 1 ? std::atof(argv[1]) : 8000.0;

  const media::VideoManifest manifest = media::VideoManifest::envivio_default();
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::QoeWeights::balanced());
  const auto link =
      trace::ThroughputTrace::constant(link_kbps, 2000.0, "bottleneck");

  // One player per algorithm, joining 3 s apart.
  core::RateBasedController rb;
  core::FestiveController festive;
  core::BufferBasedController bb;
  core::MpcConfig mpc_config;
  mpc_config.robust = true;
  core::MpcController robust_mpc(manifest, qoe, mpc_config);

  predict::HarmonicMeanPredictor p0(5);
  predict::HarmonicMeanPredictor p1(5);
  predict::HarmonicMeanPredictor p2(5);
  predict::HarmonicMeanPredictor p3(5);

  sim::BitrateController* controllers[] = {&rb, &festive, &bb, &robust_mpc};
  predict::ThroughputPredictor* predictors[] = {&p0, &p1, &p2, &p3};

  sim::MultiPlayerConfig config;
  config.startup_stagger_s = 3.0;

  std::printf("4 players sharing a %.0f kbps bottleneck\n\n", link_kbps);
  const sim::MultiPlayerResult result = sim::simulate_shared_link(
      link, manifest, qoe, config, controllers, predictors);

  std::printf("%-12s %10s %10s %10s %10s\n", "player", "bitrate", "rebuf_s",
              "switches", "QoE");
  const char* names[] = {"RB", "FESTIVE", "BB", "RobustMPC"};
  for (std::size_t i = 0; i < result.players.size(); ++i) {
    const sim::SessionResult& p = result.players[i];
    std::printf("%-12s %10.0f %10.2f %10zu %10.0f\n", names[i],
                p.average_bitrate_kbps, p.total_rebuffer_s, p.switch_count,
                p.qoe);
  }
  std::printf("\nJain fairness (bitrate): %.4f   link utilization: %.3f\n",
              result.jain_fairness, result.link_utilization);
  return 0;
}
