// Quickstart: simulate one adaptive streaming session with RobustMPC.
//
// This walks the core public API end to end:
//   1. describe a video (manifest),
//   2. define the QoE objective (Eq. (5) of the paper),
//   3. generate a network throughput trace,
//   4. pick a controller + throughput predictor,
//   5. run the player session and inspect the outcome.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/mpc_controller.hpp"
#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/player.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace abr;

  // 1. The paper's test video: 260 s, 65 chunks of 4 s, five bitrates.
  const media::VideoManifest manifest = media::VideoManifest::envivio_default();

  // 2. Balanced QoE weights: 1 s of rebuffering costs as much as lowering
  //    one chunk by 3000 kbps.
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::QoeWeights::balanced());

  // 3. A mobile-like throughput trace (high variability).
  util::Rng rng(2026);
  const trace::ThroughputTrace trace =
      trace::HsdpaLikeConfig{}.generate(rng, 320.0, "demo-trace");
  std::printf("trace: mean %.0f kbps, stddev %.0f kbps\n", trace.mean_kbps(),
              trace.stddev_kbps());

  // 4. RobustMPC (the paper's best algorithm) + harmonic-mean prediction.
  core::MpcConfig config;
  config.robust = true;
  core::MpcController controller(manifest, qoe, config);
  predict::HarmonicMeanPredictor predictor(5);

  // 5. Stream the whole video in virtual time.
  const sim::SessionResult result =
      sim::simulate(trace, manifest, qoe, sim::SessionConfig{}, controller,
                    predictor);

  std::printf("\nper-chunk log (first 10 chunks):\n");
  std::printf("%5s %9s %9s %9s %9s %9s\n", "chunk", "kbps", "buf(s)",
              "dl(s)", "tput", "stall(s)");
  for (std::size_t k = 0; k < 10 && k < result.chunks.size(); ++k) {
    const sim::ChunkRecord& r = result.chunks[k];
    std::printf("%5zu %9.0f %9.2f %9.2f %9.0f %9.2f\n", r.index,
                r.bitrate_kbps, r.buffer_after_s, r.download_s,
                r.throughput_kbps, r.rebuffer_s);
  }

  std::printf("\nsession summary:\n");
  std::printf("  QoE (Eq. 5):        %.0f\n", result.qoe);
  std::printf("  average bitrate:    %.0f kbps\n", result.average_bitrate_kbps);
  std::printf("  bitrate switches:   %zu\n", result.switch_count);
  std::printf("  total rebuffering:  %.2f s\n", result.total_rebuffer_s);
  std::printf("  startup delay:      %.2f s\n", result.startup_delay_s);
  return 0;
}
