// Differential fuzzer: exact branch-and-bound (HorizonSolver) vs. the
// value-iteration DP backend (DpHorizonSolver) on the same decoded
// HorizonProblem.
//
// Oracles, from the DP's exactness contract (dp_solver.hpp):
//   1. bnb.objective - dp.objective in [0, tolerance_bound(problem)]
//      (the DP never beats the exact optimum and never trails by more than
//      its proven discretization bound);
//   2. dp.objective == plan_objective(dp.levels): the DP reports the exact
//      Eq. (5) value of the plan it returns, never the grid estimate;
//   3. optimality certificate: bnb.objective >= the exact value of any
//      random plan.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dp_solver.hpp"
#include "core/horizon_solver.hpp"
#include "fuzz_input.hpp"
#include "solver_instance.hpp"

using abr::core::DpHorizonSolver;
using abr::core::DpSolverConfig;
using abr::core::HorizonSolution;
using abr::core::HorizonSolver;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);
  abr::fuzz::SolverInstance inst;
  abr::fuzz::decode_solver_instance(in, inst);

  DpSolverConfig config;
  config.buffer_bins = in.uniform_size(50, 400);

  const HorizonSolver bnb(inst.manifest, inst.model);
  DpHorizonSolver dp(inst.manifest, inst.model, config);

  const HorizonSolution exact = bnb.solve(inst.problem);
  const HorizonSolution approx = dp.solve(inst.problem);
  ABR_FUZZ_REQUIRE(exact.levels.size() == approx.levels.size());

  // Oracle 1: gap within the proven bound (small epsilon for fp noise).
  const double gap = exact.objective - approx.objective;
  const double bound = dp.tolerance_bound(inst.problem);
  ABR_FUZZ_REQUIRE_MSG(gap >= -1e-6, "dp beat the exact optimum");
  ABR_FUZZ_REQUIRE_MSG(gap <= bound + 1e-6, "dp gap exceeds tolerance bound");

  // Oracle 2: the DP's reported objective is the exact value of its plan.
  const double replayed = dp.plan_objective(inst.problem, approx.levels);
  ABR_FUZZ_REQUIRE_MSG(approx.objective == replayed,
                       "dp objective != exact value of its own plan");

  // Oracle 3: no random plan beats the branch-and-bound optimum.
  if (!exact.levels.empty()) {
    std::vector<std::size_t> random_plan(exact.levels.size());
    for (std::size_t attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t& level : random_plan) {
        level = in.uniform_size(0, inst.manifest.level_count() - 1);
      }
      const double value = dp.plan_objective(inst.problem, random_plan);
      ABR_FUZZ_REQUIRE_MSG(exact.objective >= value - 1e-9,
                           "random plan beat the exact solver");
    }
  }
  return 0;
}
