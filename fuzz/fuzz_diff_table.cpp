// Differential fuzzer for FastMpcTable representations. Three exactness
// contracts from fastmpc_table.hpp, probed on tiny decoded configs:
//   1. flat_lookup is representation only: flat and RLE tables answer every
//      lookup identically;
//   2. warm_start is exactness preserving: warm and cold builds answer every
//      lookup identically;
//   3. serialize/deserialize is a faithful round trip (operator==).
//
// Configs are kept tiny (<= 8x8 bins, horizon <= 3, single thread) so each
// fuzz iteration builds four tables in well under a millisecond.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/fastmpc_table.hpp"
#include "fuzz_input.hpp"
#include "media/manifest.hpp"
#include "media/quality.hpp"
#include "qoe/qoe.hpp"

using abr::core::FastMpcConfig;
using abr::core::FastMpcTable;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);

  const std::size_t levels = in.uniform_size(2, 4);
  std::vector<double> ladder;
  double rate = in.uniform_double(100.0, 800.0);
  for (std::size_t i = 0; i < levels; ++i) {
    ladder.push_back(rate);
    rate += in.uniform_double(100.0, 1500.0);
  }
  const abr::media::VideoManifest manifest =
      abr::media::VideoManifest::cbr(8, 4.0, std::move(ladder), "fuzz");

  abr::qoe::QoeWeights weights;
  weights.lambda = in.uniform_double(0.0, 3.0);
  weights.mu = in.uniform_double(0.0, 6000.0);
  weights.mu_startup = weights.mu;
  const abr::qoe::QoeModel model(abr::media::QualityFunction::identity(),
                                 weights);

  FastMpcConfig config;
  config.buffer_bins = in.uniform_size(2, 8);
  config.throughput_bins = in.uniform_size(2, 8);
  config.throughput_lo_kbps = in.uniform_double(50.0, 200.0);
  config.throughput_hi_kbps =
      config.throughput_lo_kbps + in.uniform_double(500.0, 8000.0);
  config.horizon = in.uniform_size(1, 3);
  config.buffer_capacity_s = in.uniform_double(10.0, 30.0);
  config.threads = 1;

  const FastMpcTable cold = FastMpcTable::build(manifest, model, config);

  FastMpcConfig flat_config = config;
  flat_config.flat_lookup = true;
  const FastMpcTable flat = FastMpcTable::build(manifest, model, flat_config);

  FastMpcConfig warm_config = config;
  warm_config.warm_start = !config.warm_start;
  const FastMpcTable warm = FastMpcTable::build(manifest, model, warm_config);

  // Probe set: decoded random queries plus the cell centers of every
  // (buffer bin, throughput bin) plane — the latter hits each stored cell.
  std::vector<std::pair<double, double>> probes;
  for (int i = 0; i < 8; ++i) {
    probes.emplace_back(in.uniform_double(-1.0, config.buffer_capacity_s + 5.0),
                        in.uniform_double(1.0, config.throughput_hi_kbps * 1.5));
  }
  const double bin_width =
      config.buffer_capacity_s / static_cast<double>(config.buffer_bins);
  for (std::size_t b = 0; b < config.buffer_bins; ++b) {
    const double buffer = (static_cast<double>(b) + 0.5) * bin_width;
    for (std::size_t t = 0; t < config.throughput_bins; ++t) {
      // Geometric mid-point walk over the log-spaced throughput grid.
      const double frac = (static_cast<double>(t) + 0.5) /
                          static_cast<double>(config.throughput_bins);
      const double kbps =
          config.throughput_lo_kbps +
          frac * (config.throughput_hi_kbps - config.throughput_lo_kbps);
      probes.emplace_back(buffer, kbps);
    }
  }

  for (const auto& [buffer_s, kbps] : probes) {
    for (std::size_t prev = 0; prev < levels; ++prev) {
      const std::size_t expected = cold.lookup(buffer_s, prev, kbps);
      ABR_FUZZ_REQUIRE_MSG(flat.lookup(buffer_s, prev, kbps) == expected,
                           "flat lookup diverged from RLE lookup");
      ABR_FUZZ_REQUIRE_MSG(warm.lookup(buffer_s, prev, kbps) == expected,
                           "warm-built table diverged from cold build");
      ABR_FUZZ_REQUIRE(expected < levels);
    }
  }

  // Serialization round trip is exact.
  const FastMpcTable reloaded = FastMpcTable::deserialize(cold.serialize());
  ABR_FUZZ_REQUIRE_MSG(reloaded == cold,
                       "serialize/deserialize round trip changed the table");
  return 0;
}
