// Fuzzes FaultPlan's flat-JSON loader and the seeded decide() schedule.
//
// Invariants on an accepted plan: validate() holds, decide() is a pure
// function of (seed, chunk, attempt), the attempt cap is respected, and
// to_json -> from_json -> to_json is a fixed point (every accepted plan's
// fields are double-representable, so one round closes the loop).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "fuzz_input.hpp"
#include "testing/fault_plan.hpp"

using abr::testing::FaultDecision;
using abr::testing::FaultKind;
using abr::testing::FaultPlan;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string json(reinterpret_cast<const char*>(data), size);
  FaultPlan plan;
  try {
    plan = FaultPlan::from_json(json);
  } catch (const std::invalid_argument&) {
    return 0;  // malformed input: the expected rejection path
  }

  plan.validate();  // from_json validated; must not throw now

  for (const std::size_t chunk : {std::size_t{0}, std::size_t{3}}) {
    for (const std::size_t attempt :
         {std::size_t{0}, std::size_t{1}, plan.max_faulty_attempts}) {
      const FaultDecision first = plan.decide(chunk, attempt);
      const FaultDecision second = plan.decide(chunk, attempt);
      ABR_FUZZ_REQUIRE(first.kind == second.kind);
      ABR_FUZZ_REQUIRE(first.latency_s == second.latency_s);
      ABR_FUZZ_REQUIRE(first.stall_s == second.stall_s);
      ABR_FUZZ_REQUIRE(first.body_fraction == second.body_fraction);
      if (attempt >= plan.max_faulty_attempts) {
        ABR_FUZZ_REQUIRE(first.kind == FaultKind::kNone);
      }
    }
  }

  const std::string serialized = plan.to_json();
  const FaultPlan reparsed = FaultPlan::from_json(serialized);
  ABR_FUZZ_REQUIRE(reparsed.to_json() == serialized);
  return 0;
}
