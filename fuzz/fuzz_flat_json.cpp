// Fuzzes the flat-JSON line parser shared by the session journal and
// abrreport. Invariants: rejection always carries an error message; an
// accepted line holds only finite numbers (the strict JSON grammar bans
// NaN/Inf spellings) and reparses to the same object.

#include <cmath>
#include <cstdint>
#include <string>

#include "abrreport.hpp"
#include "fuzz_input.hpp"

using abr::tools::JsonObject;
using abr::tools::JsonValue;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  JsonObject object;
  std::string error;
  const bool ok = abr::tools::parse_flat_json(line, object, error);
  if (!ok) {
    ABR_FUZZ_REQUIRE(!error.empty());
    return 0;
  }
  ABR_FUZZ_REQUIRE(error.empty());
  for (const auto& [key, value] : object) {
    if (value.kind == JsonValue::Kind::kNumber) {
      ABR_FUZZ_REQUIRE(std::isfinite(value.number));
    }
  }

  JsonObject again;
  std::string error_again;
  ABR_FUZZ_REQUIRE(abr::tools::parse_flat_json(line, again, error_again));
  ABR_FUZZ_REQUIRE(again.size() == object.size());
  for (const auto& [key, value] : object) {
    const auto it = again.find(key);
    ABR_FUZZ_REQUIRE(it != again.end());
    ABR_FUZZ_REQUIRE(it->second.kind == value.kind);
    switch (value.kind) {
      case JsonValue::Kind::kString:
        ABR_FUZZ_REQUIRE(it->second.text == value.text);
        break;
      case JsonValue::Kind::kNumber:
        ABR_FUZZ_REQUIRE(it->second.number == value.number);
        break;
      case JsonValue::Kind::kBoolean:
        ABR_FUZZ_REQUIRE(it->second.boolean == value.boolean);
        break;
    }
  }
  return 0;
}
