// Fuzzes the ChunkServer-facing HTTP parsing surface: request lines, status
// lines, and header blocks (net::parse_header_block — the function every
// received block goes through). The whole input is treated as one header
// block whose first line is also fed to the line parsers.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "fuzz_input.hpp"
#include "net/http.hpp"
#include "util/strings.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string block(reinterpret_cast<const char*>(data), size);

  // Header block: throws std::invalid_argument on malformed lines (the
  // expected control path); anything else is a bug.
  try {
    const abr::net::HttpHeaders headers =
        abr::net::parse_header_block(block, /*skip_lines=*/1);
    for (const auto& [key, value] : headers.entries) {
      // Every parsed name must be findable through the case-insensitive
      // lookup the server uses.
      ABR_FUZZ_REQUIRE(headers.find(key) != nullptr);
      // trim() already ran: no leading/trailing whitespace survives.
      ABR_FUZZ_REQUIRE(abr::util::trim(key) == key);
      ABR_FUZZ_REQUIRE(abr::util::trim(value) == value);
    }
  } catch (const std::invalid_argument&) {
  }

  // First line through both line parsers.
  std::string_view line(block);
  const std::size_t newline = line.find('\n');
  if (newline != std::string_view::npos) line = line.substr(0, newline);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  abr::net::HttpRequest request;
  if (abr::net::parse_request_line(line, request)) {
    ABR_FUZZ_REQUIRE(!request.method.empty());
    ABR_FUZZ_REQUIRE(!request.target.empty());
    ABR_FUZZ_REQUIRE(request.target.front() == '/');
  }
  abr::net::HttpResponse response;
  if (abr::net::parse_status_line(line, response)) {
    ABR_FUZZ_REQUIRE(response.status >= 100 && response.status <= 599);
  }
  return 0;
}
