#pragma once

// Structure-aware fuzzing support: a deterministic decoder that turns the
// fuzzer's byte string into typed values (the FuzzedDataProvider pattern,
// repo-built so the standalone replay driver works on any toolchain).
//
// Determinism contract: the decoded sequence is a pure function of the input
// bytes. An exhausted input yields zeros/lower bounds, so every byte string
// decodes to *some* valid instance — no fuzz input is rejected, which keeps
// coverage feedback dense.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace abr::fuzz {

class FuzzInput {
 public:
  FuzzInput(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }

  std::uint32_t u32() {
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) out = (out << 8) | u8();
    return out;
  }

  std::uint64_t u64() {
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) out = (out << 8) | u8();
    return out;
  }

  bool boolean() { return (u8() & 1) != 0; }

  /// Integer in [lo, hi] inclusive; lo when the range is degenerate.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = hi - lo + 1;
    // span == 0 means the full 2^64 range.
    return span == 0 ? u64() : lo + u64() % span;
  }

  std::size_t uniform_size(std::size_t lo, std::size_t hi) {
    return static_cast<std::size_t>(uniform_u64(lo, hi));
  }

  /// Double in [0, 1].
  double unit() {
    return static_cast<double>(u32()) / 4294967295.0;
  }

  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * unit();
  }

  /// Up to `max_len` raw bytes as a string (may contain NULs).
  std::string take_string(std::size_t max_len) {
    const std::size_t n = uniform_size(0, max_len);
    std::string out;
    out.reserve(n);
    for (std::size_t i = 0; i < n && pos_ < size_; ++i) {
      out.push_back(static_cast<char>(data_[pos_++]));
    }
    return out;
  }

  /// All remaining bytes as a string.
  std::string rest_string() {
    std::string out(reinterpret_cast<const char*>(data_ + pos_), remaining());
    pos_ = size_;
    return out;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace abr::fuzz

/// Invariant assertion for fuzz harnesses: prints the condition and aborts,
/// which libFuzzer reports as a crash and the standalone replay driver
/// surfaces as a non-zero exit.
#define ABR_FUZZ_REQUIRE(cond)                                            \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FUZZ INVARIANT FAILED: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// As above with a runtime detail (e.g. the violation list of a checker).
#define ABR_FUZZ_REQUIRE_MSG(cond, detail)                                \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FUZZ INVARIANT FAILED: %s at %s:%d\n%s\n",    \
                   #cond, __FILE__, __LINE__,                             \
                   std::string(detail).c_str());                          \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
