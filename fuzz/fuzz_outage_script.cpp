// Fuzzes the origin-outage machinery: parse_kill_spec on hostile text, and
// OutageScript validation/query consistency on decoded windows.

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "fuzz_input.hpp"
#include "testing/outage_script.hpp"

using abr::testing::OutageScript;
using abr::testing::OutageWindow;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);

  // Decoded windows (possibly invalid) through validate()/down().
  OutageScript script;
  const std::size_t windows = in.uniform_size(0, 4);
  for (std::size_t i = 0; i < windows; ++i) {
    OutageWindow window;
    window.down_s = in.uniform_double(-5.0, 400.0);
    window.up_s = window.down_s + in.uniform_double(-2.0, 300.0);
    if (in.boolean()) window.up_s = std::numeric_limits<double>::infinity();
    window.origin = in.uniform_size(0, 3);
    script.windows.push_back(window);
  }
  bool valid = true;
  try {
    script.validate();
  } catch (const std::invalid_argument&) {
    valid = false;
  }
  if (valid) {
    const double last = script.last_recovery_s();
    for (const OutageWindow& window : script.windows) {
      ABR_FUZZ_REQUIRE(last >= window.up_s || !std::isfinite(window.up_s));
      ABR_FUZZ_REQUIRE(window.up_s > window.down_s);
      // down() agrees with the window definition at the boundaries.
      ABR_FUZZ_REQUIRE(script.down(window.origin, window.down_s));
      if (std::isfinite(window.up_s)) {
        // A probe at up_s may still fall inside a *different* window;
        // determinism is the invariant we can assert unconditionally.
        ABR_FUZZ_REQUIRE(script.down(window.origin, window.up_s) ==
                         script.down(window.origin, window.up_s));
      }
    }
  }

  // Remaining bytes as a --kill-origin spec.
  try {
    const OutageWindow window = OutageScript::parse_kill_spec(in.rest_string());
    ABR_FUZZ_REQUIRE(std::isfinite(window.down_s));
    ABR_FUZZ_REQUIRE(std::isfinite(window.up_s) ||
                     window.up_s == std::numeric_limits<double>::infinity());
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
