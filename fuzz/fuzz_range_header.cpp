// Fuzzes net::parse_range_header (RFC 7233 single-range subset).
//
// Input layout: 8 bytes big-endian resource size, remaining bytes the Range
// header value. Invariants: a kValid parse yields a range inside the
// resource; parsing is deterministic; no outcome is UB (ASan/UBSan enforce
// that under ABR_FUZZ).

#include <cstdint>
#include <string>

#include "fuzz_input.hpp"
#include "net/http.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);
  // Raw 64-bit size: exercises 0, small, and UINT64_MAX-adjacent resources.
  const auto resource = static_cast<std::size_t>(in.u64());
  const std::string value = in.rest_string();

  abr::net::ByteRange range;
  const abr::net::RangeParse outcome =
      abr::net::parse_range_header(value, resource, range);
  if (outcome == abr::net::RangeParse::kValid) {
    ABR_FUZZ_REQUIRE(resource > 0);
    ABR_FUZZ_REQUIRE(range.first <= range.last);
    ABR_FUZZ_REQUIRE(range.last < resource);
  }

  abr::net::ByteRange again;
  ABR_FUZZ_REQUIRE(abr::net::parse_range_header(value, resource, again) ==
                   outcome);
  if (outcome == abr::net::RangeParse::kValid) {
    ABR_FUZZ_REQUIRE(again.first == range.first && again.last == range.last);
  }
  return 0;
}
