// Session-level structure-aware fuzzer: decodes bytes into a (manifest,
// trace, FaultPlan, abort policy, algorithm) configuration, replays a full
// PlayerSession in virtual time, and checks the paper's invariants via
// testing::InvariantChecker — Eq. (1)-(4) buffer dynamics replayed from
// scratch, Eq. (5) QoE-attribution conservation, and every derived
// aggregate. A second run from fresh objects must be bit-identical
// (everything is a pure function of the decoded configuration).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/algorithms.hpp"
#include "fuzz_input.hpp"
#include "media/manifest.hpp"
#include "media/quality.hpp"
#include "qoe/qoe.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "testing/fault_plan.hpp"
#include "testing/faulty_source.hpp"
#include "testing/invariant_checker.hpp"
#include "trace/throughput_trace.hpp"

namespace {

struct Decoded {
  abr::media::VideoManifest manifest;
  abr::qoe::QoeModel model{abr::media::QualityFunction::identity(),
                           abr::qoe::QoeWeights{}};
  abr::trace::ThroughputTrace trace;
  abr::testing::FaultPlan plan;
  abr::sim::SessionConfig config;
  abr::core::Algorithm algorithm = abr::core::Algorithm::kRateBased;
  bool use_faults = false;
};

void decode(abr::fuzz::FuzzInput& in, Decoded& out) {
  const std::size_t levels = in.uniform_size(2, 4);
  std::vector<double> ladder;
  double rate = in.uniform_double(100.0, 800.0);
  for (std::size_t i = 0; i < levels; ++i) {
    ladder.push_back(rate);
    rate += in.uniform_double(100.0, 2000.0);
  }
  const std::size_t chunks = in.uniform_size(2, 12);
  out.manifest =
      abr::media::VideoManifest::cbr(chunks, 4.0, std::move(ladder), "fuzz");

  abr::qoe::QoeWeights weights;
  weights.lambda = in.uniform_double(0.0, 3.0);
  weights.mu = in.uniform_double(0.0, 6000.0);
  weights.mu_startup = weights.mu;
  out.model =
      abr::qoe::QoeModel(abr::media::QualityFunction::identity(), weights);

  std::vector<abr::trace::TraceSegment> segments;
  const std::size_t count = in.uniform_size(1, 8);
  for (std::size_t i = 0; i < count; ++i) {
    abr::trace::TraceSegment seg;
    seg.duration_s = in.uniform_double(1.0, 30.0);
    // Segment 0 keeps a floor so one trace period has non-zero capacity.
    seg.rate_kbps =
        i == 0 ? in.uniform_double(50.0, 8000.0) : in.uniform_double(0.0, 8000.0);
    segments.push_back(seg);
  }
  out.trace = abr::trace::ThroughputTrace(std::move(segments), "fuzz");

  out.use_faults = in.boolean();
  out.plan = abr::testing::FaultPlan{};
  if (out.use_faults) {
    out.plan.seed = in.u64() | 1;
    out.plan.latency_rate = in.uniform_double(0.0, 0.2);
    out.plan.stall_rate = in.uniform_double(0.0, 0.2);
    out.plan.partial_rate = in.uniform_double(0.0, 0.2);
    out.plan.reset_rate = in.uniform_double(0.0, 0.2);
    out.plan.http_error_rate = in.uniform_double(0.0, 0.2);
    out.plan.latency_min_s = in.uniform_double(0.01, 1.0);
    out.plan.latency_max_s = out.plan.latency_min_s + in.uniform_double(0.0, 2.0);
    out.plan.stall_min_s = in.uniform_double(0.01, 1.0);
    out.plan.stall_max_s = out.plan.stall_min_s + in.uniform_double(0.0, 3.0);
    out.plan.max_faulty_attempts = in.uniform_size(1, 3);
    out.plan.validate();  // decode ranges are valid by construction
  }

  out.config = abr::sim::SessionConfig{};
  out.config.buffer_capacity_s = in.uniform_double(8.0, 30.0);
  out.config.include_startup_in_qoe = in.boolean();
  out.config.degrade_on_failure = in.boolean();
  out.config.abort_policy.enabled = in.boolean();
  out.config.abort_policy.max_stall_s = in.uniform_double(0.25, 2.0);
  out.config.abort_policy.min_observation_s = in.uniform_double(0.25, 1.5);
  out.config.abort_policy.check_interval_s = in.uniform_double(0.1, 0.5);

  // Fast controllers only: the MPC family is covered by the solver
  // harnesses, and per-exec latency is coverage for a fuzzer.
  static constexpr abr::core::Algorithm kAlgorithms[] = {
      abr::core::Algorithm::kRateBased, abr::core::Algorithm::kBufferBased,
      abr::core::Algorithm::kBola,      abr::core::Algorithm::kDashJs,
      abr::core::Algorithm::kFestive,
  };
  out.algorithm = kAlgorithms[in.uniform_size(0, 4)];
}

abr::sim::SessionResult run_once(const Decoded& d) {
  abr::sim::TraceChunkSource inner(d.trace, d.manifest);
  abr::core::AlgorithmInstance instance =
      abr::core::make_algorithm(d.algorithm, d.manifest, d.model);
  const abr::sim::PlayerSession session(d.manifest, d.model, d.config);
  if (d.use_faults) {
    abr::testing::FaultySource faulty(inner, d.plan);
    return session.run(faulty, *instance.controller, *instance.predictor);
  }
  return session.run(inner, *instance.controller, *instance.predictor);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);
  Decoded decoded;
  decode(in, decoded);

  const abr::sim::SessionResult result = run_once(decoded);
  ABR_FUZZ_REQUIRE(result.chunks.size() == decoded.manifest.chunk_count());

  abr::testing::InvariantOptions options;
  options.chunk_duration_s = decoded.manifest.chunk_duration_s();
  options.buffer_capacity_s = decoded.config.buffer_capacity_s;
  options.include_startup_in_qoe = decoded.config.include_startup_in_qoe;
  options.allow_failures = true;
  const abr::testing::InvariantChecker checker(options);
  const abr::testing::InvariantReport report =
      checker.check_all(result, decoded.model);
  ABR_FUZZ_REQUIRE_MSG(report.ok(), report.to_string().c_str());

  // Determinism: fresh sources + fresh algorithm instance, same bytes out.
  const abr::sim::SessionResult again = run_once(decoded);
  ABR_FUZZ_REQUIRE_MSG(again.qoe == result.qoe, "session qoe not reproducible");
  ABR_FUZZ_REQUIRE(again.chunks.size() == result.chunks.size());
  for (std::size_t i = 0; i < result.chunks.size(); ++i) {
    ABR_FUZZ_REQUIRE(again.chunks[i].level == result.chunks[i].level);
    ABR_FUZZ_REQUIRE(again.chunks[i].rebuffer_s == result.chunks[i].rebuffer_s);
    ABR_FUZZ_REQUIRE(again.chunks[i].buffer_after_s ==
                     result.chunks[i].buffer_after_s);
  }
  return 0;
}
