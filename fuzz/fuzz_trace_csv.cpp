// Fuzzes trace::from_csv on hostile bytes. Rejection must be a clean
// std::invalid_argument; an accepted trace must satisfy the ThroughputTrace
// class invariants (positive period, monotone kilobit integral, non-zero
// period capacity) and survive a to_csv -> from_csv round trip.

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fuzz_input.hpp"
#include "trace/throughput_trace.hpp"
#include "trace/trace_io.hpp"

using abr::trace::ThroughputTrace;
using abr::trace::TraceSegment;

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  ThroughputTrace trace;
  try {
    trace = abr::trace::from_csv(text, "fuzz");
  } catch (const std::invalid_argument&) {
    return 0;  // malformed input: the expected rejection path
  }

  ABR_FUZZ_REQUIRE(trace.period_s() > 0.0);
  ABR_FUZZ_REQUIRE(std::isfinite(trace.period_s()));
  double duration_sum = 0.0;
  for (const TraceSegment& seg : trace.segments()) {
    ABR_FUZZ_REQUIRE(seg.duration_s > 0.0);
    ABR_FUZZ_REQUIRE(seg.rate_kbps >= 0.0);
    duration_sum += seg.duration_s;
  }
  ABR_FUZZ_REQUIRE(std::abs(duration_sum - trace.period_s()) <=
                   1e-9 * static_cast<double>(trace.segments().size() + 1));

  // The kilobit integral is monotone and one full period delivers a
  // positive amount (otherwise transfers could never finish).
  const double period = trace.period_s();
  ABR_FUZZ_REQUIRE(trace.kilobits_between(0.0, period) > 0.0);
  double prev = 0.0;
  for (int i = 1; i <= 4; ++i) {
    const double t = period * static_cast<double>(i) / 4.0;
    const double kb = trace.kilobits_between(0.0, t);
    ABR_FUZZ_REQUIRE(kb >= prev);
    prev = kb;
  }

  // Round trip through the writer re-parses with the same shape.
  const ThroughputTrace again = abr::trace::from_csv(abr::trace::to_csv(trace));
  ABR_FUZZ_REQUIRE(again.segments().size() == trace.segments().size());
  return 0;
}
