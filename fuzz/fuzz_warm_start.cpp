// Differential fuzzer for HorizonSolver warm starting. The documented
// contract (horizon_solver.hpp) is that a warm hint can only tighten
// pruning, never change the result: for ANY hint, the returned levels and
// objective are bit-identical to the cold solve — including tie-breaking
// among equal optima.
//
// The decoded instance may already carry a random hint; this harness
// additionally probes the cold problem, the decoded-hint problem, and the
// self-hint (seeding with the cold solution, the strongest possible
// incumbent).

#include <cstdint>
#include <vector>

#include "core/horizon_solver.hpp"
#include "fuzz_input.hpp"
#include "solver_instance.hpp"

using abr::core::HorizonProblem;
using abr::core::HorizonSolution;
using abr::core::HorizonSolver;

namespace {

void require_identical(const HorizonSolution& cold,
                       const HorizonSolution& warm) {
  ABR_FUZZ_REQUIRE_MSG(warm.objective == cold.objective,
                       "warm-started objective differs from cold solve");
  ABR_FUZZ_REQUIRE_MSG(warm.levels == cold.levels,
                       "warm-started levels differ from cold solve");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  abr::fuzz::FuzzInput in(data, size);
  abr::fuzz::SolverInstance inst;
  abr::fuzz::decode_solver_instance(in, inst);

  const HorizonSolver solver(inst.manifest, inst.model);
  HorizonSolver::Workspace workspace;

  HorizonProblem cold_problem = inst.problem;
  cold_problem.warm_hint = {};
  const HorizonSolution cold = solver.solve(cold_problem, workspace);

  // The decoded instance's own (possibly empty, possibly random) hint.
  require_identical(cold, solver.solve(inst.problem, workspace));

  // A fresh random hint of full horizon length.
  std::vector<std::size_t> random_hint(cold.levels.size());
  for (std::size_t& level : random_hint) {
    level = in.uniform_size(0, inst.manifest.level_count() - 1);
  }
  HorizonProblem hinted = cold_problem;
  hinted.warm_hint = random_hint;
  require_identical(cold, solver.solve(hinted, workspace));

  // Self-hint: the optimum itself as the incumbent seed.
  hinted.warm_hint = cold.levels;
  require_identical(cold, solver.solve(hinted, workspace));

  // Workspace reuse is also invisible: a solver-private workspace agrees.
  require_identical(cold, solver.solve(cold_problem));
  return 0;
}
