// Shared structure-aware decoder for the solver-oracle fuzzers: turns an
// arbitrary byte string into a small but valid (manifest, QoE model,
// HorizonProblem) triple. Every byte string decodes successfully — exhausted
// input reads as zeros — so libFuzzer's mutations always land on the solver,
// never on input validation.

#pragma once

#include <cstddef>
#include <vector>

#include "core/horizon_solver.hpp"
#include "fuzz_input.hpp"
#include "media/manifest.hpp"
#include "media/quality.hpp"
#include "qoe/qoe.hpp"

namespace abr::fuzz {

/// Owns the storage the HorizonProblem spans point into. Must stay put after
/// decode (no copies/moves), so decode fills a caller-provided instance.
struct SolverInstance {
  abr::media::VideoManifest manifest;
  abr::qoe::QoeModel model{abr::media::QualityFunction::identity(),
                           abr::qoe::QoeWeights{}};
  std::vector<double> forecast;
  std::vector<std::size_t> hint;
  abr::core::HorizonProblem problem;
};

/// Decodes bytes into `out`. Ranges are chosen so the branch-and-bound and
/// DP solvers both stay fast (<~1ms per solve): ladders of 2-5 levels,
/// horizons of 1-5 chunks, short videos of 1-8 chunks.
inline void decode_solver_instance(FuzzInput& in, SolverInstance& out) {
  const std::size_t levels = in.uniform_size(2, 5);
  std::vector<double> ladder;
  double rate = in.uniform_double(100.0, 1000.0);
  for (std::size_t i = 0; i < levels; ++i) {
    ladder.push_back(rate);
    rate += in.uniform_double(50.0, 2000.0);  // strictly ascending
  }
  const std::size_t chunks = in.uniform_size(1, 8);
  const double chunk_duration_s = in.boolean() ? 2.0 : 4.0;
  out.manifest = abr::media::VideoManifest::cbr(chunks, chunk_duration_s,
                                                std::move(ladder), "fuzz");

  abr::qoe::QoeWeights weights;
  weights.lambda = in.uniform_double(0.0, 4.0);
  weights.mu = in.uniform_double(0.0, 8000.0);
  weights.mu_startup = weights.mu;
  weights.mu_event = in.boolean() ? in.uniform_double(0.0, 2000.0) : 0.0;
  out.model = abr::qoe::QoeModel(abr::media::QualityFunction::identity(),
                                 weights);

  out.problem = abr::core::HorizonProblem{};
  out.problem.buffer_capacity_s = in.uniform_double(5.0, 30.0);
  out.problem.buffer_s = in.uniform_double(0.0, out.problem.buffer_capacity_s);
  out.problem.has_prev = in.boolean();
  out.problem.prev_level = in.uniform_size(0, levels - 1);
  out.problem.first_chunk = in.uniform_size(0, chunks - 1);

  const std::size_t horizon = in.uniform_size(1, 5);
  out.forecast.clear();
  for (std::size_t i = 0; i < horizon; ++i) {
    out.forecast.push_back(in.uniform_double(10.0, 10000.0));
  }
  out.problem.predicted_kbps = out.forecast;

  out.hint.clear();
  if (in.boolean()) {
    const std::size_t hint_len = in.uniform_size(1, horizon);
    for (std::size_t i = 0; i < hint_len; ++i) {
      out.hint.push_back(in.uniform_size(0, levels - 1));
    }
    out.problem.warm_hint = out.hint;
  }
}

}  // namespace abr::fuzz
