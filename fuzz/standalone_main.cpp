// Standalone replay driver for the fuzz harnesses.
//
// Every harness defines LLVMFuzzerTestOneInput; linking it with this file
// produces a <harness>_replay binary that builds on any toolchain (no
// libFuzzer needed) and has two modes:
//
//   <harness>_replay FILE|DIR...            replay corpus inputs (the ctest
//                                           corpus-regression target)
//   <harness>_replay --rand N SEED          run N seeded random inputs
//       [--max-len L] [--save PATH]         (local smoke; --save writes each
//                                           input before running it, so the
//                                           offender survives an abort)
//
// The real coverage-guided binaries are the ABR_FUZZ=ON Clang targets; this
// driver exists so the committed corpora replay as plain unit tests in every
// build, sanitizers included.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

bool replay_file(const fs::path& path, std::size_t& count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
  ++count;
  return true;
}

bool replay_path(const fs::path& path, std::size_t& count) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    // Sort for a deterministic replay order regardless of directory layout.
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      if (!replay_file(file, count)) return false;
    }
    return true;
  }
  if (fs::is_regular_file(path, ec)) return replay_file(path, count);
  std::fprintf(stderr, "no such corpus input: %s\n", path.string().c_str());
  return false;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int run_random(std::size_t runs, std::uint64_t seed, std::size_t max_len,
               const std::string& save_path) {
  std::uint64_t state = seed;
  std::vector<std::uint8_t> input;
  for (std::size_t i = 0; i < runs; ++i) {
    const std::size_t len = splitmix64(state) % (max_len + 1);
    input.resize(len);
    for (std::size_t b = 0; b < len; b += 8) {
      const std::uint64_t word = splitmix64(state);
      for (std::size_t j = 0; j < 8 && b + j < len; ++j) {
        input[b + j] = static_cast<std::uint8_t>(word >> (8 * j));
      }
    }
    if (!save_path.empty()) {
      std::ofstream out(save_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    if ((i + 1) % 5000 == 0) {
      std::fprintf(stderr, "ran %zu/%zu random inputs\n", i + 1, runs);
    }
  }
  std::printf("ok: %zu random inputs (seed %llu)\n", runs,
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--rand") == 0) {
    if (argc < 4) {
      std::fprintf(stderr, "usage: %s --rand N SEED [--max-len L] [--save P]\n",
                   argv[0]);
      return 2;
    }
    const std::size_t runs = std::strtoul(argv[2], nullptr, 10);
    const std::uint64_t seed = std::strtoull(argv[3], nullptr, 10);
    std::size_t max_len = 512;
    std::string save_path;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--max-len") == 0 && i + 1 < argc) {
        max_len = std::strtoul(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--save") == 0 && i + 1 < argc) {
        save_path = argv[++i];
      } else {
        std::fprintf(stderr, "unknown option: %s\n", argv[i]);
        return 2;
      }
    }
    return run_random(runs, seed, max_len, save_path);
  }

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE|DIR... | --rand N SEED\n", argv[0]);
    return 2;
  }
  std::size_t count = 0;
  for (int i = 1; i < argc; ++i) {
    if (!replay_path(argv[i], count)) return 1;
  }
  std::printf("ok: replayed %zu corpus inputs\n", count);
  return 0;
}
