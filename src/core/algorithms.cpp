#include "core/algorithms.hpp"

#include <stdexcept>

#include "core/bola.hpp"
#include "core/buffer_based.hpp"
#include "core/dashjs_rules.hpp"
#include "core/festive.hpp"
#include "core/mpc_controller.hpp"
#include "core/rate_based.hpp"

namespace abr::core {

static_assert(static_cast<std::size_t>(Algorithm::kMpcDp) + 1 ==
                  kAlgorithmCount,
              "Algorithm enum and kAlgorithmCount out of sync: update the "
              "constant (and algorithm_name / make_algorithm) when adding a "
              "policy");

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kRateBased: return "RB";
    case Algorithm::kBufferBased: return "BB";
    case Algorithm::kFastMpc: return "FastMPC";
    case Algorithm::kRobustMpc: return "RobustMPC";
    case Algorithm::kMpc: return "MPC";
    case Algorithm::kMpcOpt: return "MPC-OPT";
    case Algorithm::kDashJs: return "dash.js";
    case Algorithm::kFestive: return "FESTIVE";
    case Algorithm::kBola: return "BOLA";
    case Algorithm::kMpcDp: return "MPC-DP";
  }
  return "?";
}

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kRateBased,  Algorithm::kBufferBased,
          Algorithm::kFastMpc,    Algorithm::kRobustMpc,
          Algorithm::kDashJs,     Algorithm::kFestive};
}

std::vector<Algorithm> registered_algorithms() {
  std::vector<Algorithm> algorithms;
  algorithms.reserve(kAlgorithmCount);
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    algorithms.push_back(static_cast<Algorithm>(i));
  }
  return algorithms;
}

AlgorithmInstance make_algorithm(Algorithm algorithm,
                                 const media::VideoManifest& manifest,
                                 const qoe::QoeModel& qoe,
                                 const AlgorithmOptions& options) {
  AlgorithmInstance instance;
  instance.predictor =
      std::make_unique<predict::HarmonicMeanPredictor>(options.predictor_window);

  switch (algorithm) {
    case Algorithm::kRateBased:
      instance.controller = std::make_unique<RateBasedController>(1.0);
      break;
    case Algorithm::kBufferBased:
      instance.controller = std::make_unique<BufferBasedController>(5.0, 10.0);
      break;
    case Algorithm::kFastMpc: {
      std::shared_ptr<const FastMpcTable> table = options.fastmpc_table;
      if (table == nullptr) {
        table = default_fastmpc_table(manifest, qoe, options.buffer_capacity_s);
      }
      instance.controller = std::make_unique<FastMpcController>(std::move(table));
      break;
    }
    case Algorithm::kRobustMpc: {
      MpcConfig config;
      config.horizon = options.mpc_horizon;
      config.robust = true;
      config.error_window = options.predictor_window;
      config.buffer_capacity_s = options.buffer_capacity_s;
      instance.controller =
          std::make_unique<MpcController>(manifest, qoe, config);
      break;
    }
    case Algorithm::kMpc: {
      MpcConfig config;
      config.horizon = options.mpc_horizon;
      config.robust = false;
      config.buffer_capacity_s = options.buffer_capacity_s;
      instance.controller =
          std::make_unique<MpcController>(manifest, qoe, config);
      break;
    }
    case Algorithm::kMpcOpt: {
      MpcConfig config;
      config.horizon = options.mpc_horizon;
      config.robust = false;
      config.buffer_capacity_s = options.buffer_capacity_s;
      instance.controller =
          std::make_unique<MpcController>(manifest, qoe, config);
      instance.predictor = std::make_unique<predict::PerfectPredictor>();
      break;
    }
    case Algorithm::kDashJs:
      instance.controller = std::make_unique<DashJsRulesController>();
      break;
    case Algorithm::kFestive:
      instance.controller = std::make_unique<FestiveController>();
      break;
    case Algorithm::kBola: {
      BolaConfig config;
      config.buffer_capacity_s = options.buffer_capacity_s;
      instance.controller =
          std::make_unique<BolaController>(manifest, qoe, config);
      break;
    }
    case Algorithm::kMpcDp: {
      MpcConfig config;
      config.horizon = options.mpc_horizon;
      config.robust = false;
      config.buffer_capacity_s = options.buffer_capacity_s;
      config.backend = SolverBackend::kValueIteration;
      config.dp_buffer_bins = options.dp_buffer_bins;
      instance.controller =
          std::make_unique<MpcController>(manifest, qoe, config);
      break;
    }
  }
  if (instance.controller == nullptr) {
    throw std::invalid_argument("make_algorithm: unknown algorithm");
  }
  return instance;
}

std::shared_ptr<const FastMpcTable> default_fastmpc_table(
    const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
    double buffer_capacity_s) {
  FastMpcConfig config;
  config.buffer_capacity_s = buffer_capacity_s;
  // Serve online lookups from the decoded flat array; the RLE form still
  // backs serialization and the Table 1 size accounting.
  config.flat_lookup = true;
  return std::make_shared<const FastMpcTable>(
      FastMpcTable::build(manifest, qoe, config));
}

}  // namespace abr::core
