#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fastmpc_table.hpp"
#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/controller.hpp"

namespace abr::core {

/// Every bitrate controller the repo can instantiate: the algorithms
/// compared in Section 7 of the paper plus later additions.
enum class Algorithm {
  kRateBased,    ///< RB: max bitrate under the harmonic-mean prediction
  kBufferBased,  ///< BB: Huang et al. reservoir/cushion rate map
  kFastMpc,      ///< FastMPC: offline table, horizon 5, 100x100 bins
  kRobustMpc,    ///< RobustMPC: online MPC on the error-deflated forecast
  kMpc,          ///< basic MPC: online solve on the point forecast
  kMpcOpt,       ///< MPC-OPT: basic MPC fed perfect 5-chunk predictions
  kDashJs,       ///< original dash.js rule-based logic
  kFestive,      ///< FESTIVE with alpha = 12
  kBola,         ///< BOLA: buffer-level Lyapunov control (Spiteri et al.)
  kMpcDp,        ///< basic MPC on the value-iteration solver backend
};

/// Number of Algorithm enumerators. make_algorithm, algorithm_name, and the
/// registry tests all enumerate [0, kAlgorithmCount); a static_assert in
/// algorithms.cpp trips when the enum grows without this constant (and
/// therefore the registry) following, so a new policy cannot silently skip
/// factory or test coverage.
inline constexpr std::size_t kAlgorithmCount = 10;

const char* algorithm_name(Algorithm algorithm);

/// All algorithms in the order the paper's figures list them (the Fig. 8-10
/// comparison set only — stable across repo growth).
std::vector<Algorithm> all_algorithms();

/// Every registered algorithm, in enum order. The tournament and the
/// registry tests iterate this, not a hand-maintained list.
std::vector<Algorithm> registered_algorithms();

/// A ready-to-run (controller, predictor) pair configured exactly as in
/// Section 7.1.2. Owns both objects; reusable across sessions (the player
/// resets the controller each run).
struct AlgorithmInstance {
  std::unique_ptr<sim::BitrateController> controller;
  std::unique_ptr<predict::ThroughputPredictor> predictor;
};

/// Knobs that experiments sweep.
struct AlgorithmOptions {
  /// Must match SessionConfig::buffer_capacity_s.
  double buffer_capacity_s = 30.0;
  /// MPC-family look-ahead horizon.
  std::size_t mpc_horizon = 5;
  /// Harmonic-mean window (paper: past 5 chunks).
  std::size_t predictor_window = 5;
  /// Shared FastMPC table; built on demand (and cached by the caller) if
  /// null when kFastMpc is requested.
  std::shared_ptr<const FastMpcTable> fastmpc_table;
  /// Buffer-grid resolution for kMpcDp's value-iteration solver.
  std::size_t dp_buffer_bins = 600;
  /// Seed for stochastic predictors (none of the defaults need it, but
  /// custom predictors may).
  std::uint64_t seed = 1;
};

/// Instantiates `algorithm` against a manifest and QoE model with the
/// paper's configuration. The manifest and QoE model must outlive the
/// returned instance.
AlgorithmInstance make_algorithm(Algorithm algorithm,
                                 const media::VideoManifest& manifest,
                                 const qoe::QoeModel& qoe,
                                 const AlgorithmOptions& options = {});

/// Builds (or reuses) the default FastMPC table for a manifest/QoE pair:
/// 100 buffer bins, 100 throughput bins, horizon 5.
std::shared_ptr<const FastMpcTable> default_fastmpc_table(
    const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
    double buffer_capacity_s);

}  // namespace abr::core
