#include "core/bola.hpp"

#include <algorithm>
#include <stdexcept>

namespace abr::core {

BolaController::BolaController(const media::VideoManifest& manifest,
                               const qoe::QoeModel& qoe, BolaConfig config)
    : chunk_duration_s_(manifest.chunk_duration_s()) {
  const std::size_t levels = manifest.level_count();
  if (levels == 0) {
    throw std::invalid_argument("BolaController: empty ladder");
  }
  if (!(config.buffer_capacity_s > 0.0)) {
    throw std::invalid_argument("BolaController: non-positive capacity");
  }
  const double base_quality = qoe.quality(manifest.bitrate_kbps(0));
  utilities_.resize(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    utilities_[level] = qoe.quality(manifest.bitrate_kbps(level)) - base_quality;
  }

  // Auto gamma_p: the bias at which the lowest rung ties rung m at an empty
  // buffer is S_0 * v_m / (S_m - S_0) (equate the two scores at Q = 0, with
  // nominal CBR sizes S proportional to R). Doubling the worst case makes
  // "empty buffer => lowest rung" strict for every rung.
  if (config.gamma_p < 0.0) {
    double needed = 0.0;
    const double r0 = manifest.bitrate_kbps(0);
    for (std::size_t level = 1; level < levels; ++level) {
      const double rm = manifest.bitrate_kbps(level);
      if (rm > r0) {
        needed = std::max(needed, r0 * utilities_[level] / (rm - r0));
      }
    }
    gamma_p_ = needed > 0.0 ? 2.0 * needed : 1.0;
  } else {
    gamma_p_ = config.gamma_p;
    if (!(gamma_p_ > 0.0)) {
      throw std::invalid_argument("BolaController: gamma_p must be positive");
    }
  }

  // V maps the buffer axis onto utility: with Q_max = capacity in chunks,
  // the top rung's score crosses the others' exactly one chunk short of a
  // full buffer (the BOLA paper's choice of V for a finite buffer).
  const double q_max_chunks = config.buffer_capacity_s / chunk_duration_s_;
  const double v_top = utilities_.back() + gamma_p_;
  v_ = std::max(q_max_chunks - 1.0, 0.5) / v_top;

  low_buffer_threshold_s_ = config.low_buffer_threshold_s < 0.0
                                ? 2.0 * chunk_duration_s_
                                : config.low_buffer_threshold_s;
}

std::size_t BolaController::decide(const sim::AbrState& state,
                                   const media::VideoManifest& manifest) {
  if (manifest.level_count() != utilities_.size()) {
    throw std::logic_error("BolaController: manifest/ladder mismatch");
  }
  const std::size_t levels = utilities_.size();
  const double buffer_chunks = state.buffer_s / chunk_duration_s_;

  // Pure BOLA argmax over per-chunk encoded sizes. Scores are linear in the
  // buffer with slope -1/S_m, so the winning rung is non-decreasing in
  // buffer level; ties break toward the lower rung.
  std::size_t best = 0;
  double best_score = 0.0;
  for (std::size_t level = 0; level < levels; ++level) {
    const double size_kb = manifest.chunk_kilobits(state.chunk_index, level);
    const double score =
        (v_ * (utilities_[level] + gamma_p_) - buffer_chunks) / size_kb;
    if (level == 0 || score > best_score) {
      best = level;
      best_score = score;
    }
  }

  // Low-buffer insurance: with little buffer at stake, never reach above the
  // rung the forecast says is sustainable. The cap vanishes once the buffer
  // clears the threshold, so monotonicity in buffer level is preserved.
  const double forecast =
      state.prediction_kbps.empty() ? 0.0 : state.prediction_kbps.front();
  if (state.buffer_s < low_buffer_threshold_s_ && forecast > 0.0) {
    best = std::min(best, manifest.highest_level_not_above(forecast));
  }

  telemetry_ = sim::DecisionTelemetry{};
  telemetry_.path = "rule";
  telemetry_.effective_forecast_kbps = forecast;
  return best;
}

}  // namespace abr::core
