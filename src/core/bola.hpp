#pragma once

#include <vector>

#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "sim/controller.hpp"

namespace abr::core {

/// Knobs of the BOLA controller (Spiteri, Urgaonkar, Sitaraman,
/// arXiv:1601.06748): Lyapunov drift-plus-penalty control on the buffer
/// level alone.
struct BolaConfig {
  /// Must match the player's SessionConfig::buffer_capacity_s; sets the
  /// Lyapunov weight V so the top rung is chosen exactly when the buffer is
  /// one chunk short of full.
  double buffer_capacity_s = 30.0;

  /// The gamma*p utility bias of the BOLA objective, in utility units (the
  /// units of this repo's q(R)). Larger values push the tradeoff toward
  /// rebuffer avoidance (lower rungs at low buffer). Negative (the default)
  /// derives a value from the ladder: twice the smallest bias that makes the
  /// lowest rung win at an empty buffer, so BOLA always starts conservative.
  double gamma_p = -1.0;

  /// Below this buffer level the pure Lyapunov argmax is additionally capped
  /// at the highest rung sustainable under the current throughput forecast
  /// (BOLA-E style insurance against startup oscillation). Negative (the
  /// default) means two chunk durations. The cap only ever lowers the
  /// decision, so the BOLA property "selected level is non-decreasing in
  /// buffer level" is preserved (pinned by property tests).
  double low_buffer_threshold_s = -1.0;
};

/// BOLA: buffer-level Lyapunov control. Each decision maximizes
///
///   (V * (v_m + gamma_p) - Q) / S_m
///
/// over ladder indices m, where Q is the buffer in chunk units, S_m the
/// chunk's encoded size, and v_m = q(R_m) - q(R_0) the utility of rung m
/// under this repo's QoE quality function (the paper's Eq. (5)
/// parameterization, so BOLA competes for the same objective the MPC family
/// optimizes). V = (Q_max - 1) / (v_top + gamma_p) maps a full buffer to the
/// top rung. No throughput model enters the core rule — only the low-buffer
/// safety cap consults the forecast.
///
/// Deterministic and wall-clock free: decisions are a pure function of the
/// AbrState, so seeded sessions replay bit-identically (pinned by golden
/// decision logs, including under fault injection).
class BolaController final : public sim::BitrateController {
 public:
  /// The manifest fixes the ladder, chunk duration, and per-chunk sizes; the
  /// QoE model supplies the utility curve. Both must outlive the controller.
  BolaController(const media::VideoManifest& manifest,
                 const qoe::QoeModel& qoe, BolaConfig config = {});

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::size_t prediction_horizon() const override { return 1; }
  void reset() override { telemetry_ = sim::DecisionTelemetry{}; }
  std::string name() const override { return "BOLA"; }
  const sim::DecisionTelemetry* last_decision() const override {
    return &telemetry_;
  }

  /// Resolved parameters (after the <0 "auto" defaults), for tests and docs.
  double gamma_p() const { return gamma_p_; }
  double lyapunov_v() const { return v_; }
  double low_buffer_threshold_s() const { return low_buffer_threshold_s_; }

 private:
  std::vector<double> utilities_;  ///< v_m = q(R_m) - q(R_0), per rung
  double chunk_duration_s_ = 0.0;
  double gamma_p_ = 0.0;
  double v_ = 0.0;  ///< Lyapunov tradeoff weight V
  double low_buffer_threshold_s_ = 0.0;
  sim::DecisionTelemetry telemetry_;  ///< refreshed by each decide()
};

}  // namespace abr::core
