#include "core/buffer_based.hpp"

#include <cassert>

namespace abr::core {

BufferBasedController::BufferBasedController(double reservoir_s,
                                             double cushion_s)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
  assert(reservoir_s >= 0.0);
  assert(cushion_s > 0.0);
}

double BufferBasedController::rate_map_kbps(
    double buffer_s, const media::VideoManifest& manifest) const {
  const double r_min = manifest.bitrates_kbps().front();
  const double r_max = manifest.bitrates_kbps().back();
  if (buffer_s <= reservoir_s_) return r_min;
  if (buffer_s >= reservoir_s_ + cushion_s_) return r_max;
  const double fraction = (buffer_s - reservoir_s_) / cushion_s_;
  return r_min + fraction * (r_max - r_min);
}

std::size_t BufferBasedController::decide(const sim::AbrState& state,
                                          const media::VideoManifest& manifest) {
  return manifest.highest_level_not_above(
      rate_map_kbps(state.buffer_s, manifest));
}

}  // namespace abr::core
