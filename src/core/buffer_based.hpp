#pragma once

#include "sim/controller.hpp"

namespace abr::core {

/// Buffer-based (BB) adaptation after Huang et al. [33], as configured in
/// Section 7.1.2 item 2 of the paper: the bitrate is the maximum available
/// level below a rate map f(B) that is R_min for B <= reservoir, R_max for
/// B >= reservoir + cushion, and linear in between. Throughput information
/// is deliberately unused (Eq. (14)).
class BufferBasedController final : public sim::BitrateController {
 public:
  /// Paper defaults: reservoir r = 5 s, cushion c = 10 s.
  BufferBasedController(double reservoir_s = 5.0, double cushion_s = 10.0);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::string name() const override { return "BB"; }

  /// The rate map f(B), exposed for tests.
  double rate_map_kbps(double buffer_s,
                       const media::VideoManifest& manifest) const;

 private:
  double reservoir_s_;
  double cushion_s_;
};

}  // namespace abr::core
