#include "core/dashjs_rules.hpp"

#include <algorithm>
#include <cassert>

namespace abr::core {

DashJsRulesController::DashJsRulesController()
    : DashJsRulesController(Params{}) {}

DashJsRulesController::DashJsRulesController(Params params) : params_(params) {
  assert(params.low_buffer_s >= 0.0);
  assert(params.up_margin > 0.0);
}

void DashJsRulesController::reset() {
  holdoff_remaining_ = 0;
  last_buffer_s_ = 0.0;
  saw_state_ = false;
}

std::size_t DashJsRulesController::decide(const sim::AbrState& state,
                                          const media::VideoManifest& manifest) {
  // Detect a stall: after playback starts, the buffer hitting (near) zero
  // between decisions means the player rebuffered.
  if (saw_state_ && state.playback_started && state.buffer_s <= 1e-9) {
    holdoff_remaining_ = params_.stall_holdoff_chunks;
  } else if (holdoff_remaining_ > 0) {
    --holdoff_remaining_;
  }
  saw_state_ = true;
  last_buffer_s_ = state.buffer_s;

  if (!state.has_prev || state.throughput_history_kbps.empty()) {
    return 0;  // first chunk: lowest quality, as dash.js does
  }

  const std::size_t current = state.prev_level;
  const double current_bitrate = manifest.bitrate_kbps(current);

  // --- DownloadRatioRule ---------------------------------------------------
  // ratio = play time / download time of the last chunk == measured
  // throughput / last chunk's bitrate (for CBR chunks).
  const double measured = state.throughput_history_kbps.back();
  const double ratio = measured / current_bitrate;

  // The v1.2 rule tracks the last chunk's sustainable rate directly and can
  // jump several levels at once in either direction — the unsmoothed
  // reaction behind its oscillation.
  std::size_t ratio_level = current;
  if (ratio < 1.0) {
    ratio_level = manifest.highest_level_not_above(current_bitrate * ratio);
  } else {
    ratio_level = manifest.highest_level_not_above(current_bitrate * ratio /
                                                   params_.up_margin);
  }

  // --- InsufficientBufferRule ----------------------------------------------
  std::size_t buffer_level = manifest.level_count() - 1;  // "no opinion"
  if (state.playback_started && state.buffer_s < params_.low_buffer_s) {
    buffer_level = 0;
  } else if (holdoff_remaining_ > 0) {
    buffer_level = current;  // forbid up-switches right after a stall
  }

  // Priority merge: the most conservative rule wins.
  return std::min(ratio_level, buffer_level);
}

}  // namespace abr::core
