#pragma once

#include "sim/controller.hpp"

namespace abr::core {

/// The original dash.js (v1.2.0) rule-based decision logic, as described in
/// Section 6 of the paper and used as its industry-reference baseline
/// (Section 7.1.2 item 5): two independent rules whose outputs are merged by
/// priority (the more conservative wins).
///
///  - DownloadRatioRule: from the last chunk's "download ratio" (play time /
///    download time), estimate the sustainable bitrate as
///    current_bitrate * ratio. If the ratio is below 1 the current level is
///    unsustainable: drop to the highest level within the sustainable rate.
///    If the ratio exceeds the step-up cost to the next level, move up one
///    level. This per-chunk, unsmoothed reaction is what produces the many
///    unnecessary switches the paper observes (Section 7.2).
///
///  - InsufficientBufferRule: if the buffer is below a low-water mark the
///    rule forces the lowest level; after a recent stall it forbids
///    up-switching for a hold-off period. This is why dash.js achieves low
///    rebuffer time despite its instability.
///
/// Per the paper's methodology, this implementation keeps the original
/// decision logic but makes decisions only at chunk boundaries with strictly
/// sequential downloads.
class DashJsRulesController final : public sim::BitrateController {
 public:
  struct Params {
    /// Buffer level below which the insufficient-buffer rule forces the
    /// lowest bitrate (dash.js used ~2 fragment durations).
    double low_buffer_s = 8.0;
    /// Chunks after a stall during which up-switching is forbidden.
    std::size_t stall_holdoff_chunks = 4;
    /// Required headroom on the download ratio before stepping up: the
    /// ratio must exceed (next_bitrate / current_bitrate) * up_margin.
    double up_margin = 1.0;
  };

  DashJsRulesController();
  explicit DashJsRulesController(Params params);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  void reset() override;
  std::string name() const override { return "dash.js"; }

 private:
  Params params_;
  std::size_t holdoff_remaining_ = 0;
  double last_buffer_s_ = 0.0;
  bool saw_state_ = false;
};

}  // namespace abr::core
