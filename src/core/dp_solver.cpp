#include "core/dp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace abr::core {

const char* solver_backend_name(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::kBranchAndBound: return "branch-and-bound";
    case SolverBackend::kValueIteration: return "value-iteration";
  }
  return "?";
}

DpHorizonSolver::DpHorizonSolver(const media::VideoManifest& manifest,
                                 const qoe::QoeModel& qoe,
                                 DpSolverConfig config)
    : manifest_(&manifest),
      qoe_(&qoe),
      config_(config),
      chunk_duration_s_(manifest.chunk_duration_s()),
      bnb_(manifest, qoe) {
  if (config_.buffer_bins == 0) {
    throw std::invalid_argument("DpSolverConfig: zero buffer_bins");
  }
  const std::size_t levels = manifest.level_count();
  const double lambda = qoe.weights().lambda;
  level_quality_.resize(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    level_quality_[level] = qoe.quality(manifest.bitrate_kbps(level));
  }
  switch_cost_.resize(levels * levels);
  for (std::size_t level = 0; level < levels; ++level) {
    for (std::size_t prev = 0; prev < levels; ++prev) {
      switch_cost_[level * levels + prev] =
          lambda * std::abs(level_quality_[level] - level_quality_[prev]);
    }
  }
}

std::size_t DpHorizonSolver::prepare(std::span<const double> forecast,
                                     std::size_t first_chunk) const {
  if (first_chunk >= manifest_->chunk_count()) {
    throw std::invalid_argument("HorizonProblem: first_chunk out of range");
  }
  const std::size_t horizon =
      std::min(forecast.size(), manifest_->chunk_count() - first_chunk);
  if (horizon == 0) {
    throw std::invalid_argument("HorizonProblem: empty horizon");
  }
  for (std::size_t i = 0; i < horizon; ++i) {
    if (!(forecast[i] > 0.0)) {
      throw std::invalid_argument("HorizonProblem: non-positive forecast");
    }
  }
  return horizon;
}

std::size_t DpHorizonSolver::build_values(std::span<const double> forecast,
                                          std::size_t first_chunk,
                                          std::size_t horizon,
                                          double buffer_capacity_s,
                                          const util::LinearBinner& binner) {
  const std::size_t levels = level_quality_.size();
  const qoe::QoeWeights& w = qoe_->weights();
  const std::size_t bins = config_.buffer_bins;

  download_s_.resize(horizon * levels);
  for (std::size_t depth = 0; depth < horizon; ++depth) {
    const std::size_t chunk = first_chunk + depth;
    for (std::size_t level = 0; level < levels; ++level) {
      download_s_[depth * levels + level] =
          manifest_->chunk_kilobits(chunk, level) / forecast[depth];
    }
  }

  const std::size_t stride = bins * levels;
  values_.assign(horizon > 1 ? (horizon - 1) * stride : 0, 0.0);
  std::size_t evaluations = 0;

  // Backward pass over depths [1, horizon): every state there has a previous
  // level (depth 0 made one), so has_prev is unconditionally true.
  for (std::size_t depth = horizon; depth-- > 1;) {
    double* v_here = &values_[(depth - 1) * stride];
    const double* v_next =
        depth + 1 < horizon ? &values_[depth * stride] : nullptr;
    const double* downloads = &download_s_[depth * levels];
    for (std::size_t b = 0; b < bins; ++b) {
      const double buffer = binner.center(b);
      for (std::size_t prev = 0; prev < levels; ++prev) {
        double best = -std::numeric_limits<double>::infinity();
        for (std::size_t level = 0; level < levels; ++level) {
          ++evaluations;
          const double download_s = downloads[level];
          const double rebuffer = std::max(0.0, download_s - buffer);
          const double next_buffer =
              std::min(std::max(buffer - download_s, 0.0) + chunk_duration_s_,
                       buffer_capacity_s);
          double value = level_quality_[level] - w.mu * rebuffer -
                         (rebuffer > 0.0 ? w.mu_event : 0.0) -
                         switch_cost_[level * levels + prev];
          if (v_next != nullptr) {
            value += v_next[binner.bin(next_buffer) * levels + level];
          }
          best = std::max(best, value);
        }
        v_here[b * levels + prev] = best;
      }
    }
  }
  return evaluations;
}

double DpHorizonSolver::action_value(std::size_t depth, std::size_t horizon,
                                     double buffer_s, std::size_t prev_level,
                                     bool has_prev, std::size_t level,
                                     double buffer_capacity_s,
                                     const util::LinearBinner& binner,
                                     double* next_buffer_out) const {
  const std::size_t levels = level_quality_.size();
  const qoe::QoeWeights& w = qoe_->weights();
  const double download_s = download_s_[depth * levels + level];
  const double rebuffer = std::max(0.0, download_s - buffer_s);
  const double next_buffer =
      std::min(std::max(buffer_s - download_s, 0.0) + chunk_duration_s_,
               buffer_capacity_s);
  double value = level_quality_[level] - w.mu * rebuffer -
                 (rebuffer > 0.0 ? w.mu_event : 0.0);
  if (has_prev) {
    value -= switch_cost_[level * levels + prev_level];
  }
  if (depth + 1 < horizon) {
    // Successor depth d+1 lives at row d of values_ (rows cover [1, horizon)).
    const std::size_t stride = config_.buffer_bins * levels;
    value += values_[depth * stride + binner.bin(next_buffer) * levels + level];
  }
  if (next_buffer_out != nullptr) *next_buffer_out = next_buffer;
  return value;
}

HorizonSolution DpHorizonSolver::solve(const HorizonProblem& problem) {
  const std::size_t horizon =
      prepare(problem.predicted_kbps, problem.first_chunk);
  const std::size_t levels = level_quality_.size();
  const util::LinearBinner binner(0.0, problem.buffer_capacity_s,
                                  config_.buffer_bins);

  std::size_t evaluations =
      build_values(problem.predicted_kbps, problem.first_chunk, horizon,
                   problem.buffer_capacity_s, binner);

  // Forward walk on the exact (unbinned) buffer: at each depth, commit to
  // the action maximizing immediate value + grid value-to-go. Ties break
  // toward the higher rung, matching the branch-and-bound search order.
  HorizonSolution solution;
  solution.levels.resize(horizon);
  double buffer = problem.buffer_s;
  std::size_t prev = problem.prev_level;
  bool has_prev = problem.has_prev;
  double objective = 0.0;
  const qoe::QoeWeights& w = qoe_->weights();
  for (std::size_t depth = 0; depth < horizon; ++depth) {
    std::size_t best_level = levels - 1;
    double best_value = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < levels; ++i) {
      const std::size_t level = levels - 1 - i;
      ++evaluations;
      const double value =
          action_value(depth, horizon, buffer, prev, has_prev, level,
                       problem.buffer_capacity_s, binner, nullptr);
      if (value > best_value) {
        best_value = value;
        best_level = level;
      }
    }
    // Re-evaluate the committed step exactly to accumulate the true
    // objective (action_value mixes in the approximate value-to-go).
    const double download_s = download_s_[depth * levels + best_level];
    const double rebuffer = std::max(0.0, download_s - buffer);
    double step = level_quality_[best_level] - w.mu * rebuffer -
                  (rebuffer > 0.0 ? w.mu_event : 0.0);
    if (has_prev) {
      step -= switch_cost_[best_level * levels + prev];
    }
    objective += step;
    buffer = std::min(std::max(buffer - download_s, 0.0) + chunk_duration_s_,
                      problem.buffer_capacity_s);
    solution.levels[depth] = best_level;
    prev = best_level;
    has_prev = true;
  }
  solution.objective = objective;
  solution.nodes_expanded = evaluations;

  if (config_.cross_check) {
    HorizonProblem exact = problem;
    exact.warm_hint = {};
    const HorizonSolution reference = bnb_.solve(exact, bnb_workspace_);
    const double gap = reference.objective - solution.objective;
    ++cross_check_stats_.solves;
    cross_check_stats_.max_gap = std::max(cross_check_stats_.max_gap, gap);
    if (reference.levels.front() == solution.levels.front()) {
      ++cross_check_stats_.first_decision_matches;
    }
    constexpr double kEps = 1e-9;
    if (gap < -kEps || gap > tolerance_bound(problem) + kEps) {
      ++cross_check_stats_.violations;
    }
  }
  return solution;
}

double DpHorizonSolver::plan_objective(
    const HorizonProblem& problem, std::span<const std::size_t> levels) const {
  const std::size_t horizon =
      std::min(problem.predicted_kbps.size(),
               manifest_->chunk_count() - problem.first_chunk);
  if (levels.size() != horizon) {
    throw std::invalid_argument("plan_objective: plan/horizon length mismatch");
  }
  const std::size_t level_count = level_quality_.size();
  const qoe::QoeWeights& w = qoe_->weights();
  double value = 0.0;
  double buffer = problem.buffer_s;
  std::size_t prev = problem.prev_level;
  bool has_prev = problem.has_prev;
  for (std::size_t depth = 0; depth < horizon; ++depth) {
    const std::size_t level = levels[depth];
    if (level >= level_count) {
      throw std::invalid_argument("plan_objective: level out of range");
    }
    const double download_s =
        manifest_->chunk_kilobits(problem.first_chunk + depth, level) /
        problem.predicted_kbps[depth];
    const double rebuffer = std::max(0.0, download_s - buffer);
    buffer = std::min(std::max(buffer - download_s, 0.0) + chunk_duration_s_,
                      problem.buffer_capacity_s);
    double step = level_quality_[level] - w.mu * rebuffer -
                  (rebuffer > 0.0 ? w.mu_event : 0.0);
    if (has_prev) {
      step -= switch_cost_[level * level_count + prev];
    }
    value += step;
    prev = level;
    has_prev = true;
  }
  return value;
}

double DpHorizonSolver::tolerance_bound(const HorizonProblem& problem) const {
  const std::size_t horizon =
      std::min(problem.predicted_kbps.size(),
               manifest_->chunk_count() - problem.first_chunk);
  const double n = static_cast<double>(horizon);
  const double delta =
      problem.buffer_capacity_s / static_cast<double>(config_.buffer_bins);
  const qoe::QoeWeights& w = qoe_->weights();
  double bound = w.mu * delta * n * (n - 1.0) / 2.0;
  if (w.mu_event > 0.0) bound += 2.0 * (n - 1.0) * w.mu_event;
  return bound;
}

std::size_t DpHorizonSolver::solve_slice(std::span<const double> forecast,
                                         std::size_t first_chunk,
                                         double buffer_capacity_s,
                                         const util::LinearBinner& roots,
                                         std::size_t root_bins,
                                         std::span<std::uint8_t> decisions) {
  const std::size_t horizon = prepare(forecast, first_chunk);
  const std::size_t levels = level_quality_.size();
  if (decisions.size() != levels * root_bins) {
    throw std::invalid_argument("solve_slice: decision span size mismatch");
  }
  const util::LinearBinner binner(0.0, buffer_capacity_s, config_.buffer_bins);
  std::size_t evaluations =
      build_values(forecast, first_chunk, horizon, buffer_capacity_s, binner);
  for (std::size_t prev = 0; prev < levels; ++prev) {
    for (std::size_t b = 0; b < root_bins; ++b) {
      const double buffer = roots.center(b);
      std::size_t best_level = levels - 1;
      double best_value = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < levels; ++i) {
        const std::size_t level = levels - 1 - i;
        ++evaluations;
        const double value =
            action_value(0, horizon, buffer, prev, /*has_prev=*/true, level,
                         buffer_capacity_s, binner, nullptr);
        if (value > best_value) {
          best_value = value;
          best_level = level;
        }
      }
      decisions[prev * root_bins + b] = static_cast<std::uint8_t>(best_level);
    }
  }
  return evaluations;
}

}  // namespace abr::core
