#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/horizon_solver.hpp"
#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "util/binning.hpp"

namespace abr::core {

/// Which algorithm solves the moving-horizon problem.
enum class SolverBackend {
  kBranchAndBound,   ///< exact depth-first search (HorizonSolver)
  kValueIteration,   ///< discretized DP on a buffer grid (DpHorizonSolver)
};

const char* solver_backend_name(SolverBackend backend);

/// Discretization knobs of the value-iteration backend.
struct DpSolverConfig {
  /// Buffer-grid resolution over [0, Bmax]. The suboptimality bound is
  /// proportional to Bmax / buffer_bins (see tolerance_bound), so finer
  /// grids trade memory/time for exactness. 600 keeps the bound small
  /// against the Eq. (5) scale while one backward pass stays ~10^5 ops.
  std::size_t buffer_bins = 600;

  /// Run the exact branch-and-bound solver alongside every solve and track
  /// the objective gap against tolerance_bound(). For tests and the
  /// tournament's exactness gate; never enabled on the hot path.
  bool cross_check = false;
};

/// Approximate HorizonProblem solver by backward value iteration over a
/// discretized buffer grid — the Puffer-style table formulation of the
/// paper's Section 5, applied online.
///
/// States are (depth, buffer bin, previous level); one backward pass costs
/// O(horizon * buffer_bins * levels^2). The returned plan is extracted by a
/// forward walk that keeps the *exact* (unbinned) buffer and consults the
/// grid value function only for the tail, and the reported objective is the
/// exact Eq. (5) value of that plan under the same step recurrence
/// HorizonSolver uses. Hence solve() never overstates its objective, and
///
///   bnb.objective - dp.objective  in  [0, tolerance_bound(problem)]
///
/// is the exactness contract, pinned by tests/dp_solver_test.cpp and the
/// tournament's cross-check gate.
///
/// Derivation of the bound: snapping the successor buffer to its bin center
/// perturbs it by at most delta/2 (delta = Bmax / buffer_bins). The
/// value-to-go with d of N steps remaining is Lipschitz in buffer with
/// constant at most mu * d (only the rebuffer term of each remaining step
/// depends on the buffer, with slope at most mu; the buffer transition
/// itself is 1-Lipschitz; quality and switch terms are buffer-free). The
/// standard approximate-DP argument then bounds the greedy plan's loss by
/// twice the summed per-stage approximation error:
///
///   loss <= 2 * sum_{d=1}^{N-1} (mu * (N - d)) * delta / 2
///         = mu * delta * N * (N - 1) / 2 .
///
/// A positive mu_event adds a jump discontinuity of that size at the
/// rebuffer boundary, contributing a further 2 * (N - 1) * mu_event.
///
/// Everything is a pure function of (manifest, qoe, config, problem): no
/// wall clock, no RNG, so two runs produce bit-identical plans.
class DpHorizonSolver {
 public:
  struct CrossCheckStats {
    std::size_t solves = 0;
    std::size_t violations = 0;        ///< gap outside [-eps, bound + eps]
    std::size_t first_decision_matches = 0;  ///< dp and bnb agree on chunk k
    double max_gap = 0.0;              ///< worst observed bnb - dp objective
  };

  /// The model and manifest must outlive the solver. Not thread-safe across
  /// concurrent solves (owns its scratch); use one instance per thread.
  DpHorizonSolver(const media::VideoManifest& manifest,
                  const qoe::QoeModel& qoe, DpSolverConfig config = {});

  /// Solves by value iteration; ignores HorizonProblem::warm_hint (the DP
  /// pass costs the same either way). Throws on the same malformed inputs
  /// HorizonSolver rejects. nodes_expanded reports (state, action)
  /// evaluations — the DP's deterministic effort unit.
  HorizonSolution solve(const HorizonProblem& problem);

  /// Exact Eq. (5) objective of `levels` under the problem's forecast — the
  /// identical step recurrence HorizonSolver evaluates. Exposed so tests and
  /// the cross-check can score arbitrary plans.
  double plan_objective(const HorizonProblem& problem,
                        std::span<const std::size_t> levels) const;

  /// The guaranteed worst-case suboptimality of solve() for this problem
  /// (see the class comment for the derivation).
  double tolerance_bound(const HorizonProblem& problem) const;

  /// FastMPC slice build: one backward pass for `forecast`, then the depth-0
  /// decision for every (previous level, root-buffer-bin center) cell.
  /// decisions must have size levels * root_bins, laid out
  /// [prev * root_bins + bin] — the contiguous per-throughput-bin plane of
  /// FastMpcTable's flat index. Returns the (state, action) evaluations
  /// spent.
  std::size_t solve_slice(std::span<const double> forecast,
                          std::size_t first_chunk, double buffer_capacity_s,
                          const util::LinearBinner& roots,
                          std::size_t root_bins,
                          std::span<std::uint8_t> decisions);

  const DpSolverConfig& config() const { return config_; }
  const CrossCheckStats& cross_check_stats() const {
    return cross_check_stats_;
  }

 private:
  /// Validates the problem shape and returns the clipped horizon length.
  std::size_t prepare(std::span<const double> forecast,
                      std::size_t first_chunk) const;

  /// Fills download_s_ and values_ for the given forecast: values_[(d - 1) *
  /// bins * levels + b * levels + p] is the value-to-go from depth d in
  /// [1, horizon) at buffer bin b having just fetched level p. Returns the
  /// (state, action) evaluations spent.
  std::size_t build_values(std::span<const double> forecast,
                           std::size_t first_chunk, std::size_t horizon,
                           double buffer_capacity_s,
                           const util::LinearBinner& binner);

  /// Value of committing to `level` at `depth` from the exact buffer:
  /// immediate step value plus the grid value-to-go of the successor state.
  double action_value(std::size_t depth, std::size_t horizon, double buffer_s,
                      std::size_t prev_level, bool has_prev, std::size_t level,
                      double buffer_capacity_s,
                      const util::LinearBinner& binner,
                      double* next_buffer_out) const;

  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;
  DpSolverConfig config_;

  /// Per-level q(R) and lambda-weighted |q_i - q_j|, precomputed like
  /// HorizonSolver's.
  std::vector<double> level_quality_;
  std::vector<double> switch_cost_;  ///< [level * levels + prev_level]
  double chunk_duration_s_ = 0.0;

  // Per-solve scratch (kept at high-water capacity).
  std::vector<double> download_s_;  ///< [depth * levels + level]
  std::vector<double> values_;      ///< see build_values

  /// Cross-check machinery, used only when config_.cross_check.
  HorizonSolver bnb_;
  HorizonSolver::Workspace bnb_workspace_;
  CrossCheckStats cross_check_stats_;
};

}  // namespace abr::core
