#include "core/fastmpc_table.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "core/dp_solver.hpp"
#include "core/horizon_solver.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "util/parallel.hpp"

namespace abr::core {

namespace {

constexpr char kMagic[8] = {'F', 'M', 'P', 'C', 'T', 'B', 'L', '1'};

void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void append_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  double f64() {
    need(8);
    double v = 0.0;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  std::string_view rest() const { return bytes_.substr(pos_); }

  void expect_magic() {
    need(8);
    if (std::memcmp(bytes_.data(), kMagic, 8) != 0) {
      throw std::invalid_argument("FastMpcTable: bad magic");
    }
    pos_ += 8;
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) {
      throw std::invalid_argument("FastMpcTable: truncated input");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

FastMpcTable::FastMpcTable(FastMpcConfig config, std::vector<double> ladder,
                           double chunk_duration_s,
                           util::RleSequence decisions)
    : config_(config),
      ladder_(std::move(ladder)),
      chunk_duration_s_(chunk_duration_s),
      buffer_binner_(0.0, config.buffer_capacity_s, config.buffer_bins),
      throughput_binner_(config.throughput_lo_kbps, config.throughput_hi_kbps,
                         config.throughput_bins),
      decisions_(std::move(decisions)),
      lookup_histogram_(&obs::MetricsRegistry::global().histogram(
          obs::kSolveLatencyUs, obs::solve_algorithm_label("FastMPC"))) {
  if (ladder_.empty()) {
    throw std::invalid_argument("FastMpcTable: empty ladder");
  }
  if (decisions_.size() != cell_count()) {
    throw std::invalid_argument("FastMpcTable: decision count mismatch");
  }
  if (config_.flat_lookup) {
    flat_decisions_ = util::rle_decode(decisions_.runs());
  }
}

std::size_t FastMpcTable::cell_count() const {
  return config_.buffer_bins * ladder_.size() * config_.throughput_bins;
}

std::size_t FastMpcTable::flat_index(std::size_t buffer_bin,
                                     std::size_t prev_level,
                                     std::size_t throughput_bin) const {
  // Buffer is the innermost dimension: the optimal decision changes slowly
  // along the buffer axis, which maximizes run lengths for the RLE
  // compression of Section 5.2.
  return (throughput_bin * ladder_.size() + prev_level) * config_.buffer_bins +
         buffer_bin;
}

FastMpcTable FastMpcTable::build(const media::VideoManifest& manifest,
                                 const qoe::QoeModel& qoe,
                                 FastMpcConfig config,
                                 FastMpcBuildStats* stats) {
  if (config.buffer_bins == 0 || config.throughput_bins == 0 ||
      config.horizon == 0) {
    throw std::invalid_argument("FastMpcConfig: zero dimension");
  }
  // The offline solves run against a chunk-agnostic CBR video with the same
  // ladder: `horizon` identical chunks suffice.
  const media::VideoManifest generic = media::VideoManifest::cbr(
      config.horizon, manifest.chunk_duration_s(), manifest.bitrates_kbps());

  const std::size_t levels = generic.level_count();
  const util::LinearBinner buffer_binner(0.0, config.buffer_capacity_s,
                                         config.buffer_bins);
  const util::LogBinner throughput_binner(config.throughput_lo_kbps,
                                          config.throughput_hi_kbps,
                                          config.throughput_bins);

  std::vector<std::uint8_t> decisions(config.buffer_bins * levels *
                                      config.throughput_bins);
  std::atomic<std::size_t> total_nodes{0};

  // One task per throughput bin (the outermost table dimension); workers
  // solve the full (previous level x buffer bin) plane of that bin,
  // sweeping the buffer dimension in order and seeding each solve with the
  // neighboring cell's solution (warm_start). A throwing solve propagates
  // out of parallel_for instead of terminating.
  const auto build_start = std::chrono::steady_clock::now();
  util::parallel_for(
      config.throughput_bins,
      [&](std::size_t c) {
        const std::vector<double> forecast(config.horizon,
                                           throughput_binner.center(c));
        if (config.dp_backend) {
          // One backward value-iteration pass serves the entire
          // (previous level x buffer bin) plane of this throughput bin.
          DpSolverConfig dp_config;
          dp_config.buffer_bins = config.dp_buffer_bins;
          DpHorizonSolver dp(generic, qoe, dp_config);
          const std::size_t plane = levels * config.buffer_bins;
          const std::size_t nodes = dp.solve_slice(
              forecast, 0, config.buffer_capacity_s, buffer_binner,
              config.buffer_bins,
              std::span<std::uint8_t>(decisions.data() + c * plane, plane));
          total_nodes.fetch_add(nodes, std::memory_order_relaxed);
          return;
        }
        HorizonSolver solver(generic, qoe);
        HorizonSolver::Workspace workspace;
        std::vector<std::size_t> neighbor_plan;
        std::size_t bin_nodes = 0;
        for (std::size_t prev = 0; prev < levels; ++prev) {
          for (std::size_t b = 0; b < config.buffer_bins; ++b) {
            HorizonProblem problem;
            problem.buffer_s = buffer_binner.center(b);
            problem.prev_level = prev;
            problem.has_prev = true;
            problem.predicted_kbps = forecast;
            problem.first_chunk = 0;
            problem.buffer_capacity_s = config.buffer_capacity_s;
            if (config.warm_start) problem.warm_hint = neighbor_plan;
            HorizonSolution solution = solver.solve(problem, workspace);
            decisions[(c * levels + prev) * config.buffer_bins + b] =
                static_cast<std::uint8_t>(solution.levels.front());
            bin_nodes += solution.nodes_expanded;
            if (config.warm_start) {
              neighbor_plan = std::move(solution.levels);
            }
          }
        }
        total_nodes.fetch_add(bin_nodes, std::memory_order_relaxed);
      },
      config.threads);
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    build_start)
          .count();
  obs::MetricsRegistry::global()
      .histogram(obs::kTableBuildSeconds, "",
                 obs::exponential_buckets(0.001, 2.0, 20))
      .observe(build_seconds);
  if (stats != nullptr) {
    stats->total_nodes_expanded = total_nodes.load(std::memory_order_relaxed);
    stats->solves = decisions.size();
    stats->wall_seconds = build_seconds;
  }

  return FastMpcTable(config, manifest.bitrates_kbps(),
                      manifest.chunk_duration_s(),
                      util::RleSequence::from_raw(decisions));
}

std::size_t FastMpcTable::lookup(double buffer_s, std::size_t prev_level,
                                 double throughput_kbps) const {
  assert(prev_level < ladder_.size());
  obs::LatencyTimer timer(lookup_histogram_);
  const std::size_t b = buffer_binner_.bin(buffer_s);
  const std::size_t c = throughput_binner_.bin(throughput_kbps);
  const std::size_t index = flat_index(b, prev_level, c);
  if (!flat_decisions_.empty()) return flat_decisions_[index];
  return decisions_.at(index);
}

std::string FastMpcTable::serialize() const {
  std::string out;
  out.append(kMagic, 8);
  append_u32(out, static_cast<std::uint32_t>(config_.buffer_bins));
  append_u32(out, static_cast<std::uint32_t>(config_.throughput_bins));
  append_u32(out, static_cast<std::uint32_t>(config_.horizon));
  append_u32(out, static_cast<std::uint32_t>(ladder_.size()));
  append_f64(out, config_.throughput_lo_kbps);
  append_f64(out, config_.throughput_hi_kbps);
  append_f64(out, config_.buffer_capacity_s);
  append_f64(out, chunk_duration_s_);
  for (const double rate : ladder_) append_f64(out, rate);
  out += decisions_.serialize();
  return out;
}

FastMpcTable FastMpcTable::deserialize(std::string_view bytes) {
  Reader reader(bytes);
  reader.expect_magic();
  FastMpcConfig config;
  config.buffer_bins = reader.u32();
  config.throughput_bins = reader.u32();
  config.horizon = reader.u32();
  const std::uint32_t levels = reader.u32();
  config.throughput_lo_kbps = reader.f64();
  config.throughput_hi_kbps = reader.f64();
  config.buffer_capacity_s = reader.f64();
  const double chunk_duration_s = reader.f64();
  if (levels == 0 || levels > 255) {
    throw std::invalid_argument("FastMpcTable: bad level count");
  }
  std::vector<double> ladder(levels);
  for (double& rate : ladder) rate = reader.f64();
  util::RleSequence decisions = util::RleSequence::deserialize(reader.rest());
  // Validate decision values are in range.
  for (const util::RleRun& run : decisions.runs()) {
    if (run.value >= levels) {
      throw std::invalid_argument("FastMpcTable: decision out of range");
    }
  }
  return FastMpcTable(config, std::move(ladder), chunk_duration_s,
                      std::move(decisions));
}

void FastMpcTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("FastMpcTable: cannot write " + path);
  const std::string bytes = serialize();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("FastMpcTable: write failed " + path);
}

FastMpcTable FastMpcTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FastMpcTable: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

bool operator==(const FastMpcTable& a, const FastMpcTable& b) {
  // `threads` is a build-time knob, not table content; everything else must
  // match (bins, ranges, horizon, ladder, and every decision).
  const FastMpcConfig& ca = a.config_;
  const FastMpcConfig& cb = b.config_;
  return ca.buffer_bins == cb.buffer_bins &&
         ca.throughput_bins == cb.throughput_bins &&
         ca.throughput_lo_kbps == cb.throughput_lo_kbps &&
         ca.throughput_hi_kbps == cb.throughput_hi_kbps &&
         ca.horizon == cb.horizon &&
         ca.buffer_capacity_s == cb.buffer_capacity_s &&
         a.ladder_ == b.ladder_ &&
         a.chunk_duration_s_ == b.chunk_duration_s_ &&
         a.decisions_ == b.decisions_;
}

FastMpcController::FastMpcController(std::shared_ptr<const FastMpcTable> table)
    : table_(std::move(table)) {
  if (table_ == nullptr) {
    throw std::invalid_argument("FastMpcController: null table");
  }
}

std::size_t FastMpcController::prediction_horizon() const {
  return table_->config().horizon;
}

std::size_t FastMpcController::decide(const sim::AbrState& state,
                                      const media::VideoManifest& manifest) {
  if (manifest.level_count() != table_->level_count()) {
    throw std::logic_error("FastMpcController: manifest/table ladder mismatch");
  }
  if (state.prediction_kbps.empty() || state.prediction_kbps.front() <= 0.0) {
    telemetry_ = sim::DecisionTelemetry{};  // cold start is a rule decision
    return 0;  // no throughput information yet: start lowest
  }
  const std::size_t prev = state.has_prev ? state.prev_level : 0;
  telemetry_ = sim::DecisionTelemetry{};
  telemetry_.path = "table";
  telemetry_.effective_forecast_kbps = state.prediction_kbps.front();
  return table_->lookup(state.buffer_s, prev, state.prediction_kbps.front());
}

}  // namespace abr::core
