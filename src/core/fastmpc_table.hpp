#pragma once

#include <memory>
#include <string>
#include <vector>

#include "media/manifest.hpp"
#include "obs/metrics.hpp"
#include "qoe/qoe.hpp"
#include "sim/controller.hpp"
#include "util/binning.hpp"
#include "util/rle.hpp"

namespace abr::core {

/// Discretization and horizon parameters of the FastMPC table (Section 5).
struct FastMpcConfig {
  /// Bins for the buffer-level dimension (linear over [0, Bmax]); the paper
  /// finds 100 near-optimal (Section 5.2, Fig. 12a).
  std::size_t buffer_bins = 100;

  /// Bins for the predicted-throughput dimension (log-spaced over
  /// [throughput_lo, throughput_hi]).
  std::size_t throughput_bins = 100;
  double throughput_lo_kbps = 50.0;
  double throughput_hi_kbps = 10000.0;

  /// MPC look-ahead horizon used for the offline solves.
  std::size_t horizon = 5;

  /// Bmax assumed during offline solves; must match the player.
  double buffer_capacity_s = 30.0;

  /// Worker threads for the offline enumeration; 0 = hardware concurrency.
  std::size_t threads = 0;

  /// Warm-start the offline enumeration: sweep each throughput bin in
  /// buffer-bin order and seed every solve with its neighbor cell's
  /// solution (adjacent cells differ only in initial buffer). Exactness
  /// preserving — the built table is `==` to a cold build (pinned by test
  /// and by solver_bench); the switch exists so the bench can measure the
  /// node-count collapse.
  bool warm_start = true;

  /// Keep a decoded one-byte-per-cell copy of the table (~50 kB at the
  /// paper's 100x5x100 defaults) and serve lookups from it by direct
  /// indexing instead of the RLE binary search. Representation only:
  /// lookups return identical decisions, serialization stays RLE, and the
  /// Table 1 size accounting is unaffected.
  bool flat_lookup = false;

  /// Build the table with the value-iteration DP backend instead of
  /// per-cell branch-and-bound: one backward pass per throughput bin fills
  /// its whole (previous level x buffer bin) plane at once
  /// (DpHorizonSolver::solve_slice). Decisions agree with the exact build
  /// within the DP discretization tolerance (agreement fraction pinned by
  /// test); build effort drops from hundreds of search nodes per cell to a
  /// handful of arithmetic evaluations.
  bool dp_backend = false;

  /// Buffer-grid resolution of the DP backend's value function (independent
  /// of buffer_bins, which fixes the table's own root grid).
  std::size_t dp_buffer_bins = 600;

  friend bool operator==(const FastMpcConfig&, const FastMpcConfig&) = default;
};

/// Offline-enumeration effort report for FastMpcTable::build.
/// total_nodes_expanded and solves are deterministic for a given
/// (manifest, qoe, config) — wall_seconds is not.
struct FastMpcBuildStats {
  std::size_t total_nodes_expanded = 0;  ///< summed over all cell solves
  std::size_t solves = 0;                ///< == cell count
  double wall_seconds = 0.0;
};

/// The FastMPC decision table (Fig. 5 of the paper): for every
/// (buffer bin, previous level, throughput bin) scenario, the optimal first
/// bitrate of the exact horizon solve, computed offline, stored run-length
/// compressed, and queried online by binary search — no solver in the player.
class FastMpcTable {
 public:
  /// Enumerates the scenario space and solves each instance exactly.
  /// Sizes are taken as CBR at the ladder's nominal bitrates (the table is
  /// chunk-agnostic; the paper's test video is CBR). When `stats` is
  /// non-null it receives the enumeration effort (node counts, wall time).
  static FastMpcTable build(const media::VideoManifest& manifest,
                            const qoe::QoeModel& qoe, FastMpcConfig config,
                            FastMpcBuildStats* stats = nullptr);

  /// Optimal ladder index for the scenario closest to the query (clamped
  /// binning, Section 5.1). Served from the decoded flat array when
  /// config().flat_lookup is set, from the RLE binary search otherwise;
  /// both return identical decisions.
  std::size_t lookup(double buffer_s, std::size_t prev_level,
                     double throughput_kbps) const;

  const FastMpcConfig& config() const { return config_; }
  const std::vector<double>& ladder_kbps() const { return ladder_; }
  std::size_t level_count() const { return ladder_.size(); }

  /// Scenario count = buffer_bins * levels * throughput_bins.
  std::size_t cell_count() const;

  // --- Table 1 size accounting -------------------------------------------
  /// Uncompressed binary footprint: one byte per cell.
  std::size_t full_table_bytes() const { return cell_count(); }
  /// Compressed binary footprint (our on-disk format).
  std::size_t rle_binary_bytes() const { return decisions_.binary_size_bytes(); }
  /// Modeled size as JavaScript text, uncompressed ("v,v,v,...").
  std::size_t js_full_bytes() const {
    return decisions_.javascript_full_table_size_bytes();
  }
  /// Modeled size as JavaScript text, run-length coded ("v,len,...").
  std::size_t js_rle_bytes() const {
    return decisions_.javascript_text_size_bytes();
  }
  std::size_t run_count() const { return decisions_.run_count(); }

  /// Binary round-trip (config + ladder + RLE payload). deserialize()
  /// throws std::invalid_argument on malformed input.
  std::string serialize() const;
  static FastMpcTable deserialize(std::string_view bytes);

  void save(const std::string& path) const;
  static FastMpcTable load(const std::string& path);

  friend bool operator==(const FastMpcTable& a, const FastMpcTable& b);

 private:
  FastMpcTable(FastMpcConfig config, std::vector<double> ladder,
               double chunk_duration_s, util::RleSequence decisions);

  std::size_t flat_index(std::size_t buffer_bin, std::size_t prev_level,
                         std::size_t throughput_bin) const;

  FastMpcConfig config_;
  std::vector<double> ladder_;
  double chunk_duration_s_ = 0.0;
  util::LinearBinner buffer_binner_;
  util::LogBinner throughput_binner_;
  util::RleSequence decisions_;
  /// Decoded copy of decisions_ for O(1) lookups; empty unless
  /// config_.flat_lookup. Never serialized (the on-disk format stays RLE).
  std::vector<std::uint8_t> flat_decisions_;
  /// Online lookup latency, labeled algorithm="FastMPC" — the FastMPC half
  /// of the Table 1 overhead comparison against the MPC solve histogram.
  obs::Histogram* lookup_histogram_;
};

/// The online half of FastMPC: a BitrateController that consults a
/// prebuilt table. Adds only a binary search per decision (the paper
/// measures ~zero CPU overhead and ~60 kB of memory, Section 7.4).
class FastMpcController final : public sim::BitrateController {
 public:
  explicit FastMpcController(std::shared_ptr<const FastMpcTable> table);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::size_t prediction_horizon() const override;
  std::string name() const override { return "FastMPC"; }
  void reset() override { telemetry_ = sim::DecisionTelemetry{}; }
  const sim::DecisionTelemetry* last_decision() const override {
    return &telemetry_;
  }

 private:
  std::shared_ptr<const FastMpcTable> table_;
  sim::DecisionTelemetry telemetry_;  ///< refreshed by each decide()
};

}  // namespace abr::core
