#include "core/festive.hpp"

#include <cassert>
#include <cmath>

namespace abr::core {

FestiveController::FestiveController() : FestiveController(Params{}) {}

FestiveController::FestiveController(Params params) : params_(params) {
  assert(params.safety_factor > 0.0);
  assert(params.alpha >= 0.0);
  assert(params.switch_window > 0);
}

void FestiveController::reset() {
  recent_switches_.clear();
  chunks_at_current_ = 0;
}

double FestiveController::stability_score(bool prospective_switch) const {
  std::size_t switches = prospective_switch ? 1 : 0;
  for (const bool switched : recent_switches_) {
    if (switched) ++switches;
  }
  return std::pow(2.0, static_cast<double>(switches));
}

std::size_t FestiveController::decide(const sim::AbrState& state,
                                      const media::VideoManifest& manifest) {
  const auto commit = [&](std::size_t level) {
    const bool switched = state.has_prev && level != state.prev_level;
    recent_switches_.push_back(switched);
    while (recent_switches_.size() > params_.switch_window) {
      recent_switches_.pop_front();
    }
    chunks_at_current_ = switched ? 0 : chunks_at_current_ + 1;
    return level;
  };

  if (!state.has_prev || state.prediction_kbps.empty() ||
      state.prediction_kbps.front() <= 0.0) {
    return commit(0);
  }

  const double target_kbps =
      params_.safety_factor * state.prediction_kbps.front();
  const std::size_t reference_level =
      manifest.highest_level_not_above(target_kbps);
  const std::size_t current = state.prev_level;

  // Gradual switching: one ladder step at a time; stepping up to level b
  // requires having dwelt at the current level for >= b chunks.
  std::size_t candidate = current;
  if (reference_level > current) {
    const std::size_t next = current + 1;
    if (chunks_at_current_ >= next) candidate = next;
  } else if (reference_level < current) {
    candidate = current - 1;
  }
  if (candidate == current) return commit(current);

  // Combined score: stay vs move.
  const double reference_kbps = manifest.bitrate_kbps(reference_level);
  const auto efficiency = [&](std::size_t level) {
    const double denom = std::min(target_kbps, reference_kbps);
    return std::abs(manifest.bitrate_kbps(level) / denom - 1.0);
  };
  const double stay_score =
      stability_score(false) + params_.alpha * efficiency(current);
  const double move_score =
      stability_score(true) + params_.alpha * efficiency(candidate);
  // Ties favour the candidate: the reference level is where the bandwidth
  // target says we should be. The epsilon absorbs rounding noise — with a
  // near-geometric ladder the two scores can land within an ulp.
  return commit(move_score <= stay_score + 1e-9 ? candidate : current);
}

}  // namespace abr::core
