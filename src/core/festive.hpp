#pragma once

#include <deque>

#include "sim/controller.hpp"

namespace abr::core {

/// FESTIVE (Jiang, Sekar, Zhang [34]) as configured in Section 7.1.2 item 6
/// of the paper: a rate-based algorithm that trades efficiency against
/// stability.
///
/// Per decision it computes a reference level (highest bitrate <= p * the
/// harmonic-mean throughput prediction), applies gradual switching (move at
/// most one ladder step; switching *up* to level b is only allowed after
/// dwelling at the current level for a number of chunks proportional to b,
/// FESTIVE Section 4.3), and then picks between staying and the candidate by
/// minimizing
///
///   score_stability(b) + alpha * score_efficiency(b)
///
/// with score_stability = 2^(switches in the last `switch_window` chunks,
/// counting the prospective one) and score_efficiency = |b / min(p * W,
/// b_ref) - 1|. The paper uses alpha = 12 and notes FESTIVE's randomized
/// chunk scheduling is disabled (single-player setting, no wait between
/// downloads), which does not hurt single-player QoE.
class FestiveController final : public sim::BitrateController {
 public:
  struct Params {
    double safety_factor = 1.0;  ///< p
    double alpha = 12.0;
    std::size_t switch_window = 5;
  };

  FestiveController();
  explicit FestiveController(Params params);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  void reset() override;
  std::string name() const override { return "FESTIVE"; }

 private:
  double stability_score(bool prospective_switch) const;

  Params params_;
  std::deque<bool> recent_switches_;  ///< newest last
  std::size_t chunks_at_current_ = 0;
};

}  // namespace abr::core
