#include "core/horizon_solver.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::core {

namespace {

/// Non-dominated (buffer, value) pairs seen at one (depth, level) node.
struct DominanceSet {
  std::vector<std::pair<double, double>> entries;  // (buffer_s, value)

  /// Returns false if (buffer, value) is dominated by an existing entry;
  /// otherwise inserts it (dropping entries it dominates) and returns true.
  bool insert(double buffer, double value) {
    for (const auto& [b, v] : entries) {
      if (b >= buffer && v >= value) return false;
    }
    std::erase_if(entries, [&](const auto& e) {
      return buffer >= e.first && value >= e.second;
    });
    entries.emplace_back(buffer, value);
    return true;
  }
};

}  // namespace

HorizonSolver::HorizonSolver(const media::VideoManifest& manifest,
                             const qoe::QoeModel& qoe)
    : manifest_(&manifest), qoe_(&qoe) {}

HorizonSolution HorizonSolver::solve(const HorizonProblem& problem) const {
  const media::VideoManifest& manifest = *manifest_;
  const qoe::QoeModel& qoe = *qoe_;
  const qoe::QoeWeights& w = qoe.weights();
  const std::size_t level_count = manifest.level_count();
  const double chunk_duration = manifest.chunk_duration_s();

  if (problem.first_chunk >= manifest.chunk_count()) {
    throw std::invalid_argument("HorizonProblem: first_chunk out of range");
  }
  const std::size_t horizon =
      std::min(problem.predicted_kbps.size(),
               manifest.chunk_count() - problem.first_chunk);
  if (horizon == 0) {
    throw std::invalid_argument("HorizonProblem: empty horizon");
  }
  for (std::size_t i = 0; i < horizon; ++i) {
    if (!(problem.predicted_kbps[i] > 0.0)) {
      throw std::invalid_argument("HorizonProblem: non-positive forecast");
    }
  }

  // Precompute per-level qualities (q is non-decreasing; top level is max).
  std::vector<double> level_quality(level_count);
  for (std::size_t level = 0; level < level_count; ++level) {
    level_quality[level] = qoe.quality(manifest.bitrate_kbps(level));
  }
  const double max_quality = level_quality.back();

  nodes_expanded_ = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_levels;
  std::vector<std::size_t> current_levels(horizon);
  std::vector<std::vector<DominanceSet>> frontier(
      horizon, std::vector<DominanceSet>(level_count));

  // Depth-first search; levels tried from highest quality down so the first
  // incumbent is strong and the admissible bound prunes aggressively.
  auto search = [&](auto&& self, std::size_t depth, double buffer,
                    std::size_t prev_level, bool has_prev,
                    double value) -> void {
    if (depth == horizon) {
      if (value > best_value) {
        best_value = value;
        best_levels = current_levels;
      }
      return;
    }
    const std::size_t chunk = problem.first_chunk + depth;
    const double forecast = problem.predicted_kbps[depth];
    const double optimistic_rest =
        static_cast<double>(horizon - depth - 1) * max_quality;

    for (std::size_t i = 0; i < level_count; ++i) {
      const std::size_t level = level_count - 1 - i;
      ++nodes_expanded_;

      const double download_s =
          manifest.chunk_kilobits(chunk, level) / forecast;
      const double rebuffer = std::max(0.0, download_s - buffer);
      const double next_buffer = std::min(
          std::max(buffer - download_s, 0.0) + chunk_duration,
          problem.buffer_capacity_s);

      double step_value = level_quality[level] - w.mu * rebuffer -
                          (rebuffer > 0.0 ? w.mu_event : 0.0);
      if (has_prev) {
        step_value -=
            w.lambda * std::abs(level_quality[level] - level_quality[prev_level]);
      }
      const double next_value = value + step_value;

      // Admissible bound: even with maximal quality and no penalties for the
      // remaining chunks this branch cannot beat the incumbent.
      if (next_value + optimistic_rest <= best_value) continue;

      // Dominance: a previously expanded branch reached this (depth, level)
      // with at least as much buffer and value.
      if (!frontier[depth][level].insert(next_buffer, next_value)) continue;

      current_levels[depth] = level;
      self(self, depth + 1, next_buffer, level, true, next_value);
    }
  };

  search(search, 0, problem.buffer_s, problem.prev_level, problem.has_prev,
         0.0);

  assert(!best_levels.empty());

  // Search-effort distribution (how well the prunings work per instance).
  static obs::Histogram& nodes_histogram =
      obs::MetricsRegistry::global().histogram(
          obs::kHorizonNodesExpanded, "",
          obs::exponential_buckets(1.0, 2.0, 20));
  nodes_histogram.observe(static_cast<double>(nodes_expanded_));

  HorizonSolution solution;
  solution.levels = std::move(best_levels);
  solution.objective = best_value;
  return solution;
}

}  // namespace abr::core
