#include "core/horizon_solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/names.hpp"

namespace abr::core {

bool HorizonSolver::Workspace::Frontier::insert(double buffer, double value) {
  // entries is sorted by buffer strictly descending; because it holds only
  // non-dominated points, value is strictly ascending. The first index whose
  // buffer is < `buffer` splits the set into potential dominators (before)
  // and potential dominatees (after).
  const auto split = std::partition_point(
      entries.begin(), entries.end(),
      [buffer](const Entry& e) { return e.buffer_s >= buffer; });
  // Among entries with buffer >= `buffer`, the last one has the largest
  // value, so one comparison decides dominance.
  if (split != entries.begin() && std::prev(split)->value >= value) {
    return false;
  }
  // Entries after the split have smaller buffers; those with value <= the
  // incoming one are dominated and form a contiguous run (values ascend).
  auto last = split;
  while (last != entries.end() && last->value <= value) ++last;
  if (split == last) {
    entries.insert(split, Entry{buffer, value});
  } else {
    *split = Entry{buffer, value};
    entries.erase(std::next(split), last);
  }
  return true;
}

HorizonSolver::HorizonSolver(const media::VideoManifest& manifest,
                             const qoe::QoeModel& qoe)
    : manifest_(&manifest),
      qoe_(&qoe),
      nodes_histogram_(&obs::MetricsRegistry::global().histogram(
          obs::kHorizonNodesExpanded, "",
          obs::exponential_buckets(1.0, 2.0, 20))) {
  const std::size_t levels = manifest.level_count();
  const double lambda = qoe.weights().lambda;
  level_quality_.resize(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    level_quality_[level] = qoe.quality(manifest.bitrate_kbps(level));
  }
  // q is non-decreasing in the ladder; the top level is the max.
  max_quality_ = level_quality_.back();
  switch_cost_.resize(levels * levels);
  for (std::size_t level = 0; level < levels; ++level) {
    for (std::size_t prev = 0; prev < levels; ++prev) {
      switch_cost_[level * levels + prev] =
          lambda * std::abs(level_quality_[level] - level_quality_[prev]);
    }
  }
}

HorizonSolution HorizonSolver::solve(const HorizonProblem& problem) const {
  Workspace workspace;
  return solve(problem, workspace);
}

HorizonSolution HorizonSolver::solve(const HorizonProblem& problem,
                                     Workspace& ws) const {
  const media::VideoManifest& manifest = *manifest_;
  const qoe::QoeWeights& w = qoe_->weights();
  const std::size_t levels = manifest.level_count();
  const double chunk_duration = manifest.chunk_duration_s();

  if (problem.first_chunk >= manifest.chunk_count()) {
    throw std::invalid_argument("HorizonProblem: first_chunk out of range");
  }
  const std::size_t horizon =
      std::min(problem.predicted_kbps.size(),
               manifest.chunk_count() - problem.first_chunk);
  if (horizon == 0) {
    throw std::invalid_argument("HorizonProblem: empty horizon");
  }
  for (std::size_t i = 0; i < horizon; ++i) {
    if (!(problem.predicted_kbps[i] > 0.0)) {
      throw std::invalid_argument("HorizonProblem: non-positive forecast");
    }
  }

  // --- Workspace preparation (no allocation once at high-water capacity) --
  ws.download_s_.resize(horizon * levels);
  for (std::size_t depth = 0; depth < horizon; ++depth) {
    const std::size_t chunk = problem.first_chunk + depth;
    const double forecast = problem.predicted_kbps[depth];
    for (std::size_t level = 0; level < levels; ++level) {
      ws.download_s_[depth * levels + level] =
          manifest.chunk_kilobits(chunk, level) / forecast;
    }
  }
  ws.optimistic_rest_.resize(horizon);
  for (std::size_t depth = 0; depth < horizon; ++depth) {
    ws.optimistic_rest_[depth] =
        static_cast<double>(horizon - depth - 1) * max_quality_;
  }
  if (ws.frontier_.size() < horizon * levels) {
    ws.frontier_.resize(horizon * levels);
  }
  for (std::size_t i = 0; i < horizon * levels; ++i) {
    ws.frontier_[i].entries.clear();
  }
  ws.current_levels_.resize(horizon);
  ws.best_levels_.clear();

  std::size_t nodes_expanded = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  // While false, the incumbent is only a bound (the warm-start hint): the
  // search prunes strictly-worse branches only and accepts ties, so the
  // first search-reached optimum — identical to the cold solve's — always
  // replaces the hint. This keeps warm-started results bit-identical.
  bool search_found = false;

  // --- Warm start: evaluate the hint with the exact step recurrence ------
  if (!problem.warm_hint.empty()) {
    ws.hint_levels_.resize(horizon);
    for (std::size_t depth = 0; depth < horizon; ++depth) {
      const std::size_t level = depth < problem.warm_hint.size()
                                    ? problem.warm_hint[depth]
                                    : ws.hint_levels_[depth - 1];
      if (level >= levels) {
        throw std::invalid_argument("HorizonProblem: warm_hint level range");
      }
      ws.hint_levels_[depth] = level;
    }
    double value = 0.0;
    double buffer = problem.buffer_s;
    std::size_t prev_level = problem.prev_level;
    bool has_prev = problem.has_prev;
    for (std::size_t depth = 0; depth < horizon; ++depth) {
      const std::size_t level = ws.hint_levels_[depth];
      const double download_s = ws.download_s_[depth * levels + level];
      const double rebuffer = std::max(0.0, download_s - buffer);
      buffer = std::min(std::max(buffer - download_s, 0.0) + chunk_duration,
                        problem.buffer_capacity_s);
      double step_value = level_quality_[level] - w.mu * rebuffer -
                          (rebuffer > 0.0 ? w.mu_event : 0.0);
      if (has_prev) {
        step_value -= switch_cost_[level * levels + prev_level];
      }
      value = value + step_value;
      prev_level = level;
      has_prev = true;
    }
    best_value = value;
    ws.best_levels_.assign(ws.hint_levels_.begin(), ws.hint_levels_.end());
  }

  // Depth-first search; levels tried from highest quality down so the first
  // incumbent is strong and the admissible bound prunes aggressively.
  auto search = [&](auto&& self, std::size_t depth, double buffer,
                    std::size_t prev_level, bool has_prev,
                    double value) -> void {
    if (depth == horizon) {
      if (value > best_value || (!search_found && value == best_value)) {
        best_value = value;
        ws.best_levels_.assign(ws.current_levels_.begin(),
                               ws.current_levels_.begin() +
                                   static_cast<std::ptrdiff_t>(horizon));
        search_found = true;
      }
      return;
    }
    const double* downloads = &ws.download_s_[depth * levels];
    const double optimistic_rest = ws.optimistic_rest_[depth];

    for (std::size_t i = 0; i < levels; ++i) {
      const std::size_t level = levels - 1 - i;
      ++nodes_expanded;

      const double download_s = downloads[level];
      const double rebuffer = std::max(0.0, download_s - buffer);
      const double next_buffer = std::min(
          std::max(buffer - download_s, 0.0) + chunk_duration,
          problem.buffer_capacity_s);

      double step_value = level_quality_[level] - w.mu * rebuffer -
                          (rebuffer > 0.0 ? w.mu_event : 0.0);
      if (has_prev) {
        step_value -= switch_cost_[level * levels + prev_level];
      }
      const double next_value = value + step_value;

      // Admissible bound: even with maximal quality and no penalties for
      // the remaining chunks this branch cannot beat the incumbent. While
      // the incumbent is the provisional hint, branches that could *tie* it
      // survive so tie-breaking matches the cold solve exactly.
      const double optimistic = next_value + optimistic_rest;
      if (search_found ? optimistic <= best_value : optimistic < best_value) {
        continue;
      }

      // Dominance: a previously expanded branch reached this (depth, level)
      // with at least as much buffer and value.
      if (!ws.frontier_[depth * levels + level].insert(next_buffer,
                                                       next_value)) {
        continue;
      }

      ws.current_levels_[depth] = level;
      self(self, depth + 1, next_buffer, level, true, next_value);
    }
  };

  search(search, 0, problem.buffer_s, problem.prev_level, problem.has_prev,
         0.0);

  assert(!ws.best_levels_.empty());

  // Search-effort distribution (how well the prunings work per instance).
  nodes_histogram_->observe(static_cast<double>(nodes_expanded));

  HorizonSolution solution;
  solution.levels.assign(ws.best_levels_.begin(), ws.best_levels_.end());
  solution.objective = best_value;
  solution.nodes_expanded = nodes_expanded;
  return solution;
}

}  // namespace abr::core
