#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "media/manifest.hpp"
#include "qoe/qoe.hpp"

namespace abr::core {

/// One instance of the moving-horizon problem QOE_MAX_STEADY (Fig. 3 of the
/// paper restricted to chunks [k, k+N-1]): given the buffer level, the
/// previously selected level, and a per-chunk throughput forecast, choose the
/// bitrate sequence maximizing the Eq. (5) objective over the horizon.
struct HorizonProblem {
  /// Buffer occupancy B_k at the decision point, seconds.
  double buffer_s = 0.0;

  /// Ladder index of the previous chunk. When !has_prev the smoothness term
  /// for the first horizon chunk is dropped (session start).
  std::size_t prev_level = 0;
  bool has_prev = false;

  /// Forecast throughput for each horizon chunk, kbps; its length defines
  /// the horizon N. All entries must be > 0.
  std::span<const double> predicted_kbps;

  /// Index of the first horizon chunk in the manifest (for VBR sizes).
  /// Chunks past the end of the video are skipped (shorter tail horizon).
  std::size_t first_chunk = 0;

  /// Playout buffer capacity Bmax, seconds.
  double buffer_capacity_s = 30.0;
};

/// Optimal levels for the horizon (levels[0] is the decision to apply) and
/// the objective value achieved.
struct HorizonSolution {
  std::vector<std::size_t> levels;
  double objective = 0.0;
};

/// Exact solver for HorizonProblem.
///
/// Depth-first enumeration over the |R|^N sequence space with two exact
/// prunings that leave the result optimal:
///  - admissible bound: current value + (remaining chunks) * max quality
///    cannot beat the incumbent;
///  - dominance: at a given (depth, level) a partial solution with both a
///    lower buffer and a lower accumulated objective than a previously seen
///    one can be discarded.
/// For the paper's configuration (5 levels, N = 5) the raw space is 3125
/// sequences; with pruning the solver comfortably handles the Fig. 12b
/// sweeps (N up to 9) and ladders of 10+ levels.
class HorizonSolver {
 public:
  /// The model and manifest must outlive the solver.
  HorizonSolver(const media::VideoManifest& manifest, const qoe::QoeModel& qoe);

  HorizonSolution solve(const HorizonProblem& problem) const;

  /// Number of search nodes expanded by the last solve (observability for
  /// the overhead microbenches).
  std::size_t last_nodes_expanded() const { return nodes_expanded_; }

 private:
  struct Frontier;  // per-(depth, level) dominance sets

  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;
  mutable std::size_t nodes_expanded_ = 0;
};

}  // namespace abr::core
