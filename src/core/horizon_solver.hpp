#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "media/manifest.hpp"
#include "obs/metrics.hpp"
#include "qoe/qoe.hpp"

namespace abr::core {

/// One instance of the moving-horizon problem QOE_MAX_STEADY (Fig. 3 of the
/// paper restricted to chunks [k, k+N-1]): given the buffer level, the
/// previously selected level, and a per-chunk throughput forecast, choose the
/// bitrate sequence maximizing the Eq. (5) objective over the horizon.
struct HorizonProblem {
  /// Buffer occupancy B_k at the decision point, seconds.
  double buffer_s = 0.0;

  /// Ladder index of the previous chunk. When !has_prev the smoothness term
  /// for the first horizon chunk is dropped (session start).
  std::size_t prev_level = 0;
  bool has_prev = false;

  /// Forecast throughput for each horizon chunk, kbps; its length defines
  /// the horizon N. All entries must be > 0.
  std::span<const double> predicted_kbps;

  /// Index of the first horizon chunk in the manifest (for VBR sizes).
  /// Chunks past the end of the video are skipped (shorter tail horizon).
  std::size_t first_chunk = 0;

  /// Playout buffer capacity Bmax, seconds.
  double buffer_capacity_s = 30.0;

  /// Optional warm-start hint: a level sequence used to seed the
  /// branch-and-bound incumbent before the search starts. Seeding can only
  /// tighten pruning, never change the result: solve() returns a solution
  /// bit-identical (levels and objective) to the cold solve for any hint
  /// (see HorizonSolver). Shorter hints are padded with their last entry,
  /// longer hints truncated; entries must be < the manifest's level count.
  /// Natural hints: the previous chunk's solution shifted by one (online
  /// MPC), or the neighboring scenario's solution (FastMPC table sweep).
  std::span<const std::size_t> warm_hint;
};

/// Optimal levels for the horizon (levels[0] is the decision to apply), the
/// objective value achieved, and the search effort spent finding it.
struct HorizonSolution {
  std::vector<std::size_t> levels;
  double objective = 0.0;

  /// Number of branch-and-bound nodes expanded by this solve. Lives here —
  /// not on the solver — so that a solver shared across threads stays
  /// data-race free (each solve reports its own effort).
  std::size_t nodes_expanded = 0;
};

/// Exact solver for HorizonProblem.
///
/// Depth-first branch-and-bound over the |R|^N sequence space with two exact
/// prunings that leave the result optimal:
///  - admissible bound: current value + (remaining chunks) * max quality
///    cannot beat the incumbent;
///  - dominance: at a given (depth, level) a partial solution with both a
///    lower buffer and a lower accumulated objective than a previously seen
///    one can be discarded.
/// For the paper's configuration (5 levels, N = 5) the raw space is 3125
/// sequences; with pruning the solver comfortably handles the Fig. 12b
/// sweeps (N up to 9) and ladders of 10+ levels.
///
/// Warm starting (HorizonProblem::warm_hint) seeds the incumbent with a
/// known level sequence. The incumbent is held *provisional* until the
/// search itself reaches a sequence at least as good: while provisional,
/// the bound prunes only strictly worse branches and a search solution that
/// ties the hint replaces it. This makes the returned solution — including
/// tie-breaking among equal optima — bit-identical to a cold solve, while
/// the hint's value still prunes from the very first node. The invariant is
/// pinned by tests (random hints vs. exhaustive reference) and by the
/// warm-vs-cold FastMPC table equality check.
///
/// solve() is const and thread-safe: all per-solve scratch lives in a
/// Workspace. Reusing one Workspace per thread across solves makes the hot
/// path allocation-free in steady state (buffers keep their high-water
/// capacity).
class HorizonSolver {
 public:
  /// Reusable per-solve scratch: flat per-(depth, level) arrays of
  /// precomputed download times, the dominance frontier, and the level
  /// stacks. A Workspace may be reused freely across solvers and problems;
  /// it must not be shared between concurrent solves.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class HorizonSolver;

    /// One non-dominated (buffer, value) point of a dominance set.
    struct Entry {
      double buffer_s = 0.0;
      double value = 0.0;
    };

    /// Pareto frontier at one (depth, level) node, kept sorted by buffer
    /// descending (hence value ascending), so the dominance test is a
    /// binary search + one comparison instead of a linear scan.
    struct Frontier {
      std::vector<Entry> entries;

      /// Returns false if (buffer, value) is dominated by an existing
      /// entry; otherwise inserts it (dropping entries it dominates) and
      /// returns true. Keeps exactly the non-dominated set, so accept /
      /// reject decisions are identical to the unsorted formulation.
      bool insert(double buffer, double value);
    };

    std::vector<Frontier> frontier_;       ///< [depth * levels + level]
    std::vector<double> download_s_;       ///< [depth * levels + level]
    std::vector<double> optimistic_rest_;  ///< [depth]
    std::vector<std::size_t> best_levels_;
    std::vector<std::size_t> current_levels_;
    std::vector<std::size_t> hint_levels_;
  };

  /// The model and manifest must outlive the solver.
  HorizonSolver(const media::VideoManifest& manifest, const qoe::QoeModel& qoe);

  /// Solves with a solver-private temporary Workspace (allocates).
  HorizonSolution solve(const HorizonProblem& problem) const;

  /// Allocation-free in steady state: reuses `workspace` for all scratch.
  HorizonSolution solve(const HorizonProblem& problem,
                        Workspace& workspace) const;

 private:
  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;

  /// Per-level q(R) and the lambda-weighted |q_i - q_j| switching costs,
  /// both pure functions of (manifest, qoe) — computed once here instead of
  /// per solve.
  std::vector<double> level_quality_;
  std::vector<double> switch_cost_;  ///< [level * levels + prev_level]
  double max_quality_ = 0.0;

  /// Search-effort distribution histogram, resolved at construction so the
  /// hot loop never runs a magic-static guard.
  obs::Histogram* nodes_histogram_;
};

}  // namespace abr::core
