#include "core/mdp_controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace abr::core {

ThroughputMarkovModel::ThroughputMarkovModel(std::size_t states,
                                             double lo_kbps, double hi_kbps)
    : binner_(lo_kbps, hi_kbps, states),
      counts_(states * states, 0.5) {  // Laplace smoothing prior
  assert(states > 0);
}

void ThroughputMarkovModel::fit(std::span<const trace::ThroughputTrace> traces,
                                double interval_s) {
  assert(interval_s > 0.0);
  for (const trace::ThroughputTrace& trace : traces) {
    const std::vector<double> samples = trace.sample(interval_s);
    for (std::size_t i = 1; i < samples.size(); ++i) {
      observe(samples[i - 1], samples[i]);
    }
  }
}

void ThroughputMarkovModel::observe(double from_kbps, double to_kbps) {
  if (from_kbps <= 0.0 || to_kbps <= 0.0) return;
  const std::size_t i = binner_.bin(from_kbps);
  const std::size_t j = binner_.bin(to_kbps);
  counts_[i * binner_.bins() + j] += 1.0;
}

double ThroughputMarkovModel::transition(std::size_t i, std::size_t j) const {
  assert(i < binner_.bins() && j < binner_.bins());
  double row_total = 0.0;
  for (std::size_t k = 0; k < binner_.bins(); ++k) {
    row_total += counts_[i * binner_.bins() + k];
  }
  return counts_[i * binner_.bins() + j] / row_total;
}

MdpController::MdpController(const media::VideoManifest& manifest,
                             const qoe::QoeModel& qoe,
                             ThroughputMarkovModel model, MdpConfig config)
    : manifest_(&manifest),
      qoe_(&qoe),
      model_(std::move(model)),
      config_(config),
      buffer_binner_(0.0, config.buffer_capacity_s, config.buffer_bins) {
  if (model_.state_count() == 0) {
    throw std::invalid_argument("MdpController: empty throughput model");
  }
  if (config_.discount <= 0.0 || config_.discount >= 1.0) {
    throw std::invalid_argument("MdpController: discount must be in (0, 1)");
  }
  level_quality_.reserve(manifest.level_count());
  for (std::size_t level = 0; level < manifest.level_count(); ++level) {
    level_quality_.push_back(qoe.quality(manifest.bitrate_kbps(level)));
  }
  solve();
}

std::size_t MdpController::flat_state(std::size_t buffer_bin,
                                      std::size_t tput_state,
                                      std::size_t prev_level) const {
  return (buffer_bin * model_.state_count() + tput_state) *
             manifest_->level_count() +
         prev_level;
}

void MdpController::solve() {
  const std::size_t levels = manifest_->level_count();
  const std::size_t tput_states = model_.state_count();
  const std::size_t buffer_bins = config_.buffer_bins;
  const std::size_t n_states = buffer_bins * tput_states * levels;
  const double chunk_duration = manifest_->chunk_duration_s();
  const qoe::QoeWeights& w = qoe_->weights();

  // Chunk sizes are taken as nominal CBR (the MDP plans chunk-agnostically,
  // like the FastMPC table).
  std::vector<double> chunk_kb(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    chunk_kb[level] = chunk_duration * manifest_->bitrate_kbps(level);
  }

  // Precompute, per (buffer bin, tput state, action): immediate reward
  // (minus the smoothness term, added per prev level) and next buffer bin.
  struct Transition {
    double reward_base;
    std::uint32_t next_buffer_bin;
  };
  std::vector<Transition> transitions(buffer_bins * tput_states * levels);
  for (std::size_t b = 0; b < buffer_bins; ++b) {
    const double buffer = buffer_binner_.center(b);
    for (std::size_t s = 0; s < tput_states; ++s) {
      const double rate = model_.state_rate_kbps(s);
      for (std::size_t a = 0; a < levels; ++a) {
        const double download_s = chunk_kb[a] / rate;
        const double rebuffer = std::max(0.0, download_s - buffer);
        const double next_buffer =
            std::min(std::max(buffer - download_s, 0.0) + chunk_duration,
                     config_.buffer_capacity_s);
        Transition& t = transitions[(b * tput_states + s) * levels + a];
        t.reward_base = level_quality_[a] - w.mu * rebuffer;
        t.next_buffer_bin =
            static_cast<std::uint32_t>(buffer_binner_.bin(next_buffer));
      }
    }
  }

  // Cache the transition matrix rows (transition() recomputes row sums).
  std::vector<double> p(tput_states * tput_states);
  for (std::size_t i = 0; i < tput_states; ++i) {
    for (std::size_t j = 0; j < tput_states; ++j) {
      p[i * tput_states + j] = model_.transition(i, j);
    }
  }

  std::vector<double> value(n_states, 0.0);
  std::vector<double> next_value(n_states, 0.0);
  policy_.assign(n_states, 0);

  iterations_used_ = 0;
  for (std::size_t iteration = 0; iteration < config_.max_iterations;
       ++iteration) {
    ++iterations_used_;
    double max_delta = 0.0;
    for (std::size_t b = 0; b < buffer_bins; ++b) {
      for (std::size_t s = 0; s < tput_states; ++s) {
        // E[V(b', s', a)] over s' is shared across prev levels; compute per
        // action first.
        for (std::size_t prev = 0; prev < levels; ++prev) {
          double best = -std::numeric_limits<double>::infinity();
          std::uint8_t best_action = 0;
          for (std::size_t a = 0; a < levels; ++a) {
            const Transition& t = transitions[(b * tput_states + s) * levels + a];
            double expected_next = 0.0;
            for (std::size_t s2 = 0; s2 < tput_states; ++s2) {
              expected_next +=
                  p[s * tput_states + s2] *
                  value[flat_state(t.next_buffer_bin, s2, a)];
            }
            const double q_value =
                t.reward_base -
                w.lambda * std::abs(level_quality_[a] - level_quality_[prev]) +
                config_.discount * expected_next;
            if (q_value > best) {
              best = q_value;
              best_action = static_cast<std::uint8_t>(a);
            }
          }
          const std::size_t state = flat_state(b, s, prev);
          max_delta = std::max(max_delta, std::abs(best - value[state]));
          next_value[state] = best;
          policy_[state] = best_action;
        }
      }
    }
    value.swap(next_value);
    if (max_delta < config_.tolerance) break;
  }
}

std::size_t MdpController::policy(double buffer_s, double throughput_kbps,
                                  std::size_t prev_level) const {
  assert(prev_level < manifest_->level_count());
  const std::size_t b = buffer_binner_.bin(buffer_s);
  const std::size_t s = model_.state_of(throughput_kbps);
  return policy_[flat_state(b, s, prev_level)];
}

std::size_t MdpController::decide(const sim::AbrState& state,
                                  const media::VideoManifest& manifest) {
  if (manifest.level_count() != manifest_->level_count()) {
    throw std::logic_error("MdpController: manifest mismatch");
  }
  if (state.throughput_history_kbps.empty()) {
    return 0;  // no observation yet: start lowest
  }
  const std::size_t prev = state.has_prev ? state.prev_level : 0;
  return policy(state.buffer_s, state.throughput_history_kbps.back(), prev);
}

}  // namespace abr::core
