#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "sim/controller.hpp"
#include "trace/throughput_trace.hpp"
#include "util/binning.hpp"

namespace abr::core {

/// A first-order Markov model of chunk-timescale throughput: log-spaced
/// states with an empirically fitted transition matrix.
///
/// This is the model behind the MDP control strawman of Section 4.1 of the
/// paper ("with MDP we could consider formulating the throughput and buffer
/// state transition as Markov processes") whose key weakness the paper
/// calls out: it assumes throughput really is Markovian. The library
/// includes it both as a baseline and to reproduce that argument
/// empirically (see bench/ablation_mdp.cpp: on the Markov synthetic dataset
/// the assumption holds and MDP is competitive; on HSDPA-like traces the
/// model mismatch costs it).
class ThroughputMarkovModel {
 public:
  /// `states` log-spaced throughput states over [lo_kbps, hi_kbps].
  ThroughputMarkovModel(std::size_t states, double lo_kbps, double hi_kbps);

  /// Fits the transition matrix from interval averages of the given traces
  /// (add-half Laplace smoothing keeps all transitions reachable).
  void fit(std::span<const trace::ThroughputTrace> traces, double interval_s);

  /// Online update: records an observed s -> s' transition.
  void observe(double from_kbps, double to_kbps);

  std::size_t state_count() const { return binner_.bins(); }
  std::size_t state_of(double kbps) const { return binner_.bin(kbps); }
  double state_rate_kbps(std::size_t state) const {
    return binner_.center(state);
  }

  /// P(next = j | current = i), row-normalized with smoothing.
  double transition(std::size_t i, std::size_t j) const;

 private:
  util::LogBinner binner_;
  std::vector<double> counts_;  ///< row-major transition counts
};

/// Configuration of the MDP controller.
struct MdpConfig {
  std::size_t throughput_states = 16;
  double throughput_lo_kbps = 50.0;
  double throughput_hi_kbps = 10000.0;
  std::size_t buffer_bins = 48;
  double buffer_capacity_s = 30.0;
  /// Discount factor of the infinite-horizon objective.
  double discount = 0.95;
  /// Value-iteration convergence threshold (max |V' - V|).
  double tolerance = 1.0;
  std::size_t max_iterations = 500;
};

/// Bitrate adaptation by solving an infinite-horizon discounted MDP over
/// (buffer bin x throughput state x previous level) with the Eq. (5)
/// per-chunk reward, via value iteration (the Section 4.1 strawman,
/// referencing Bertsekas [21]).
///
/// The policy is computed once at construction (given a fitted throughput
/// model) and decisions are O(1) lookups, so like FastMPC it has no online
/// solver — but unlike MPC it commits to the fitted Markov dynamics instead
/// of a per-session throughput forecast.
class MdpController final : public sim::BitrateController {
 public:
  /// The manifest and QoE model must outlive the controller. `model` is
  /// copied; fit it before constructing.
  MdpController(const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
                ThroughputMarkovModel model, MdpConfig config);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::string name() const override { return "MDP"; }

  /// Number of value-iteration sweeps the solve took (observability).
  std::size_t iterations_used() const { return iterations_used_; }

  /// The greedy action for an explicit state (exposed for tests).
  std::size_t policy(double buffer_s, double throughput_kbps,
                     std::size_t prev_level) const;

 private:
  void solve();
  std::size_t flat_state(std::size_t buffer_bin, std::size_t tput_state,
                         std::size_t prev_level) const;

  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;
  ThroughputMarkovModel model_;
  MdpConfig config_;
  util::LinearBinner buffer_binner_;
  std::vector<double> level_quality_;
  std::vector<std::uint8_t> policy_;  ///< argmax action per flat state
  std::size_t iterations_used_ = 0;
};

}  // namespace abr::core
