#include "core/mpc_controller.hpp"

#include <algorithm>
#include <cassert>
#include <span>
#include <vector>

#include "obs/names.hpp"
#include "obs/span.hpp"

namespace abr::core {

namespace {

const char* mpc_variant_name(const MpcConfig& config) {
  if (config.backend == SolverBackend::kValueIteration) {
    return config.robust ? "RobustMPC-DP" : "MPC-DP";
  }
  return config.robust ? "RobustMPC" : "MPC";
}

}  // namespace

MpcController::MpcController(const media::VideoManifest& manifest,
                             const qoe::QoeModel& qoe, MpcConfig config)
    : solver_(manifest, qoe),
      config_(config),
      solve_histogram_(&obs::MetricsRegistry::global().histogram(
          obs::kSolveLatencyUs,
          obs::solve_algorithm_label(mpc_variant_name(config)))),
      error_tracker_(config.error_window) {
  assert(config.horizon >= 1);
  if (config_.backend == SolverBackend::kValueIteration) {
    DpSolverConfig dp_config;
    dp_config.buffer_bins = config_.dp_buffer_bins;
    dp_solver_ = std::make_unique<DpHorizonSolver>(manifest, qoe, dp_config);
  }
}

void MpcController::reset() {
  error_tracker_.reset();
  pending_prediction_.reset();
  history_seen_ = 0;
  last_effective_kbps_ = 0.0;
  previous_plan_.clear();
  telemetry_ = sim::DecisionTelemetry{};
}

std::string MpcController::name() const { return mpc_variant_name(config_); }

std::size_t MpcController::decide(const sim::AbrState& state,
                                  const media::VideoManifest& manifest) {
  // Close the loop on the previous forecast: the newest history entry is the
  // measured throughput of the chunk we predicted last time.
  if (pending_prediction_.has_value() &&
      state.throughput_history_kbps.size() > history_seen_) {
    error_tracker_.record(*pending_prediction_,
                          state.throughput_history_kbps.back());
    history_seen_ = state.throughput_history_kbps.size();
  }

  // No forecast yet (first chunk): start at the lowest level, as real
  // players do.
  if (state.prediction_kbps.empty() || state.prediction_kbps.front() <= 0.0) {
    pending_prediction_.reset();
    last_effective_kbps_ = 0.0;
    previous_plan_.clear();
    telemetry_ = sim::DecisionTelemetry{};  // cold start is a rule decision
    telemetry_.error_window = error_tracker_.max_abs_error();
    return 0;
  }

  const std::size_t horizon =
      std::min(config_.horizon, state.prediction_kbps.size());
  forecast_.assign(state.prediction_kbps.begin(),
                   state.prediction_kbps.begin() +
                       static_cast<std::ptrdiff_t>(horizon));
  if (config_.robust) {
    for (double& c : forecast_) c = error_tracker_.lower_bound(c);
  }
  last_effective_kbps_ = forecast_.front();

  HorizonProblem problem;
  problem.buffer_s = state.buffer_s;
  problem.prev_level = state.prev_level;
  problem.has_prev = state.has_prev;
  problem.predicted_kbps = forecast_;
  problem.first_chunk = state.chunk_index;
  problem.buffer_capacity_s = config_.buffer_capacity_s;
  // Warm start with the tail of the previous chunk's plan: its first level
  // was applied, so levels [1..] are a strong incumbent for this horizon.
  // Exactness preserving — an empty or stale hint cannot change the result.
  if (!previous_plan_.empty()) {
    problem.warm_hint = std::span<const std::size_t>(previous_plan_)
                            .subspan(1);
  }

  HorizonSolution solution;
  {
    obs::LatencyTimer timer(solve_histogram_);
    solution = dp_solver_ != nullptr ? dp_solver_->solve(problem)
                                     : solver_.solve(problem, workspace_);
  }
  (void)manifest;

  // Remember the *raw* forecast for the chunk we are about to download so
  // the error tracker compares like with like (Section 7.1.2 defines err on
  // the predictor's output, not the deflated bound).
  pending_prediction_ = state.prediction_kbps.front();
  telemetry_.nodes_expanded = solution.nodes_expanded;
  telemetry_.warm_start = !problem.warm_hint.empty();
  telemetry_.path = "online";
  telemetry_.effective_forecast_kbps = last_effective_kbps_;
  telemetry_.error_window = error_tracker_.max_abs_error();
  const std::size_t decision = solution.levels.front();
  previous_plan_ = std::move(solution.levels);
  return decision;
}

}  // namespace abr::core
