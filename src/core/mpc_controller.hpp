#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/dp_solver.hpp"
#include "core/horizon_solver.hpp"
#include "obs/metrics.hpp"
#include "predict/error_tracker.hpp"
#include "sim/controller.hpp"

namespace abr::core {

/// Configuration for the MPC family (Section 4 of the paper).
struct MpcConfig {
  /// Look-ahead horizon N, chunks. The paper uses 5 (Section 7.1.2) and
  /// sweeps 2-9 in Fig. 12b.
  std::size_t horizon = 5;

  /// RobustMPC (Section 4.3): feed the solver the throughput lower bound
  /// C_hat / (1 + err) instead of the point forecast, where err is the
  /// maximum absolute percentage prediction error over the last
  /// `error_window` chunks. By Theorem 1 this is exactly the max-min robust
  /// optimum.
  bool robust = false;
  std::size_t error_window = 5;

  /// Must match the player's SessionConfig::buffer_capacity_s; the solver
  /// models the Eq. (4) buffer-full clamp.
  double buffer_capacity_s = 30.0;

  /// Which solver answers each per-chunk horizon problem: the exact
  /// branch-and-bound search (the paper's formulation) or the discretized
  /// value-iteration DP (core/dp_solver.hpp), whose decisions match within
  /// the documented discretization tolerance.
  SolverBackend backend = SolverBackend::kBranchAndBound;

  /// Buffer-grid resolution for the value-iteration backend.
  std::size_t dp_buffer_bins = 600;
};

/// Model predictive control bitrate adaptation (Algorithm 1 of the paper):
/// at every chunk boundary, solve QOE_MAX_STEADY over the next N chunks
/// using the predictor's forecast and apply the first decision.
///
/// With config.robust, implements RobustMPC: the forecast is deflated by the
/// recently observed worst-case prediction error before solving. Theorem 1
/// proves this equals optimizing worst-case QoE over the forecast interval,
/// and test MpcTheorem1 verifies it against an explicit max-min evaluation.
///
/// Each solve is warm-started with the previous chunk's solution shifted by
/// one (the tail of the old plan is a strong incumbent for the new horizon)
/// and reuses a solver workspace, so the per-decision hot path neither
/// allocates nor searches from scratch. Warm starting is exactness
/// preserving — decisions are bit-identical to cold solves (see
/// HorizonSolver) — which the golden decision logs pin.
class MpcController final : public sim::BitrateController {
 public:
  /// The model and manifest must outlive the controller.
  MpcController(const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
                MpcConfig config);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::size_t prediction_horizon() const override { return config_.horizon; }
  void reset() override;
  std::string name() const override;
  const sim::DecisionTelemetry* last_decision() const override {
    return &telemetry_;
  }

  /// The effective forecast used for the last decision after any robustness
  /// deflation (observability for tests and logging).
  double last_effective_forecast_kbps() const { return last_effective_kbps_; }

  const MpcConfig& config() const { return config_; }

 private:
  HorizonSolver solver_;
  /// Non-null iff config_.backend == kValueIteration; decide() then routes
  /// every solve through it instead of solver_.
  std::unique_ptr<DpHorizonSolver> dp_solver_;
  MpcConfig config_;
  /// Per-decision horizon-solve latency, labeled algorithm="MPC" or
  /// "RobustMPC" — the Table 1 / §5 overhead claim as a live metric.
  obs::Histogram* solve_histogram_;
  predict::PredictionErrorTracker error_tracker_;
  std::optional<double> pending_prediction_;  ///< forecast for the in-flight chunk
  std::size_t history_seen_ = 0;
  double last_effective_kbps_ = 0.0;
  /// Reused solver scratch + the previous solution's level plan (next
  /// solve's warm-start hint). Both cleared by reset().
  HorizonSolver::Workspace workspace_;
  std::vector<std::size_t> previous_plan_;
  std::vector<double> forecast_;  ///< reused per-decision forecast buffer
  sim::DecisionTelemetry telemetry_;  ///< refreshed by each decide()
};

}  // namespace abr::core
