#include "core/offline_optimal.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace abr::core {

namespace {

/// Packs the dedup key: quantized time (24 bits is plenty at 0.25 s over
/// hours), quantized buffer, previous level, playing flag.
std::uint64_t pack_key(std::uint32_t tq, std::uint32_t bq, std::size_t level,
                       bool playing) {
  return (static_cast<std::uint64_t>(tq) << 32) |
         (static_cast<std::uint64_t>(bq) << 10) |
         (static_cast<std::uint64_t>(level) << 1) |
         static_cast<std::uint64_t>(playing);
}

}  // namespace

OfflineOptimalPlanner::OfflineOptimalPlanner(
    const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
    const sim::SessionConfig& session, PlannerConfig config)
    : manifest_(&manifest), qoe_(&qoe), session_(session), config_(config) {
  if (config_.beam_width == 0) {
    throw std::invalid_argument("PlannerConfig: zero beam width");
  }
  if (config_.continuous_relaxation) {
    if (config_.relaxation_levels < 2) {
      throw std::invalid_argument("PlannerConfig: need >= 2 relaxation levels");
    }
    if (manifest.level_count() >= 2) {
      ladder_ = media::VideoManifest::geometric_ladder(
          manifest.bitrates_kbps().front(), manifest.bitrates_kbps().back(),
          config_.relaxation_levels);
    } else {
      ladder_ = manifest.bitrates_kbps();
    }
  } else {
    ladder_ = manifest.bitrates_kbps();
  }
  ladder_quality_.reserve(ladder_.size());
  for (const double rate : ladder_) ladder_quality_.push_back(qoe.quality(rate));

  // Per-chunk VBR complexity factor relative to nominal CBR size.
  const double nominal0 =
      manifest.chunk_duration_s() * manifest.bitrates_kbps().front();
  complexity_.reserve(manifest.chunk_count());
  for (std::size_t k = 0; k < manifest.chunk_count(); ++k) {
    complexity_.push_back(manifest.chunk_kilobits(k, 0) / nominal0);
  }
}

double OfflineOptimalPlanner::chunk_kilobits(std::size_t chunk,
                                             std::size_t level) const {
  if (!config_.continuous_relaxation) {
    return manifest_->chunk_kilobits(chunk, level);
  }
  return manifest_->chunk_duration_s() * ladder_[level] * complexity_[chunk];
}

OfflineOptimalPlanner::StepOutcome OfflineOptimalPlanner::advance(
    const trace::ThroughputTrace& trace, std::size_t chunk, std::size_t level,
    double start_s, double buffer_s, bool playing, double startup_s) const {
  const double chunk_duration = manifest_->chunk_duration_s();
  const double capacity = session_.buffer_capacity_s;
  const double fixed_delay = session_.fixed_startup_delay_s;

  double t = start_s;
  double buffer = buffer_s;
  double rebuffer = 0.0;

  const auto drain = [&buffer, &rebuffer](double seconds) {
    rebuffer += std::max(0.0, seconds - buffer);
    buffer = std::max(0.0, buffer - seconds);
  };

  // Fixed-delay playback may begin while idle between chunks.
  if (!playing && session_.startup_policy == sim::StartupPolicy::kFixedDelay &&
      t >= fixed_delay) {
    playing = true;
    startup_s = fixed_delay;
    drain(t - fixed_delay);
  }

  const double size_kb = chunk_kilobits(chunk, level);
  const double end_s = trace.transfer_end_time(size_kb, t);
  const double duration = end_s - t;
  t = end_s;

  if (playing) {
    drain(duration);
  } else if (session_.startup_policy == sim::StartupPolicy::kFixedDelay &&
             t > fixed_delay) {
    playing = true;
    startup_s = fixed_delay;
    drain(t - fixed_delay);
  }
  buffer += chunk_duration;

  if (!playing) {
    switch (session_.startup_policy) {
      case sim::StartupPolicy::kFirstChunk:
        playing = true;
        startup_s = t;
        break;
      case sim::StartupPolicy::kBufferThreshold:
        if (buffer >= session_.startup_buffer_threshold_s) {
          playing = true;
          startup_s = t;
        }
        break;
      case sim::StartupPolicy::kFixedDelay:
        break;
    }
  }

  if (buffer > capacity) {
    if (!playing) {
      // Only reachable with a fixed delay later than now: idle until Ts.
      const double idle = std::max(0.0, fixed_delay - t);
      t += idle;
      playing = true;
      startup_s = fixed_delay;
    }
    t += buffer - capacity;
    buffer = capacity;
  }

  return {t, buffer, rebuffer, playing, startup_s};
}

PlanResult OfflineOptimalPlanner::plan(
    const trace::ThroughputTrace& trace) const {
  const std::size_t chunk_count = manifest_->chunk_count();
  const std::size_t levels = ladder_.size();
  const qoe::QoeWeights& w = qoe_->weights();

  struct State {
    double t;
    double buffer;
    double value;
    double startup;
    std::uint32_t parent;     ///< index into the previous step's states
    std::uint16_t level;      ///< level chosen to reach this state
    std::uint8_t playing;
    std::uint8_t has_prev;
  };

  std::vector<std::vector<State>> steps;
  steps.reserve(chunk_count + 1);
  steps.push_back({State{0.0, 0.0, 0.0, 0.0, 0, 0, 0, 0}});

  std::vector<State> next;
  std::unordered_map<std::uint64_t, std::size_t> dedup;

  for (std::size_t k = 0; k < chunk_count; ++k) {
    const std::vector<State>& current = steps.back();
    next.clear();
    dedup.clear();

    for (std::size_t si = 0; si < current.size(); ++si) {
      const State& s = current[si];
      for (std::size_t level = 0; level < levels; ++level) {
        const StepOutcome out =
            advance(trace, k, level, s.t, s.buffer, s.playing != 0,
                    s.startup);
        double value = s.value + ladder_quality_[level] -
                       w.mu * out.rebuffer_s -
                       (out.rebuffer_s > 0.0 ? w.mu_event : 0.0);
        if (s.has_prev != 0) {
          value -= w.lambda *
                   std::abs(ladder_quality_[level] - ladder_quality_[s.level]);
        }
        // Charge the startup penalty the moment playback begins so dedup
        // compares complete values.
        if (session_.include_startup_in_qoe && s.playing == 0 && out.playing) {
          value -= w.mu_startup * out.startup_s;
        }

        State ns;
        ns.t = out.end_time_s;
        ns.buffer = out.buffer_s;
        ns.value = value;
        ns.startup = out.startup_s;
        ns.parent = static_cast<std::uint32_t>(si);
        ns.level = static_cast<std::uint16_t>(level);
        ns.playing = out.playing ? 1 : 0;
        ns.has_prev = 1;

        const std::uint64_t key = pack_key(
            static_cast<std::uint32_t>(ns.t / config_.time_quant_s),
            static_cast<std::uint32_t>(
                std::min(ns.buffer / config_.buffer_quant_s, 500.0)),
            level, ns.playing != 0);
        const auto [it, inserted] = dedup.try_emplace(key, next.size());
        if (inserted) {
          next.push_back(ns);
        } else if (ns.value > next[it->second].value) {
          next[it->second] = ns;
        }
      }
    }

    if (next.size() > config_.beam_width) {
      std::nth_element(next.begin(),
                       next.begin() + static_cast<std::ptrdiff_t>(
                                          config_.beam_width),
                       next.end(), [](const State& a, const State& b) {
                         return a.value > b.value;
                       });
      next.resize(config_.beam_width);
    }
    steps.push_back(next);
  }

  // Best terminal state; walk parents back to recover the plan.
  const std::vector<State>& final_states = steps.back();
  assert(!final_states.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < final_states.size(); ++i) {
    if (final_states[i].value > final_states[best].value) best = i;
  }

  PlanResult result;
  result.bitrates_kbps.resize(chunk_count);
  std::size_t index = best;
  for (std::size_t k = chunk_count; k-- > 0;) {
    const State& s = steps[k + 1][index];
    result.bitrates_kbps[k] = ladder_[s.level];
    index = s.parent;
  }
  result.qoe = final_states[best].value;
  result.startup_delay_s = final_states[best].startup;

  // Recompute rebuffer total along the winning path for reporting.
  double t = 0.0;
  double buffer = 0.0;
  bool playing = false;
  double startup = 0.0;
  double rebuffer_total = 0.0;
  index = best;
  std::vector<std::size_t> levels_path(chunk_count);
  {
    std::size_t i = best;
    for (std::size_t k = chunk_count; k-- > 0;) {
      levels_path[k] = steps[k + 1][i].level;
      i = steps[k + 1][i].parent;
    }
  }
  for (std::size_t k = 0; k < chunk_count; ++k) {
    const StepOutcome out =
        advance(trace, k, levels_path[k], t, buffer, playing, startup);
    rebuffer_total += out.rebuffer_s;
    t = out.end_time_s;
    buffer = out.buffer_s;
    playing = out.playing;
    startup = out.startup_s;
  }
  result.total_rebuffer_s = rebuffer_total;
  return result;
}

PlanResult OfflineOptimalPlanner::plan_exhaustive(
    const trace::ThroughputTrace& trace) const {
  const std::size_t chunk_count = manifest_->chunk_count();
  const std::size_t levels = ladder_.size();
  const double space = std::pow(static_cast<double>(levels),
                                static_cast<double>(chunk_count));
  if (space > 1e7) {
    throw std::invalid_argument(
        "plan_exhaustive: search space too large; use plan()");
  }
  const qoe::QoeWeights& w = qoe_->weights();

  double best_value = -std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_path;
  std::vector<std::size_t> path(chunk_count);
  double best_startup = 0.0;
  double best_rebuffer = 0.0;

  auto search = [&](auto&& self, std::size_t k, double t, double buffer,
                    bool playing, double startup, double value,
                    double rebuffer_total, std::size_t prev_level,
                    bool has_prev) -> void {
    if (k == chunk_count) {
      if (value > best_value) {
        best_value = value;
        best_path = path;
        best_startup = startup;
        best_rebuffer = rebuffer_total;
      }
      return;
    }
    for (std::size_t level = 0; level < levels; ++level) {
      const StepOutcome out =
          advance(trace, k, level, t, buffer, playing, startup);
      double next_value = value + ladder_quality_[level] -
                          w.mu * out.rebuffer_s -
                          (out.rebuffer_s > 0.0 ? w.mu_event : 0.0);
      if (has_prev) {
        next_value -= w.lambda * std::abs(ladder_quality_[level] -
                                          ladder_quality_[prev_level]);
      }
      if (session_.include_startup_in_qoe && !playing && out.playing) {
        next_value -= w.mu_startup * out.startup_s;
      }
      path[k] = level;
      self(self, k + 1, out.end_time_s, out.buffer_s, out.playing,
           out.startup_s, next_value, rebuffer_total + out.rebuffer_s, level,
           true);
    }
  };
  search(search, 0, 0.0, 0.0, false, 0.0, 0.0, 0.0, 0, false);

  PlanResult result;
  result.qoe = best_value;
  result.startup_delay_s = best_startup;
  result.total_rebuffer_s = best_rebuffer;
  result.bitrates_kbps.reserve(chunk_count);
  for (const std::size_t level : best_path) {
    result.bitrates_kbps.push_back(ladder_[level]);
  }
  return result;
}

double normalized_qoe(double qoe, double optimal_qoe) {
  if (optimal_qoe <= 0.0) return 0.0;
  return qoe / optimal_qoe;
}

}  // namespace abr::core
