#pragma once

#include <vector>

#include "media/manifest.hpp"
#include "qoe/qoe.hpp"
#include "sim/player.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::core {

/// Parameters of the offline QoE(OPT) computation (Section 7.1.2): the
/// maximum QoE achievable with perfect knowledge of the entire throughput
/// trace.
struct PlannerConfig {
  /// Beam width: non-dominated states kept per chunk step. 1024 is within
  /// measurement noise of exhaustive search on the paper's workload (see
  /// tests/offline_optimal_test.cpp); raise it for tighter bounds.
  std::size_t beam_width = 1024;

  /// State-dedup quantization. Two states matching in quantized (time,
  /// buffer) and previous level are merged keeping the higher value.
  double time_quant_s = 0.25;
  double buffer_quant_s = 0.25;

  /// The paper's footnote 6 relaxes the offline optimum to a continuous
  /// bitrate range [Rmin, Rmax] to keep it tractable in CPLEX; we
  /// approximate the same relaxation with a fine geometric ladder.
  bool continuous_relaxation = true;
  std::size_t relaxation_levels = 15;
};

/// The plan found: per-chunk bitrates and the resulting QoE.
struct PlanResult {
  std::vector<double> bitrates_kbps;  ///< per chunk
  double qoe = 0.0;
  double startup_delay_s = 0.0;
  double total_rebuffer_s = 0.0;
};

/// Computes QoE(OPT): offline QoE maximization over the whole video with
/// the full trace known (problem QOE_MAX of Fig. 3). A beam search over
/// (time, buffer, previous level) states with dominance dedup replaces the
/// paper's CPLEX solve; plan_exhaustive() provides ground truth for small
/// instances and the test suite verifies the beam matches it.
///
/// The planner replays exactly the PlayerSession buffer dynamics (same
/// startup policy, Bmax wait, and QoE accounting), so its value is a true
/// upper bound for any online controller run under the same SessionConfig.
class OfflineOptimalPlanner {
 public:
  /// All referents must outlive the planner.
  OfflineOptimalPlanner(const media::VideoManifest& manifest,
                        const qoe::QoeModel& qoe,
                        const sim::SessionConfig& session,
                        PlannerConfig config = {});

  /// Beam-search plan over the full video.
  PlanResult plan(const trace::ThroughputTrace& trace) const;

  /// Exact enumeration over ladder^K; only feasible for small K * levels
  /// (guarded: throws std::invalid_argument if the space exceeds ~10^7).
  PlanResult plan_exhaustive(const trace::ThroughputTrace& trace) const;

  /// The ladder the planner actually optimizes over (the manifest's, or the
  /// fine relaxation ladder).
  const std::vector<double>& planning_ladder_kbps() const { return ladder_; }

 private:
  struct StepOutcome {
    double end_time_s;
    double buffer_s;
    double rebuffer_s;
    bool playing;
    double startup_s;
  };

  /// Advances the player dynamics by one chunk at the given level.
  StepOutcome advance(const trace::ThroughputTrace& trace, std::size_t chunk,
                      std::size_t level, double start_s, double buffer_s,
                      bool playing, double startup_s) const;

  double chunk_kilobits(std::size_t chunk, std::size_t level) const;

  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;
  sim::SessionConfig session_;
  PlannerConfig config_;
  std::vector<double> ladder_;
  std::vector<double> ladder_quality_;
  std::vector<double> complexity_;  ///< per-chunk VBR size factor
};

/// n-QoE(A) = QoE(A) / QoE(OPT) (Section 7.1.2). Guards against a
/// non-positive optimum (degenerate traces) by returning 0.
double normalized_qoe(double qoe, double optimal_qoe);

}  // namespace abr::core
