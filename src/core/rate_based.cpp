#include "core/rate_based.hpp"

#include <cassert>

namespace abr::core {

RateBasedController::RateBasedController(double safety_factor)
    : safety_factor_(safety_factor) {
  assert(safety_factor > 0.0);
}

std::size_t RateBasedController::decide(const sim::AbrState& state,
                                        const media::VideoManifest& manifest) {
  if (state.prediction_kbps.empty() || state.prediction_kbps.front() <= 0.0) {
    return 0;  // no estimate yet: start conservative
  }
  return manifest.highest_level_not_above(safety_factor_ *
                                          state.prediction_kbps.front());
}

}  // namespace abr::core
