#pragma once

#include "sim/controller.hpp"

namespace abr::core {

/// Rate-based (RB) adaptation, Section 7.1.2 item 1 of the paper: pick the
/// maximum available bitrate not exceeding `safety_factor` (the paper's p,
/// default 1) times the predicted throughput. Uses only the throughput
/// signal (Eq. (13)); buffer occupancy is ignored by design — that is the
/// class's defining limitation the paper analyzes.
class RateBasedController final : public sim::BitrateController {
 public:
  explicit RateBasedController(double safety_factor = 1.0);

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override;
  std::string name() const override { return "RB"; }

 private:
  double safety_factor_;
};

}  // namespace abr::core
