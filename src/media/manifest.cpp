#include "media/manifest.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace abr::media {

VideoManifest::VideoManifest(double chunk_duration_s,
                             std::vector<double> bitrates_kbps,
                             std::vector<std::vector<double>> chunk_sizes_kb,
                             std::string name)
    : chunk_duration_s_(chunk_duration_s),
      bitrates_kbps_(std::move(bitrates_kbps)),
      chunk_sizes_kb_(std::move(chunk_sizes_kb)),
      name_(std::move(name)) {
  if (!(chunk_duration_s_ > 0.0)) {
    throw std::invalid_argument("VideoManifest: non-positive chunk duration");
  }
  if (bitrates_kbps_.empty()) {
    throw std::invalid_argument("VideoManifest: empty bitrate ladder");
  }
  if (!std::is_sorted(bitrates_kbps_.begin(), bitrates_kbps_.end())) {
    throw std::invalid_argument("VideoManifest: ladder must be ascending");
  }
  for (std::size_t i = 1; i < bitrates_kbps_.size(); ++i) {
    if (bitrates_kbps_[i] == bitrates_kbps_[i - 1]) {
      throw std::invalid_argument("VideoManifest: duplicate ladder bitrate");
    }
  }
  if (bitrates_kbps_.front() <= 0.0) {
    throw std::invalid_argument("VideoManifest: non-positive bitrate");
  }
  if (chunk_sizes_kb_.empty()) {
    throw std::invalid_argument("VideoManifest: no chunks");
  }
  for (const auto& row : chunk_sizes_kb_) {
    if (row.size() != bitrates_kbps_.size()) {
      throw std::invalid_argument("VideoManifest: chunk size row mismatch");
    }
    for (const double kb : row) {
      if (!(kb > 0.0)) {
        throw std::invalid_argument("VideoManifest: non-positive chunk size");
      }
    }
  }
}

VideoManifest VideoManifest::cbr(std::size_t chunk_count,
                                 double chunk_duration_s,
                                 std::vector<double> bitrates_kbps,
                                 std::string name) {
  std::vector<double> row(bitrates_kbps.size());
  for (std::size_t level = 0; level < bitrates_kbps.size(); ++level) {
    row[level] = chunk_duration_s * bitrates_kbps[level];
  }
  std::vector<std::vector<double>> sizes(chunk_count, row);
  return VideoManifest(chunk_duration_s, std::move(bitrates_kbps),
                       std::move(sizes), std::move(name));
}

VideoManifest VideoManifest::vbr(std::size_t chunk_count,
                                 double chunk_duration_s,
                                 std::vector<double> bitrates_kbps,
                                 double sigma, util::Rng& rng,
                                 std::string name) {
  assert(sigma >= 0.0);
  // Lognormal with unit mean: exp(N(-sigma^2/2, sigma)).
  const double mu = -sigma * sigma / 2.0;
  std::vector<std::vector<double>> sizes;
  sizes.reserve(chunk_count);
  for (std::size_t k = 0; k < chunk_count; ++k) {
    const double complexity = std::exp(rng.gaussian(mu, sigma));
    std::vector<double> row(bitrates_kbps.size());
    for (std::size_t level = 0; level < bitrates_kbps.size(); ++level) {
      row[level] = chunk_duration_s * bitrates_kbps[level] * complexity;
    }
    sizes.push_back(std::move(row));
  }
  return VideoManifest(chunk_duration_s, std::move(bitrates_kbps),
                       std::move(sizes), std::move(name));
}

VideoManifest VideoManifest::from_sizes(
    double chunk_duration_s, std::vector<double> bitrates_kbps,
    std::vector<std::vector<double>> chunk_sizes_kb, std::string name) {
  return VideoManifest(chunk_duration_s, std::move(bitrates_kbps),
                       std::move(chunk_sizes_kb), std::move(name));
}

VideoManifest VideoManifest::envivio_default() {
  return cbr(65, 4.0, {350.0, 600.0, 1000.0, 2000.0, 3000.0}, "envivio");
}

std::vector<double> VideoManifest::geometric_ladder(double lo_kbps,
                                                    double hi_kbps,
                                                    std::size_t levels) {
  assert(lo_kbps > 0.0 && hi_kbps > lo_kbps && levels >= 2);
  std::vector<double> ladder(levels);
  const double ratio = std::pow(hi_kbps / lo_kbps,
                                1.0 / static_cast<double>(levels - 1));
  double rate = lo_kbps;
  for (std::size_t i = 0; i < levels; ++i) {
    ladder[i] = rate;
    rate *= ratio;
  }
  ladder.back() = hi_kbps;  // exact endpoint despite rounding
  return ladder;
}

double VideoManifest::bitrate_kbps(std::size_t level) const {
  assert(level < bitrates_kbps_.size());
  return bitrates_kbps_[level];
}

double VideoManifest::chunk_kilobits(std::size_t chunk,
                                     std::size_t level) const {
  assert(chunk < chunk_sizes_kb_.size());
  assert(level < bitrates_kbps_.size());
  return chunk_sizes_kb_[chunk][level];
}

std::size_t VideoManifest::highest_level_not_above(double rate_kbps) const {
  std::size_t best = 0;
  for (std::size_t level = 0; level < bitrates_kbps_.size(); ++level) {
    if (bitrates_kbps_[level] <= rate_kbps) best = level;
  }
  return best;
}

}  // namespace abr::media
