#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace abr::media {

/// Description of one DASH video: K aligned chunks of L seconds, each
/// available at every bitrate of the ladder, with per-chunk encoded sizes
/// d_k(R) (Section 3.1 of the paper).
///
/// Sizes are stored explicitly per (chunk, level) so both CBR
/// (d_k = L * R_k) and VBR (sizes vary per chunk) videos are representable;
/// the paper notes the DASH standard's failure to mandate chunk sizes in the
/// manifest as a shortcoming, so this library treats sizes as first-class.
class VideoManifest {
 public:
  VideoManifest() = default;

  /// Constant-bitrate video: chunk size is exactly L * R.
  static VideoManifest cbr(std::size_t chunk_count, double chunk_duration_s,
                           std::vector<double> bitrates_kbps,
                           std::string name = {});

  /// Variable-bitrate video: per-chunk sizes are L * R scaled by a shared
  /// per-chunk complexity factor (lognormal with the given sigma, mean 1),
  /// modeling scene-complexity variation that is correlated across the
  /// ladder. sigma of 0.2-0.4 matches typical H.264 VBR encodes.
  static VideoManifest vbr(std::size_t chunk_count, double chunk_duration_s,
                           std::vector<double> bitrates_kbps, double sigma,
                           util::Rng& rng, std::string name = {});

  /// Builds a manifest from an explicit [chunk][level] size table (kilobits).
  /// Validates dimensions, ladder ordering, and positivity.
  static VideoManifest from_sizes(double chunk_duration_s,
                                  std::vector<double> bitrates_kbps,
                                  std::vector<std::vector<double>> chunk_sizes_kb,
                                  std::string name = {});

  /// The paper's test video (Section 7.1.1): "Envivio" from the DASH-264
  /// reference client — 260 s, 65 chunks of 4 s,
  /// R = {350, 600, 1000, 2000, 3000} kbps, CBR.
  static VideoManifest envivio_default();

  /// Geometric ladder of `levels` bitrates from lo to hi inclusive; used by
  /// the bitrate-level-count sensitivity experiment (Section 7.3).
  static std::vector<double> geometric_ladder(double lo_kbps, double hi_kbps,
                                              std::size_t levels);

  const std::string& name() const { return name_; }
  std::size_t chunk_count() const { return chunk_sizes_kb_.size(); }
  std::size_t level_count() const { return bitrates_kbps_.size(); }
  double chunk_duration_s() const { return chunk_duration_s_; }
  double duration_s() const {
    return chunk_duration_s_ * static_cast<double>(chunk_count());
  }

  /// Bitrate ladder, ascending, kbps.
  const std::vector<double>& bitrates_kbps() const { return bitrates_kbps_; }
  double bitrate_kbps(std::size_t level) const;

  /// Encoded size of chunk `chunk` at ladder index `level`, kilobits.
  double chunk_kilobits(std::size_t chunk, std::size_t level) const;

  /// Highest level whose *nominal bitrate* is <= `rate_kbps`; returns 0 if
  /// even the lowest level exceeds it. This is the primitive that rate-based
  /// and buffer-based policies share.
  std::size_t highest_level_not_above(double rate_kbps) const;

 private:
  VideoManifest(double chunk_duration_s, std::vector<double> bitrates_kbps,
                std::vector<std::vector<double>> chunk_sizes_kb,
                std::string name);

  double chunk_duration_s_ = 0.0;
  std::vector<double> bitrates_kbps_;
  std::vector<std::vector<double>> chunk_sizes_kb_;  ///< [chunk][level]
  std::string name_;
};

}  // namespace abr::media
