#include "media/mpd.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/xml.hpp"

namespace abr::media {

std::string format_iso8601_duration(double seconds) {
  std::ostringstream out;
  out << "PT";
  out.setf(std::ios::fixed);
  out.precision(3);
  out << seconds << 'S';
  return out.str();
}

double parse_iso8601_duration(std::string_view text) {
  if (!util::starts_with(text, "PT")) {
    throw std::invalid_argument("duration must start with PT: " +
                                std::string(text));
  }
  text.remove_prefix(2);
  double total = 0.0;
  bool any = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == 'H' || c == 'M' || c == 'S') {
      double value = 0.0;
      if (!util::parse_double(text.substr(start, i - start), value)) {
        throw std::invalid_argument("bad duration number");
      }
      if (c == 'H') total += value * 3600.0;
      if (c == 'M') total += value * 60.0;
      if (c == 'S') total += value;
      start = i + 1;
      any = true;
    }
  }
  if (!any || start != text.size()) {
    throw std::invalid_argument("malformed ISO-8601 duration");
  }
  return total;
}

std::string to_mpd(const VideoManifest& manifest) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<MPD xmlns=\"urn:mpeg:dash:schema:mpd:2011\" type=\"static\""
      << " mediaPresentationDuration=\""
      << format_iso8601_duration(manifest.duration_s()) << "\""
      << " minBufferTime=\""
      << format_iso8601_duration(manifest.chunk_duration_s()) << "\">\n";
  out << "  <Period>\n";
  out << "    <AdaptationSet mimeType=\"video/mp4\" contentType=\"video\""
      << " segmentAlignment=\"true\">\n";
  out << "      <SegmentTemplate"
      << " media=\"video/$RepresentationID$/seg-$Number$.m4s\""
      << " timescale=\"1000\""
      << " duration=\""
      << static_cast<long long>(std::llround(manifest.chunk_duration_s() * 1000.0))
      << "\" startNumber=\"0\"/>\n";
  for (std::size_t level = 0; level < manifest.level_count(); ++level) {
    const auto bandwidth_bps =
        static_cast<long long>(std::llround(manifest.bitrate_kbps(level) * 1000.0));
    out << "      <Representation id=\"" << level << "\" bandwidth=\""
        << bandwidth_bps << "\" codecs=\"avc1.4d401f\">\n";
    out << "        <SegmentSizes unit=\"kilobits\">";
    out.setf(std::ios::fixed);
    out.precision(3);
    for (std::size_t k = 0; k < manifest.chunk_count(); ++k) {
      if (k > 0) out << ' ';
      out << manifest.chunk_kilobits(k, level);
    }
    out.unsetf(std::ios::fixed);
    out << "</SegmentSizes>\n";
    out << "      </Representation>\n";
  }
  out << "    </AdaptationSet>\n";
  out << "  </Period>\n";
  out << "</MPD>\n";
  return out.str();
}

VideoManifest from_mpd(std::string_view mpd_xml) {
  const auto root = util::xml_parse(mpd_xml);
  if (root->name != "MPD") {
    throw std::invalid_argument("MPD: root element is not <MPD>");
  }
  const util::XmlElement* period = root->child("Period");
  if (period == nullptr) throw std::invalid_argument("MPD: missing <Period>");
  const util::XmlElement* adaptation = period->child("AdaptationSet");
  if (adaptation == nullptr) {
    throw std::invalid_argument("MPD: missing <AdaptationSet>");
  }
  const util::XmlElement* segment_template = adaptation->child("SegmentTemplate");
  if (segment_template == nullptr) {
    throw std::invalid_argument("MPD: missing <SegmentTemplate>");
  }

  const std::string* duration_attr = segment_template->attribute("duration");
  const std::string* timescale_attr = segment_template->attribute("timescale");
  if (duration_attr == nullptr) {
    throw std::invalid_argument("MPD: SegmentTemplate missing duration");
  }
  double duration_ticks = 0.0;
  if (!util::parse_double(*duration_attr, duration_ticks)) {
    throw std::invalid_argument("MPD: bad SegmentTemplate duration");
  }
  double timescale = 1.0;
  if (timescale_attr != nullptr &&
      !util::parse_double(*timescale_attr, timescale)) {
    throw std::invalid_argument("MPD: bad SegmentTemplate timescale");
  }
  const double chunk_duration_s = duration_ticks / timescale;

  std::vector<double> bitrates_kbps;
  std::vector<std::vector<double>> sizes_by_level;
  for (const util::XmlElement* rep : adaptation->children_named("Representation")) {
    const std::string* bandwidth = rep->attribute("bandwidth");
    if (bandwidth == nullptr) {
      throw std::invalid_argument("MPD: Representation missing bandwidth");
    }
    double bandwidth_bps = 0.0;
    if (!util::parse_double(*bandwidth, bandwidth_bps)) {
      throw std::invalid_argument("MPD: bad bandwidth");
    }
    bitrates_kbps.push_back(bandwidth_bps / 1000.0);

    const util::XmlElement* sizes_el = rep->child("SegmentSizes");
    if (sizes_el == nullptr) {
      throw std::invalid_argument(
          "MPD: Representation missing <SegmentSizes> (this library requires "
          "explicit chunk sizes; see DESIGN.md)");
    }
    std::vector<double> sizes;
    for (const auto field : util::split(sizes_el->text, ' ')) {
      const auto trimmed = util::trim(field);
      if (trimmed.empty()) continue;
      double kb = 0.0;
      if (!util::parse_double(trimmed, kb)) {
        throw std::invalid_argument("MPD: bad segment size");
      }
      sizes.push_back(kb);
    }
    sizes_by_level.push_back(std::move(sizes));
  }
  if (bitrates_kbps.empty()) {
    throw std::invalid_argument("MPD: no Representations");
  }
  const std::size_t chunk_count = sizes_by_level.front().size();
  for (const auto& sizes : sizes_by_level) {
    if (sizes.size() != chunk_count) {
      throw std::invalid_argument("MPD: inconsistent SegmentSizes lengths");
    }
  }
  if (chunk_count == 0) throw std::invalid_argument("MPD: zero chunks");

  // Representations may appear in any order; sort levels by bitrate.
  std::vector<std::size_t> order(bitrates_kbps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return bitrates_kbps[a] < bitrates_kbps[b];
  });

  std::vector<double> ladder;
  ladder.reserve(order.size());
  for (const std::size_t i : order) ladder.push_back(bitrates_kbps[i]);

  std::vector<std::vector<double>> chunk_sizes(chunk_count);
  for (std::size_t k = 0; k < chunk_count; ++k) {
    chunk_sizes[k].resize(order.size());
    for (std::size_t level = 0; level < order.size(); ++level) {
      chunk_sizes[k][level] = sizes_by_level[order[level]][k];
    }
  }
  return VideoManifest::from_sizes(chunk_duration_s, std::move(ladder),
                                   std::move(chunk_sizes), "mpd");
}

}  // namespace abr::media
