#pragma once

#include <string>

#include "media/manifest.hpp"

namespace abr::media {

/// Serializes a manifest to a simplified MPEG-DASH MPD document.
///
/// The output follows the static-MPD profile structure (MPD / Period /
/// AdaptationSet / SegmentTemplate / Representation). Because the DASH
/// standard does not mandate per-chunk sizes in the manifest — a gap the
/// paper explicitly calls out in Section 6 as "a key shortcoming of the
/// current specification" — each Representation carries a non-standard
/// <SegmentSizes unit="kilobits"> extension element listing d_k(R) for every
/// chunk, which MPC-family controllers require.
std::string to_mpd(const VideoManifest& manifest);

/// Parses an MPD produced by to_mpd (or hand-written in the same subset)
/// back into a manifest. Throws std::invalid_argument on structural errors:
/// missing elements, ladder/size mismatches, or unparsable durations.
VideoManifest from_mpd(std::string_view mpd_xml);

/// Parses an ISO-8601 duration of the restricted form PT[nH][nM][n(.n)S]
/// into seconds. Throws std::invalid_argument on malformed input.
double parse_iso8601_duration(std::string_view text);

/// Formats seconds as an ISO-8601 duration PTnnn.nnnS.
std::string format_iso8601_duration(double seconds);

}  // namespace abr::media
