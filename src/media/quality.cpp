#include "media/quality.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace abr::media {

QualityFunction QualityFunction::identity() {
  return QualityFunction(Kind::kIdentity, "identity");
}

QualityFunction QualityFunction::logarithmic(double reference_kbps,
                                             double scale) {
  assert(reference_kbps > 0.0 && scale > 0.0);
  QualityFunction q(Kind::kLog, "log");
  q.a_ = reference_kbps;
  q.b_ = scale;
  return q;
}

QualityFunction QualityFunction::device_saturating(double knee_kbps,
                                                   double slope_above_knee) {
  assert(knee_kbps > 0.0);
  assert(slope_above_knee >= 0.0 && slope_above_knee <= 1.0);
  QualityFunction q(Kind::kSaturating, "saturating");
  q.a_ = knee_kbps;
  q.b_ = slope_above_knee;
  return q;
}

QualityFunction QualityFunction::piecewise(
    std::vector<std::pair<double, double>> points) {
  if (points.size() < 2) {
    throw std::invalid_argument("piecewise quality: need >= 2 points");
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].first <= points[i - 1].first) {
      throw std::invalid_argument("piecewise quality: bitrates not increasing");
    }
    if (points[i].second < points[i - 1].second) {
      throw std::invalid_argument("piecewise quality: quality decreasing");
    }
  }
  QualityFunction q(Kind::kPiecewise, "piecewise");
  q.points_ = std::move(points);
  return q;
}

double QualityFunction::operator()(double bitrate_kbps) const {
  switch (kind_) {
    case Kind::kIdentity:
      return bitrate_kbps;
    case Kind::kLog:
      return b_ * std::log(bitrate_kbps / a_);
    case Kind::kSaturating:
      if (bitrate_kbps <= a_) return bitrate_kbps;
      return a_ + b_ * (bitrate_kbps - a_);
    case Kind::kPiecewise: {
      if (bitrate_kbps <= points_.front().first) return points_.front().second;
      if (bitrate_kbps >= points_.back().first) return points_.back().second;
      for (std::size_t i = 1; i < points_.size(); ++i) {
        if (bitrate_kbps <= points_[i].first) {
          const auto& [x0, y0] = points_[i - 1];
          const auto& [x1, y1] = points_[i];
          const double frac = (bitrate_kbps - x0) / (x1 - x0);
          return y0 + frac * (y1 - y0);
        }
      }
      return points_.back().second;  // unreachable
    }
  }
  return 0.0;  // unreachable
}

}  // namespace abr::media
