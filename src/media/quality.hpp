#pragma once

#include <string>
#include <vector>

namespace abr::media {

/// The perceptual quality function q(.) of Section 3.1: a non-decreasing map
/// from bitrate (kbps) to perceived quality.
///
/// The paper's evaluation uses the identity function; it also discusses
/// device- and content-dependent shapes (e.g., on a phone, 3 Mbps and 1 Mbps
/// look alike — a saturating/logarithmic q). All three families are provided
/// so the QoE model and the MPC objective can be exercised across them.
class QualityFunction {
 public:
  /// q(R) = R. The paper's default (Section 7.1.1).
  static QualityFunction identity();

  /// q(R) = scale * log(R / reference). Models diminishing returns at high
  /// bitrates (the shape later adopted by Pensieve's QoE_log).
  static QualityFunction logarithmic(double reference_kbps, double scale);

  /// q(R) = saturating: R below the knee, then compressed slope above it.
  /// Models small-screen devices where quality saturates past `knee_kbps`.
  static QualityFunction device_saturating(double knee_kbps,
                                           double slope_above_knee);

  /// Piecewise-linear through explicit (bitrate, quality) points; bitrates
  /// must be strictly increasing and qualities non-decreasing. Models
  /// per-title encoding curves.
  static QualityFunction piecewise(std::vector<std::pair<double, double>> points);

  /// Evaluates q at the given bitrate (kbps).
  double operator()(double bitrate_kbps) const;

  const std::string& name() const { return name_; }

 private:
  enum class Kind { kIdentity, kLog, kSaturating, kPiecewise };

  QualityFunction(Kind kind, std::string name) : kind_(kind), name_(std::move(name)) {}

  Kind kind_;
  std::string name_;
  double a_ = 0.0;
  double b_ = 0.0;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace abr::media
