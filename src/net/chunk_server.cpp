#include "net/chunk_server.hpp"

#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "media/mpd.hpp"
#include "net/faults.hpp"
#include "net/telemetry.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "obs/trace_event.hpp"
#include "util/strings.hpp"

namespace abr::net {

TcpServer::TcpServer(SessionHandler session) : session_(std::move(session)) {
  assert(session_);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start(std::uint16_t port) {
  assert(!running_.load());
  listener_ = TcpListener::bind_loopback(port);
  port_ = listener_.port();
  draining_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::spawn_locked(TcpStream stream,
                             const std::function<void(TcpStream&)>& run) {
  auto connection = std::make_unique<Connection>();
  connection->stream = std::move(stream);
  Connection* raw = connection.get();
  connection->thread = std::thread([raw, run] {
    try {
      run(raw->stream);
    } catch (const std::exception&) {
      // A handler that leaks an exception must not take the server down.
    }
    // Tell the peer we are done *now*: the fd itself is reclaimed lazily
    // (on the next accept's prune), but without the shutdown a peer
    // waiting on the socket would hang until then instead of seeing EOF.
    raw->stream.shutdown_both();
    raw->done.store(true);
  });
  connections_.push_back(std::move(connection));
}

void TcpServer::accept_loop() {
  while (running_.load()) {
    TcpStream stream;
    try {
      stream = listener_.accept();
    } catch (const std::system_error&) {
      if (!running_.load()) break;  // listener closed: orderly shutdown
      // Transient accept failure — EMFILE/ENFILE under descriptor
      // exhaustion, ECONNABORTED on a connection that died in the backlog.
      // Back off briefly (pruning below also releases descriptors of
      // finished sessions) and keep accepting rather than killing the loop.
      {
        const util::MutexLock lock(mutex_);
        prune_finished_locked();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const util::MutexLock lock(mutex_);
    if (!running_.load()) break;  // stop() raced us; drop the connection
    prune_finished_locked();
    if (max_connections_ != 0 && active_locked() >= max_connections_) {
      rejected_.fetch_add(1);
      if (reject_) {
        // Shed on a short-lived thread of its own so a slow (or hostile)
        // rejected peer cannot stall the accept loop.
        spawn_locked(std::move(stream), reject_);
      }
      continue;  // without a reject handler the stream just closes here
    }
    spawn_locked(std::move(stream), session_);
    const std::size_t active = active_locked();
    if (active > peak_.load()) peak_.store(active);
  }
}

void TcpServer::prune_finished_locked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t TcpServer::active_locked() const {
  std::size_t active = 0;
  for (const auto& connection : connections_) {
    if (!connection->done.load()) ++active;
  }
  return active;
}

std::size_t TcpServer::active_connections() const {
  const util::MutexLock lock(mutex_);
  return active_locked();
}

std::size_t TcpServer::tracked_connections() const {
  const util::MutexLock lock(mutex_);
  return connections_.size();
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();  // shutdown+close: wakes the blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();

  // Interrupt handlers blocked on live peers (e.g., a keep-alive client
  // that has not closed): shutting the stream down makes their next read
  // return EOF. Streams stay owned by Connection, so this is safe while the
  // handler thread still uses them.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const util::MutexLock lock(mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    connection->stream.shutdown_both();
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

std::size_t TcpServer::drain(double deadline_s) {
  if (!running_.exchange(false)) return 0;
  draining_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Let in-flight sessions finish on their own. Keep-alive handlers poll
  // draining() and close at the next request boundary.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(deadline_s));
  while (std::chrono::steady_clock::now() < deadline) {
    bool idle = false;
    {
      const util::MutexLock lock(mutex_);
      prune_finished_locked();
      idle = connections_.empty();
    }
    if (idle) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Deadline passed (or everyone finished): force-close the stragglers.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const util::MutexLock lock(mutex_);
    prune_finished_locked();
    connections.swap(connections_);
  }
  std::size_t forced = 0;
  for (const auto& connection : connections) {
    if (!connection->done.load()) {
      ++forced;
      connection->stream.shutdown_both();
    }
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  return forced;
}

namespace {

/// Resolves ServerEngine::kDefault: the ABR_SERVER_ENGINE environment
/// variable ("threaded"/"sharded") decides, else the sharded engine.
ServerEngine resolve_engine(ServerEngine requested) {
  if (requested != ServerEngine::kDefault) return requested;
  if (const char* env = std::getenv("ABR_SERVER_ENGINE")) {
    if (std::string_view(env) == "threaded") return ServerEngine::kThreaded;
    if (std::string_view(env) == "sharded") return ServerEngine::kSharded;
  }
  return ServerEngine::kSharded;
}

/// Serializes the response head exactly as the serving loop always has:
/// status line, routed headers in order, Content-Length, blank line.
std::string serialize_head(const RoutedResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     response.reason + "\r\n";
  for (const auto& [key, value] : response.headers.entries) {
    head += key + ": " + value + "\r\n";
  }
  head +=
      "Content-Length: " + std::to_string(response.body_size()) + "\r\n\r\n";
  return head;
}

/// Replaces a routed response with an injected HTTP error (fault
/// kHttpError), dropping any shared body slice.
void apply_http_error(RoutedResponse& response, int status) {
  response.status = status;
  response.reason = "Service Unavailable";
  response.headers = HttpHeaders{};
  response.body_inline = "injected fault\n";
  response.body_shared = nullptr;
  response.body_offset = 0;
  response.body_length = 0;
}

}  // namespace

bool parse_segment_path(std::string_view target, std::size_t& level,
                        std::size_t& number) {
  constexpr std::string_view kPrefix = "/video/";
  constexpr std::string_view kSeg = "seg-";
  constexpr std::string_view kExt = ".m4s";
  if (!util::starts_with(target, kPrefix)) return false;
  target.remove_prefix(kPrefix.size());
  const std::size_t slash = target.find('/');
  if (slash == std::string_view::npos) return false;
  if (!util::parse_size(target.substr(0, slash), level)) return false;
  target.remove_prefix(slash + 1);
  if (!util::starts_with(target, kSeg)) return false;
  target.remove_prefix(kSeg.size());
  if (target.size() <= kExt.size() ||
      target.substr(target.size() - kExt.size()) != kExt) {
    return false;
  }
  return util::parse_size(target.substr(0, target.size() - kExt.size()),
                          number);
}

ChunkServer::ChunkServer(const media::VideoManifest& manifest,
                         const trace::ThroughputTrace& trace, double speedup,
                         ChunkServerOptions options)
    : manifest_(&manifest),
      mpd_(media::to_mpd(manifest)),
      shaper_(trace, speedup),
      speedup_(speedup),
      options_(std::move(options)),
      requests_counter_(&obs::MetricsRegistry::global().counter(
          obs::kHttpRequestsTotal, options_.metric_label)),
      bytes_counter_(&obs::MetricsRegistry::global().counter(
          obs::kHttpBytesServedTotal, options_.metric_label)),
      connections_gauge_(&obs::MetricsRegistry::global().gauge(
          obs::kHttpActiveConnections, options_.metric_label)),
      peak_connections_gauge_(&obs::MetricsRegistry::global().gauge(
          obs::kHttpPeakConnections, options_.metric_label)),
      shed_counter_(&obs::MetricsRegistry::global().counter(
          obs::kOriginShedTotal, options_.metric_label)),
      drain_forced_counter_(&obs::MetricsRegistry::global().counter(
          obs::kDrainForcedClosesTotal, options_.metric_label)),
      bad_request_malformed_(&obs::MetricsRegistry::global().counter(
          obs::kHttpBadRequestsTotal, obs::bad_request_label("malformed"))),
      bad_request_method_(&obs::MetricsRegistry::global().counter(
          obs::kHttpBadRequestsTotal, obs::bad_request_label("method"))),
      bad_request_not_found_(&obs::MetricsRegistry::global().counter(
          obs::kHttpBadRequestsTotal, obs::bad_request_label("not_found"))),
      bad_request_range_(&obs::MetricsRegistry::global().counter(
          obs::kHttpBadRequestsTotal, obs::bad_request_label("range"))),
      range_requests_(&obs::MetricsRegistry::global().counter(
          obs::kHttpRangeRequestsTotal, options_.metric_label)),
      request_latency_(&obs::MetricsRegistry::global().histogram(
          obs::kHttpRequestLatencyUs, options_.metric_label)),
      telemetry_metrics_requests_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryRequestsTotal,
          obs::telemetry_endpoint_label("/metrics"))),
      telemetry_statusz_requests_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryRequestsTotal,
          obs::telemetry_endpoint_label("/statusz"))),
      telemetry_scrape_latency_(&obs::MetricsRegistry::global().histogram(
          obs::kTelemetryScrapeLatencyUs, "",
          obs::exponential_buckets(10.0, 2.0, 16))),
      telemetry_deadline_counter_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryDeadlineExceededTotal)),
      engine_(resolve_engine(options_.engine)) {
  if (engine_ == ServerEngine::kThreaded) {
    threaded_ = std::make_unique<TcpServer>(
        [this](TcpStream& stream) { handle_connection(stream); });
    threaded_->set_max_connections(options_.max_connections);
    threaded_->set_reject_handler(
        [this](TcpStream& stream) { reject_connection(stream); });
    transport_ = threaded_.get();
  } else {
    gate_ = std::make_unique<ShaperGate>(trace, speedup);
    EpollServer::EpollServerOptions epoll_options;
    epoll_options.shards = options_.shards;
    epoll_options.max_connections = options_.max_connections;
    epoll_options.idle_timeout_ms = options_.idle_timeout_ms;
    // The cast happens here (inside ChunkServer) because the Handler base
    // is private; make_unique itself could not perform it.
    sharded_ = std::make_unique<EpollServer>(
        static_cast<EpollServer::Handler*>(this), epoll_options);
    sharded_->set_shaper_gate(gate_.get());
    transport_ = sharded_.get();
  }
}

ChunkServer::~ChunkServer() { stop(); }

void ChunkServer::start(std::uint16_t port) {
  started_ = std::chrono::steady_clock::now();
  transport_->start(port);
}

void ChunkServer::stop() {
  transport_->stop();
  flush_metrics();
}

double ChunkServer::uptime_s() const {
  if (started_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

void ChunkServer::flush_metrics() {
  // Shed connections whose reject handler was force-closed before it could
  // count itself: the transport's rejected tally is ground truth.
  const std::size_t rejected = transport_->rejected_connections();
  const std::size_t handled = shed_handled_.exchange(rejected);
  if (rejected > handled) {
    shed_counter_->increment(static_cast<double>(rejected - handled));
  }
  const auto peak = static_cast<double>(transport_->peak_connections());
  if (peak > peak_connections_gauge_->value()) {
    peak_connections_gauge_->set(peak);
  }
  if (engine_ == ServerEngine::kSharded) {
    // The sharded engine has no per-connection handler bracketing the
    // gauge; the transport's live count is ground truth.
    connections_gauge_->set(
        static_cast<double>(transport_->active_connections()));
  }
}

std::size_t ChunkServer::drain(double deadline_s) {
  const std::size_t forced = transport_->drain(deadline_s);
  if (forced > 0) {
    drain_forced_counter_->increment(static_cast<double>(forced));
  }
  flush_metrics();
  if (options_.trace_writer != nullptr && options_.trace_writer->enabled()) {
    // Lifecycle instants so a final trace dump reflects the connections that
    // never finished cleanly (wall clock; net/ is outside the deterministic
    // layers).
    const double now_s = uptime_s();
    if (forced > 0) {
      options_.trace_writer->instant("drain_forced_close", "server", now_s, 0,
                                     {{"connections", forced}});
    }
    options_.trace_writer->instant(
        "drain_complete", "server", now_s, 0,
        {{"shed", transport_->rejected_connections()},
         {"requests_served", requests_served_.load()}});
  }
  return forced;
}

void ChunkServer::reset_trace_clock() {
  {
    const util::MutexLock lock(shaper_mutex_);
    shaper_.reset_epoch();
  }
  if (gate_ != nullptr) gate_->reset_epoch();
}

std::shared_ptr<const std::string> ChunkServer::fill_buffer(
    char fill, std::size_t size) const {
  const util::MutexLock lock(fill_mutex_);
  std::shared_ptr<const std::string>& slot = fill_buffers_[fill - 'A'];
  if (slot == nullptr || slot->size() < size) {
    slot = std::make_shared<const std::string>(size, fill);
  }
  return slot;
}

RoutedResponse ChunkServer::route(const HttpRequest& request) const {
  RoutedResponse response;
  if (request.method != "GET") {
    bad_request_method_->increment();
    response.status = 405;
    response.reason = "Method Not Allowed";
    response.headers.set("Allow", "GET");
    return response;
  }
  if (request.target == "/healthz") {
    response.headers.set("Content-Type", "text/plain");
    if (transport_->draining()) {
      response.status = 503;
      response.reason = "Service Unavailable";
      response.body_inline = "draining\n";
    } else {
      response.body_inline = "ok\n";
    }
    return response;
  }
  if (is_telemetry_target(request.target)) {
    // Live telemetry plane: the registry scrape and the status snapshot.
    // Bodies are sent unshaped under the telemetry deadline so a scrape can
    // never worsen overload.
    if (request.target == "/metrics") {
      telemetry_metrics_requests_->increment();
    } else {
      telemetry_statusz_requests_->increment();
    }
    if (engine_ == ServerEngine::kSharded) {
      // No per-connection handler brackets this gauge on the sharded
      // engine; refresh it from transport truth at every scrape.
      connections_gauge_->set(
          static_cast<double>(transport_->active_connections()));
    }
    TelemetryStatus status;
    status.uptime_s = uptime_s();
    status.draining = transport_->draining();
    status.active_connections = transport_->active_connections();
    status.peak_connections = transport_->peak_connections();
    status.shed_connections = transport_->rejected_connections();
    status.requests_served = requests_served_.load();
    const HttpResponse scrape = telemetry_response(
        obs::MetricsRegistry::global(), request.target, status);
    response.status = scrape.status;
    response.reason = scrape.reason;
    response.headers = scrape.headers;
    response.body_inline = scrape.body;
    response.telemetry = true;
    return response;
  }
  if (request.target == "/manifest.mpd") {
    response.headers.set("Content-Type", "application/dash+xml");
    response.body_inline = mpd_;
    return response;
  }
  std::size_t level = 0;
  std::size_t number = 0;
  if (parse_segment_path(request.target, level, number) &&
      level < manifest_->level_count() && number < manifest_->chunk_count()) {
    const double kilobits = manifest_->chunk_kilobits(number, level);
    const auto bytes = static_cast<std::size_t>(kilobits * 1000.0 / 8.0);
    response.headers.set("Content-Type", "video/iso.segment");
    response.headers.set("Accept-Ranges", "bytes");
    // Deterministic filler payload; content is irrelevant to the transport.
    // The body is a slice of a shared per-character buffer — response
    // delivery never copies chunk bytes.
    const char fill = static_cast<char>('A' + (number + level) % 26);
    response.body_shared = fill_buffer(fill, bytes);
    response.body_offset = 0;
    response.body_length = bytes;
    if (const std::string* range_header = request.headers.find("Range")) {
      ByteRange range;
      switch (parse_range_header(*range_header, bytes, range)) {
        case RangeParse::kNone:
          break;  // ignored per RFC 7233: the full body goes out as a 200
        case RangeParse::kValid:
          range_requests_->increment();
          response.status = 206;
          response.reason = "Partial Content";
          response.headers.set(
              "Content-Range", "bytes " + std::to_string(range.first) + "-" +
                                   std::to_string(range.last) + "/" +
                                   std::to_string(bytes));
          response.body_offset = range.first;
          response.body_length = range.last - range.first + 1;
          break;
        case RangeParse::kUnsatisfiable:
          bad_request_range_->increment();
          response.status = 416;
          response.reason = "Range Not Satisfiable";
          response.headers.set("Content-Range",
                               "bytes */" + std::to_string(bytes));
          response.body_shared = nullptr;
          response.body_length = 0;
          break;
      }
    }
    return response;
  }
  bad_request_not_found_->increment();
  response.status = 404;
  response.reason = "Not Found";
  return response;
}

void ChunkServer::reject_connection(TcpStream& stream) {
  shed_counter_->increment();
  shed_handled_.fetch_add(1);
  try {
    stream.set_no_delay(true);
    stream.set_timeout_ms(2000);
    HttpConnection connection(&stream);
    // Consume the request first so closing after the 503 cannot RST it away
    // before the client reads the response.
    try {
      (void)connection.read_request();
    } catch (const std::exception&) {
      // Even an unparsable request gets the 503; it is closing either way.
    }
    HttpResponse response;
    response.status = 503;
    response.reason = "Service Unavailable";
    response.headers.set("Retry-After", std::to_string(options_.retry_after_s));
    response.headers.set("Connection", "close");
    response.body = "overloaded\n";
    connection.write_response(response);
    stream.shutdown_write();
  } catch (const std::exception&) {
    // Peer gone mid-shed: nothing to tell it.
  }
}

void ChunkServer::handle_connection(TcpStream& stream) {
  connections_gauge_->add(1.0);
  const std::size_t live = live_connections_.fetch_add(1) + 1;
  if (static_cast<double>(live) > peak_connections_gauge_->value()) {
    peak_connections_gauge_->set(static_cast<double>(live));
  }
  try {
    stream.set_no_delay(true);
    stream.set_timeout_ms(options_.idle_timeout_ms);
    HttpConnection connection(&stream);
    while (true) {
      std::optional<HttpRequest> request;
      try {
        request = connection.read_request();
      } catch (const std::invalid_argument&) {
        // Malformed request line, oversized headers, bad framing: answer
        // with a clean 400 (best effort — the peer may already be gone)
        // and drop the connection instead of letting the exception tear it
        // down silently.
        bad_request_malformed_->increment();
        HttpResponse bad;
        bad.status = 400;
        bad.reason = "Bad Request";
        bad.headers.set("Connection", "close");
        bad.body = "bad request\n";
        try {
          connection.write_response(bad);
        } catch (const std::exception&) {
        }
        break;
      }
      if (!request.has_value()) break;  // client closed keep-alive
      // Request latency covers routing plus the shaped body send — the time
      // the client actually waits, i.e. the emulated link is part of it.
      obs::LatencyTimer latency(request_latency_);
      RoutedResponse response = route(*request);
      ++requests_served_;
      requests_counter_->increment();

      const bool draining = transport_->draining();
      if (draining) response.headers.set("Connection", "close");

      // Fault injection applies to segment requests only (the MPD and
      // error responses go out faithfully).
      testing::FaultDecision fault;
      std::size_t level = 0;
      std::size_t number = 0;
      if (injector_ != nullptr &&
          (response.status == 200 || response.status == 206) &&
          parse_segment_path(request->target, level, number)) {
        fault = injector_->next(number);
      }

      if (fault.kind == testing::FaultKind::kReset) {
        // Tear the connection down without answering: the client's read
        // fails mid-request.
        stream.shutdown_both();
        break;
      }
      if (fault.kind == testing::FaultKind::kHttpError) {
        apply_http_error(response, injector_->plan().http_status);
      }
      if (fault.kind == testing::FaultKind::kLatencySpike) {
        // First-byte delay, in wall time scaled like the shaper.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.latency_s / speedup_));
      }

      bytes_counter_->increment(static_cast<double>(response.body_size()));

      // Headers go out unshaped; the body is paced by the trace shaper
      // (the emulated access link). A truncating fault still promises the
      // full Content-Length — the client must detect the short body.
      const std::string head = serialize_head(response);

      if (is_telemetry_target(request->target)) {
        // Telemetry goes out unshaped (no shaper_mutex_, so a scrape never
        // queues behind a shaped segment send) under its own hard deadline:
        // a scraper that stops reading is disconnected — shed, not queued.
        const obs::LatencyTimer scrape_timer(telemetry_scrape_latency_);
        stream.set_timeout_ms(options_.telemetry_deadline_ms);
        try {
          connection.stream().write_all(head);
          connection.stream().write_all(response.body());
        } catch (const std::exception&) {
          telemetry_deadline_counter_->increment();
          break;
        }
        stream.set_timeout_ms(options_.idle_timeout_ms);
        if (draining) break;
        continue;
      }

      connection.stream().write_all(head);

      const std::string_view body = response.body();
      if (fault.kind == testing::FaultKind::kStall) {
        const auto split = static_cast<std::size_t>(
            static_cast<double>(body.size()) * fault.body_fraction);
        {
          const util::MutexLock lock(shaper_mutex_);
          shaper_.send(connection.stream(), body.substr(0, split));
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.stall_s / speedup_));
        const util::MutexLock lock(shaper_mutex_);
        shaper_.send(connection.stream(), body.substr(split));
      } else if (fault.kind == testing::FaultKind::kPartialBody) {
        const auto split = static_cast<std::size_t>(
            static_cast<double>(body.size()) * fault.body_fraction);
        {
          const util::MutexLock lock(shaper_mutex_);
          shaper_.send(connection.stream(), body.substr(0, split));
        }
        stream.shutdown_both();
        break;
      } else {
        const util::MutexLock lock(shaper_mutex_);
        shaper_.send(connection.stream(), body);
      }

      if (draining) break;  // honoured Connection: close; drain proceeds
    }
  } catch (const std::exception&) {
    // Connection torn down (client abort / shutdown): drop it.
  }
  live_connections_.fetch_sub(1);
  connections_gauge_->add(-1.0);
}

// --- sharded engine request plane ------------------------------------------
//
// The EpollServer parses requests and delivers responses; these callbacks
// (reactor threads) plan them with the same route → count → drain header →
// fault → bytes-counter sequence as handle_connection, expressed as
// directives instead of inline sleeps and shaped sends.

EpollServer::Response ChunkServer::on_request(const HttpRequest& request) {
  RoutedResponse routed = route(request);
  ++requests_served_;
  requests_counter_->increment();

  const bool draining_now = transport_->draining();
  if (draining_now) routed.headers.set("Connection", "close");

  EpollServer::Response out;

  // Fault injection applies to segment requests only (the MPD and error
  // responses go out faithfully).
  testing::FaultDecision fault;
  std::size_t level = 0;
  std::size_t number = 0;
  if (injector_ != nullptr &&
      (routed.status == 200 || routed.status == 206) &&
      parse_segment_path(request.target, level, number)) {
    fault = injector_->next(number);
  }
  if (fault.kind == testing::FaultKind::kReset) {
    // Tear the connection down without answering: the client's read fails
    // mid-request.
    out.reset = true;
    return out;
  }
  if (fault.kind == testing::FaultKind::kHttpError) {
    apply_http_error(routed, injector_->plan().http_status);
  }
  if (fault.kind == testing::FaultKind::kLatencySpike) {
    // First-byte delay, in wall time scaled like the shaper.
    out.first_byte_delay_s = fault.latency_s / speedup_;
  }
  if (fault.kind == testing::FaultKind::kStall) {
    out.stall_after_fraction = fault.body_fraction;
    out.stall_wall_s = fault.stall_s / speedup_;
  }
  if (fault.kind == testing::FaultKind::kPartialBody) {
    // The head still promises the full Content-Length — the client must
    // detect the short body.
    out.truncate_after_fraction = fault.body_fraction;
  }

  bytes_counter_->increment(static_cast<double>(routed.body_size()));

  out.head = serialize_head(routed);
  out.body_inline = std::move(routed.body_inline);
  out.body_shared = std::move(routed.body_shared);
  out.body_offset = routed.body_offset;
  out.body_length = routed.body_length;
  out.telemetry = routed.telemetry;
  if (routed.telemetry) {
    // Telemetry goes out unshaped (never queued behind a shaped segment
    // send) under its own hard deadline: a scraper that stops reading is
    // disconnected — shed, not queued.
    out.shaped = false;
    out.write_deadline_ms = options_.telemetry_deadline_ms;
  } else {
    out.shaped = true;
  }
  out.close_after = draining_now;
  return out;
}

EpollServer::Response ChunkServer::on_bad_request() {
  bad_request_malformed_->increment();
  RoutedResponse routed;
  routed.status = 400;
  routed.reason = "Bad Request";
  routed.headers.set("Connection", "close");
  routed.body_inline = "bad request\n";
  EpollServer::Response out;
  out.head = serialize_head(routed);
  out.body_inline = std::move(routed.body_inline);
  out.close_after = true;
  return out;
}

EpollServer::Response ChunkServer::on_reject() {
  shed_counter_->increment();
  shed_handled_.fetch_add(1);
  RoutedResponse routed;
  routed.status = 503;
  routed.reason = "Service Unavailable";
  routed.headers.set("Retry-After", std::to_string(options_.retry_after_s));
  routed.headers.set("Connection", "close");
  routed.body_inline = "overloaded\n";
  EpollServer::Response out;
  out.head = serialize_head(routed);
  out.body_inline = std::move(routed.body_inline);
  out.close_after = true;
  return out;
}

void ChunkServer::on_response_done(const EpollServer::Response& response,
                                   EpollServer::Response::Kind kind,
                                   double wall_us,
                                   EpollServer::Outcome outcome) {
  if (kind != EpollServer::Response::Kind::kRequest) return;
  // Request latency covers routing plus the (shaped) body send — the time
  // the client actually waits, like the threaded engine's LatencyTimer.
  request_latency_->observe(wall_us);
  if (response.telemetry) {
    telemetry_scrape_latency_->observe(wall_us);
    if (outcome != EpollServer::Outcome::kComplete) {
      // The threaded engine counts any failed telemetry write as a
      // deadline trip (the write deadline is the only bound on it).
      telemetry_deadline_counter_->increment();
    }
  }
}

}  // namespace abr::net
