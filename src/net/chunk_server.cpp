#include "net/chunk_server.hpp"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

#include "media/mpd.hpp"
#include "net/faults.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "util/strings.hpp"

namespace abr::net {

TcpServer::TcpServer(SessionHandler session) : session_(std::move(session)) {
  assert(session_);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  assert(!running_.load());
  listener_ = TcpListener::bind_loopback();
  port_ = listener_.port();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void TcpServer::accept_loop() {
  while (running_.load()) {
    TcpStream stream;
    try {
      stream = listener_.accept();
    } catch (const std::system_error&) {
      break;  // listener closed: orderly shutdown
    }
    auto connection = std::make_unique<Connection>();
    connection->stream = std::move(stream);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load()) break;  // stop() raced us; drop the connection
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { session_(raw->stream); });
    connections_.push_back(std::move(connection));
  }
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();  // shutdown+close: wakes the blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();

  // Interrupt handlers blocked on live peers (e.g., a keep-alive client
  // that has not closed): shutting the stream down makes their next read
  // return EOF. Streams stay owned by Connection, so this is safe while the
  // handler thread still uses them.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    connection->stream.shutdown_both();
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

bool parse_segment_path(std::string_view target, std::size_t& level,
                        std::size_t& number) {
  constexpr std::string_view kPrefix = "/video/";
  constexpr std::string_view kSeg = "seg-";
  constexpr std::string_view kExt = ".m4s";
  if (!util::starts_with(target, kPrefix)) return false;
  target.remove_prefix(kPrefix.size());
  const std::size_t slash = target.find('/');
  if (slash == std::string_view::npos) return false;
  if (!util::parse_size(target.substr(0, slash), level)) return false;
  target.remove_prefix(slash + 1);
  if (!util::starts_with(target, kSeg)) return false;
  target.remove_prefix(kSeg.size());
  if (target.size() <= kExt.size() ||
      target.substr(target.size() - kExt.size()) != kExt) {
    return false;
  }
  return util::parse_size(target.substr(0, target.size() - kExt.size()),
                          number);
}

ChunkServer::ChunkServer(const media::VideoManifest& manifest,
                         const trace::ThroughputTrace& trace, double speedup)
    : manifest_(&manifest),
      mpd_(media::to_mpd(manifest)),
      shaper_(trace, speedup),
      speedup_(speedup),
      requests_counter_(
          &obs::MetricsRegistry::global().counter(obs::kHttpRequestsTotal)),
      bytes_counter_(
          &obs::MetricsRegistry::global().counter(obs::kHttpBytesServedTotal)),
      connections_gauge_(
          &obs::MetricsRegistry::global().gauge(obs::kHttpActiveConnections)),
      request_latency_(&obs::MetricsRegistry::global().histogram(
          obs::kHttpRequestLatencyUs)),
      server_([this](TcpStream& stream) { handle_connection(stream); }) {}

ChunkServer::~ChunkServer() { stop(); }

void ChunkServer::start() { server_.start(); }

void ChunkServer::stop() { server_.stop(); }

void ChunkServer::reset_trace_clock() {
  std::lock_guard<std::mutex> lock(shaper_mutex_);
  shaper_.reset_epoch();
}

HttpResponse ChunkServer::route(const HttpRequest& request) const {
  HttpResponse response;
  if (request.method != "GET") {
    response.status = 405;
    response.reason = "Method Not Allowed";
    return response;
  }
  if (request.target == "/manifest.mpd") {
    response.headers.set("Content-Type", "application/dash+xml");
    response.body = mpd_;
    return response;
  }
  std::size_t level = 0;
  std::size_t number = 0;
  if (parse_segment_path(request.target, level, number) &&
      level < manifest_->level_count() && number < manifest_->chunk_count()) {
    const double kilobits = manifest_->chunk_kilobits(number, level);
    const auto bytes = static_cast<std::size_t>(kilobits * 1000.0 / 8.0);
    response.headers.set("Content-Type", "video/iso.segment");
    // Deterministic filler payload; content is irrelevant to the transport.
    response.body.assign(bytes, static_cast<char>('A' + (number + level) % 26));
    return response;
  }
  response.status = 404;
  response.reason = "Not Found";
  return response;
}

void ChunkServer::handle_connection(TcpStream& stream) {
  connections_gauge_->add(1.0);
  try {
    stream.set_no_delay(true);
    stream.set_timeout_ms(120000);
    HttpConnection connection(&stream);
    while (true) {
      const auto request = connection.read_request();
      if (!request.has_value()) break;  // client closed keep-alive
      // Request latency covers routing plus the shaped body send — the time
      // the client actually waits, i.e. the emulated link is part of it.
      obs::LatencyTimer latency(request_latency_);
      HttpResponse response = route(*request);
      ++requests_served_;
      requests_counter_->increment();

      // Fault injection applies to segment requests only (the MPD and
      // error responses go out faithfully).
      testing::FaultDecision fault;
      std::size_t level = 0;
      std::size_t number = 0;
      if (injector_ != nullptr && response.status == 200 &&
          parse_segment_path(request->target, level, number)) {
        fault = injector_->next(number);
      }

      if (fault.kind == testing::FaultKind::kReset) {
        // Tear the connection down without answering: the client's read
        // fails mid-request.
        stream.shutdown_both();
        break;
      }
      if (fault.kind == testing::FaultKind::kHttpError) {
        response.status = injector_->plan().http_status;
        response.reason = "Service Unavailable";
        response.headers = HttpHeaders{};
        response.body = "injected fault\n";
      }
      if (fault.kind == testing::FaultKind::kLatencySpike) {
        // First-byte delay, in wall time scaled like the shaper.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.latency_s / speedup_));
      }

      bytes_counter_->increment(static_cast<double>(response.body.size()));

      // Headers go out unshaped; the body is paced by the trace shaper
      // (the emulated access link). A truncating fault still promises the
      // full Content-Length — the client must detect the short body.
      std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                         response.reason + "\r\n";
      for (const auto& [key, value] : response.headers.entries) {
        head += key + ": " + value + "\r\n";
      }
      head += "Content-Length: " + std::to_string(response.body.size()) +
              "\r\n\r\n";
      connection.stream().write_all(head);

      const std::string_view body = response.body;
      if (fault.kind == testing::FaultKind::kStall) {
        const auto split = static_cast<std::size_t>(
            static_cast<double>(body.size()) * fault.body_fraction);
        {
          std::lock_guard<std::mutex> lock(shaper_mutex_);
          shaper_.send(connection.stream(), body.substr(0, split));
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.stall_s / speedup_));
        std::lock_guard<std::mutex> lock(shaper_mutex_);
        shaper_.send(connection.stream(), body.substr(split));
      } else if (fault.kind == testing::FaultKind::kPartialBody) {
        const auto split = static_cast<std::size_t>(
            static_cast<double>(body.size()) * fault.body_fraction);
        {
          std::lock_guard<std::mutex> lock(shaper_mutex_);
          shaper_.send(connection.stream(), body.substr(0, split));
        }
        stream.shutdown_both();
        break;
      } else {
        std::lock_guard<std::mutex> lock(shaper_mutex_);
        shaper_.send(connection.stream(), body);
      }
    }
  } catch (const std::exception&) {
    // Connection torn down (client abort / shutdown): drop it.
  }
  connections_gauge_->add(-1.0);
}

}  // namespace abr::net
