#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "media/manifest.hpp"
#include "net/epoll_server.hpp"
#include "net/http.hpp"
#include "net/server_transport.hpp"
#include "net/shaper.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "trace/throughput_trace.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::obs {
class TraceWriter;
}

namespace abr::net {

/// A small threaded TCP server: one accept loop, one thread per connection,
/// each running `session` until it returns (typically at client EOF).
///
/// The server retains ownership of every connection's stream so that stop()
/// can interrupt handlers blocked on a live peer: it shuts down each stream
/// (waking any blocked read), then joins every thread. Without this, a
/// keep-alive client that never closes would deadlock shutdown.
///
/// Overload hardening:
///  - set_max_connections() caps concurrently live sessions; connections
///    past the cap run the reject handler (a terse 503, typically) instead
///    of the session handler, so the thread count stays bounded.
///  - Finished connection slots are pruned (thread joined, fd closed) on
///    every accept, so a long-lived server does not accumulate dead entries.
///  - A transient accept() failure (EMFILE under fd exhaustion,
///    ECONNABORTED) backs off briefly and keeps serving instead of killing
///    the accept loop.
///  - drain() replaces the hard stop() for graceful shutdown: stop
///    accepting, let in-flight sessions finish up to a deadline, then
///    force-close stragglers.
class TcpServer final : public ServerTransport {
 public:
  /// Runs one connection; returns when done. The stream reference stays
  /// valid for the duration of the call.
  using SessionHandler = std::function<void(TcpStream&)>;

  /// Runs a connection rejected by the admission cap (on its own thread,
  /// like a session). Should write a terse response and return promptly.
  using RejectHandler = std::function<void(TcpStream&)>;

  explicit TcpServer(SessionHandler session);
  ~TcpServer() override;

  /// Binds 127.0.0.1 and starts accepting; port 0 picks an ephemeral port.
  /// A stopped (or drained) server may be started again — passing the old
  /// port() restarts the origin on the same address, which is how the chaos
  /// harness brings a killed origin back.
  void start(std::uint16_t port = 0) override;
  void stop() override ABR_EXCLUDES(mutex_);

  /// Graceful shutdown: closes the listener, waits up to `deadline_s` for
  /// in-flight sessions to finish on their own, then force-closes the
  /// stragglers and joins everything. Returns the number of connections
  /// that had to be force-closed. Idempotent with stop() in either order.
  std::size_t drain(double deadline_s) override ABR_EXCLUDES(mutex_);

  /// True from the moment drain() begins until the next start(). Session
  /// handlers poll this to stop keep-alive loops at the next boundary.
  bool draining() const override { return draining_.load(); }

  /// Admission cap; 0 (default) means unlimited. Set before start().
  void set_max_connections(std::size_t cap) { max_connections_ = cap; }
  void set_reject_handler(RejectHandler reject) { reject_ = std::move(reject); }

  std::uint16_t port() const override { return port_; }

  std::size_t active_connections() const override ABR_EXCLUDES(mutex_);
  std::size_t peak_connections() const override { return peak_.load(); }
  std::size_t rejected_connections() const override {
    return rejected_.load();
  }
  /// Tracked entries including finished-but-unpruned ones (tests use this to
  /// show pruning keeps the vector bounded).
  std::size_t tracked_connections() const override ABR_EXCLUDES(mutex_);

 private:
  struct Connection {
    TcpStream stream;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop() ABR_EXCLUDES(mutex_);
  void spawn_locked(TcpStream stream,
                    const std::function<void(TcpStream&)>& run)
      ABR_REQUIRES(mutex_);
  void prune_finished_locked() ABR_REQUIRES(mutex_);
  std::size_t active_locked() const ABR_REQUIRES(mutex_);

  SessionHandler session_;
  RejectHandler reject_;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::size_t max_connections_ = 0;
  std::thread accept_thread_;
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      ABR_GUARDED_BY(mutex_);
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> rejected_{0};
};

class FaultInjector;

/// Which serving core backs a ChunkServer.
enum class ServerEngine {
  /// Resolve from the ABR_SERVER_ENGINE environment variable ("threaded" or
  /// "sharded"); unset falls back to kSharded.
  kDefault,
  /// Thread-per-connection TcpServer (the original engine; kept exercisable
  /// for differential coverage).
  kThreaded,
  /// Sharded epoll reactor (EpollServer): nonblocking sockets, no
  /// per-connection threads.
  kSharded,
};

/// Serving-path knobs for ChunkServer (all optional; the defaults preserve
/// the pre-hardening behaviour).
struct ChunkServerOptions {
  /// Serving core; see ServerEngine.
  ServerEngine engine = ServerEngine::kDefault;

  /// Reactor shard count for the sharded engine; 0 picks a small default
  /// from the host. Ignored by the threaded engine.
  std::size_t shards = 0;

  /// Admission cap on concurrent connections; 0 = unlimited. Connections
  /// past the cap get "503 Service Unavailable" with a Retry-After header
  /// instead of a session thread.
  std::size_t max_connections = 0;

  /// Socket read/write deadline per connection (slowloris guard): a peer
  /// that dribbles or stalls for longer than this gets disconnected.
  int idle_timeout_ms = 120000;

  /// Value of the Retry-After header on shed connections, seconds.
  int retry_after_s = 1;

  /// When non-empty, every metric this origin emits carries the label body
  /// origin_label(n) (e.g. `origin="1"`), so multi-origin harnesses can
  /// tell the origins apart. Empty (default) keeps the unlabeled families
  /// the single-origin tests expect.
  std::string metric_label;

  /// Hard per-request deadline for telemetry responses (/metrics and
  /// /statusz): their bodies are written unshaped under this socket
  /// timeout, so a slow scraper is disconnected (shed) instead of queuing
  /// behind — or stalling — the serving path.
  int telemetry_deadline_ms = 250;

  /// Optional lifecycle trace sink: drain() emits instants for forced
  /// closes and shed totals so the final trace dump reflects connections
  /// that never finished cleanly. Must outlive the server.
  obs::TraceWriter* trace_writer = nullptr;
};

/// A routed response before engine-specific delivery: status/reason/headers
/// plus a body that is either an owned string or a slice of a shared
/// immutable buffer (segment payloads — one fill buffer can back any number
/// of concurrent responses, so neither engine copies chunk bodies).
struct RoutedResponse {
  int status = 200;
  std::string reason = "OK";
  HttpHeaders headers;
  std::string body_inline;
  std::shared_ptr<const std::string> body_shared;
  std::size_t body_offset = 0;
  std::size_t body_length = 0;  ///< length of the shared slice
  bool telemetry = false;       ///< /metrics or /statusz

  std::string_view body() const {
    return body_shared != nullptr
               ? std::string_view(*body_shared).substr(body_offset, body_length)
               : std::string_view(body_inline);
  }
  std::size_t body_size() const { return body().size(); }
};

/// A synthetic DASH origin: serves the MPD and fixed-size segment payloads
/// for a manifest, with every response body paced by a trace-driven shaper.
/// Together with HttpChunkSource this reproduces the paper's emulation
/// testbed (Section 7.2: node.js static server + tc shaping) in-process.
///
/// Two serving cores are available behind one routing/fault/pacing plane
/// (ChunkServerOptions::engine): the original thread-per-connection
/// TcpServer and the sharded epoll reactor (EpollServer). Route semantics,
/// limits, admission control, drain, and fault behaviour are identical.
///
/// URL layout (matches the MPD's SegmentTemplate):
///   GET /manifest.mpd
///   GET /video/<representation-id>/seg-<number>.m4s
///   GET /healthz            -> 200 "ok" (503 "draining" during drain)
///   GET /metrics            -> Prometheus text exposition (live scrape)
///   GET /statusz            -> compact JSON server status
class ChunkServer : private EpollServer::Handler {
 public:
  /// The manifest and trace must outlive the server.
  ChunkServer(const media::VideoManifest& manifest,
              const trace::ThroughputTrace& trace, double speedup = 1.0,
              ChunkServerOptions options = {});
  ~ChunkServer();

  /// Port 0 picks an ephemeral port; a stopped server can be restarted on
  /// its previous port() (the chaos harness's kill/restart path).
  void start(std::uint16_t port = 0);
  void stop();

  /// Graceful shutdown; see ServerTransport::drain. Returns forced-close
  /// count.
  std::size_t drain(double deadline_s);
  bool draining() const { return transport_->draining(); }

  std::uint16_t port() const { return transport_->port(); }

  /// Attaches a fault injector that decides the fate of each segment
  /// request (latency spike, mid-body stall, truncation, reset, 5xx). Must
  /// be set before start(); the injector must outlive the server. Pass
  /// nullptr to serve faithfully (the default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Resets the shaper's trace clock to "now" (call right before the client
  /// starts streaming so client session time and trace time align).
  void reset_trace_clock() ABR_EXCLUDES(shaper_mutex_);

  /// Total requests served (observability for tests).
  std::size_t requests_served() const { return requests_served_.load(); }

  /// Connections shed by admission control.
  std::size_t shed_connections() const {
    return transport_->rejected_connections();
  }

  const ServerTransport& transport() const { return *transport_; }

  /// The serving core actually in use (after kDefault resolution).
  ServerEngine engine() const { return engine_; }

 private:
  void handle_connection(TcpStream& stream) ABR_EXCLUDES(shaper_mutex_);
  void reject_connection(TcpStream& stream);
  RoutedResponse route(const HttpRequest& request) const;

  // EpollServer::Handler (the sharded engine's request plane).
  EpollServer::Response on_request(const HttpRequest& request) override;
  EpollServer::Response on_bad_request() override;
  EpollServer::Response on_reject() override;
  void on_response_done(const EpollServer::Response& response,
                        EpollServer::Response::Kind kind, double wall_us,
                        EpollServer::Outcome outcome) override;

  /// Shared fill buffer of at least `size` bytes of `fill` (segment bodies
  /// are single-character runs, so one buffer per fill character serves
  /// every request size as a prefix slice).
  std::shared_ptr<const std::string> fill_buffer(char fill,
                                                 std::size_t size) const;

  /// Reconciles registry state with transport truth (shed connections whose
  /// handler never ran, the transport's peak) so drain()/stop() leave the
  /// final dump complete.
  void flush_metrics();
  double uptime_s() const;

  const media::VideoManifest* manifest_;
  std::string mpd_;
  TraceShaper shaper_ ABR_GUARDED_BY(shaper_mutex_);
  util::Mutex shaper_mutex_;
  double speedup_;
  ChunkServerOptions options_;
  FaultInjector* injector_ = nullptr;
  std::atomic<std::size_t> requests_served_{0};
  std::atomic<std::size_t> live_connections_{0};
  /// Shed connections already counted into shed_counter_ (reconciled against
  /// the transport's rejected_connections() by flush_metrics()).
  std::atomic<std::size_t> shed_handled_{0};
  std::chrono::steady_clock::time_point started_{};

  // Origin-side metrics (global registry; no-ops unless it is enabled).
  obs::Counter* requests_counter_;
  obs::Counter* bytes_counter_;
  obs::Gauge* connections_gauge_;
  obs::Gauge* peak_connections_gauge_;
  obs::Counter* shed_counter_;
  obs::Counter* drain_forced_counter_;
  obs::Counter* bad_request_malformed_;
  obs::Counter* bad_request_method_;
  obs::Counter* bad_request_not_found_;
  obs::Counter* bad_request_range_;  ///< 416s (unsatisfiable Range)
  obs::Counter* range_requests_;     ///< 206s served
  obs::Histogram* request_latency_;  ///< includes the shaped body send
  obs::Counter* telemetry_metrics_requests_;
  obs::Counter* telemetry_statusz_requests_;
  obs::Histogram* telemetry_scrape_latency_;
  obs::Counter* telemetry_deadline_counter_;

  mutable util::Mutex fill_mutex_;
  /// One lazily grown buffer per fill character ('A'..'Z').
  mutable std::shared_ptr<const std::string> fill_buffers_[26]
      ABR_GUARDED_BY(fill_mutex_);

  ServerEngine engine_ = ServerEngine::kSharded;
  std::unique_ptr<TcpServer> threaded_;
  std::unique_ptr<ShaperGate> gate_;
  std::unique_ptr<EpollServer> sharded_;
  ServerTransport* transport_ = nullptr;
};

/// Parses "/video/<level>/seg-<number>.m4s"; returns false on any other
/// shape. Exposed for tests.
bool parse_segment_path(std::string_view target, std::size_t& level,
                        std::size_t& number);

}  // namespace abr::net
