#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "media/manifest.hpp"
#include "net/http.hpp"
#include "net/shaper.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::net {

/// A small threaded TCP server: one accept loop, one thread per connection,
/// each running `session` until it returns (typically at client EOF).
///
/// The server retains ownership of every connection's stream so that stop()
/// can interrupt handlers blocked on a live peer: it shuts down each stream
/// (waking any blocked read), then joins every thread. Without this, a
/// keep-alive client that never closes would deadlock shutdown.
class TcpServer {
 public:
  /// Runs one connection; returns when done. The stream reference stays
  /// valid for the duration of the call.
  using SessionHandler = std::function<void(TcpStream&)>;

  explicit TcpServer(SessionHandler session);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1 on an ephemeral port and starts accepting.
  void start();
  void stop();

  std::uint16_t port() const { return port_; }

 private:
  struct Connection {
    TcpStream stream;
    std::thread thread;
  };

  void accept_loop();

  SessionHandler session_;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<bool> running_{false};
};

class FaultInjector;

/// A synthetic DASH origin: serves the MPD and fixed-size segment payloads
/// for a manifest, with every response body paced by a trace-driven shaper.
/// Together with HttpChunkSource this reproduces the paper's emulation
/// testbed (Section 7.2: node.js static server + tc shaping) in-process.
///
/// URL layout (matches the MPD's SegmentTemplate):
///   GET /manifest.mpd
///   GET /video/<representation-id>/seg-<number>.m4s
class ChunkServer {
 public:
  /// The manifest and trace must outlive the server.
  ChunkServer(const media::VideoManifest& manifest,
              const trace::ThroughputTrace& trace, double speedup = 1.0);
  ~ChunkServer();

  void start();
  void stop();
  std::uint16_t port() const { return server_.port(); }

  /// Attaches a fault injector that decides the fate of each segment
  /// request (latency spike, mid-body stall, truncation, reset, 5xx). Must
  /// be set before start(); the injector must outlive the server. Pass
  /// nullptr to serve faithfully (the default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Resets the shaper's trace clock to "now" (call right before the client
  /// starts streaming so client session time and trace time align).
  void reset_trace_clock();

  /// Total requests served (observability for tests).
  std::size_t requests_served() const { return requests_served_.load(); }

 private:
  void handle_connection(TcpStream& stream);
  HttpResponse route(const HttpRequest& request) const;

  const media::VideoManifest* manifest_;
  std::string mpd_;
  TraceShaper shaper_;
  std::mutex shaper_mutex_;
  double speedup_;
  FaultInjector* injector_ = nullptr;
  std::atomic<std::size_t> requests_served_{0};

  // Origin-side metrics (global registry; no-ops unless it is enabled).
  obs::Counter* requests_counter_;
  obs::Counter* bytes_counter_;
  obs::Gauge* connections_gauge_;
  obs::Histogram* request_latency_;  ///< includes the shaped body send

  TcpServer server_;
};

/// Parses "/video/<level>/seg-<number>.m4s"; returns false on any other
/// shape. Exposed for tests.
bool parse_segment_path(std::string_view target, std::size_t& level,
                        std::size_t& number);

}  // namespace abr::net
