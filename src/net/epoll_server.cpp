#include "net/epoll_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <queue>
#include <system_error>
#include <unordered_map>
#include <utility>

#include "net/shaper.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/strings.hpp"

namespace abr::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Body bytes requests may carry, mirroring HttpConnection's framing guard.
std::size_t content_length_of(const HttpHeaders& headers) {
  const std::string* value = headers.find("Content-Length");
  if (value == nullptr) return 0;
  std::size_t length = 0;
  if (!util::parse_size(*value, length) ||
      length > HttpConnection::kMaxBodyBytes) {
    throw std::invalid_argument("HTTP: bad Content-Length");
  }
  return length;
}

std::string_view first_line_of(std::string_view block) {
  std::size_t end = block.find('\n');
  if (end == std::string_view::npos) end = block.size();
  std::string_view line = block.substr(0, end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

}  // namespace

// --- ShaperGate ------------------------------------------------------------

ShaperGate::ShaperGate(const trace::ThroughputTrace& trace, double speedup)
    : trace_(&trace), speedup_(speedup), epoch_(Clock::now()) {
  assert(speedup > 0.0);
}

void ShaperGate::reset_epoch() {
  const util::MutexLock lock(mutex_);
  epoch_ = Clock::now();
  sent_kilobits_ = 0.0;
}

bool ShaperGate::acquire(std::uint64_t ticket) {
  const util::MutexLock lock(mutex_);
  if (holder_ == 0 || holder_ == ticket) {
    holder_ = ticket;
    return true;
  }
  waiters_.push_back(ticket);
  return false;
}

std::uint64_t ShaperGate::release() {
  const util::MutexLock lock(mutex_);
  holder_ = 0;
  if (waiters_.empty()) return 0;
  holder_ = waiters_.front();
  waiters_.pop_front();
  return holder_;
}

std::uint64_t ShaperGate::cancel(std::uint64_t ticket) {
  const util::MutexLock lock(mutex_);
  if (holder_ == ticket) {
    holder_ = 0;
    if (waiters_.empty()) return 0;
    holder_ = waiters_.front();
    waiters_.pop_front();
    return holder_;
  }
  const auto it = std::find(waiters_.begin(), waiters_.end(), ticket);
  if (it != waiters_.end()) waiters_.erase(it);
  return 0;
}

Clock::time_point ShaperGate::quantum_release(std::size_t bytes) {
  const util::MutexLock lock(mutex_);
  const double quantum_kilobits = static_cast<double>(bytes) * 8.0 / 1000.0;
  const double release_session_s =
      trace_->transfer_end_time(sent_kilobits_ + quantum_kilobits, 0.0);
  return epoch_ + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(release_session_s /
                                                    speedup_));
}

void ShaperGate::note_sent(std::size_t bytes) {
  const util::MutexLock lock(mutex_);
  sent_kilobits_ += static_cast<double>(bytes) * 8.0 / 1000.0;
}

// --- Shard -----------------------------------------------------------------

/// One reactor: a thread, an epoll instance, a timer heap, and a private
/// connection table. All connection state is owned by this thread; other
/// threads communicate exclusively through the message queue + eventfd.
class EpollServer::Shard {
 public:
  Shard(EpollServer* server, std::size_t index)
      : server_(server),
        index_(index),
        gauge_(&obs::MetricsRegistry::global().gauge(
            obs::kServerShardConnections, obs::shard_label(index))) {
    epoll_fd_ = FileDescriptor(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd_.valid()) {
      throw std::system_error(errno, std::generic_category(), "epoll_create1");
    }
    wake_fd_ = FileDescriptor(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!wake_fd_.valid()) {
      throw std::system_error(errno, std::generic_category(), "eventfd");
    }
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = 0;  // 0 = the wake eventfd; connection ids are nonzero
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &event) !=
        0) {
      throw std::system_error(errno, std::generic_category(), "epoll_ctl");
    }
  }

  void start() {
    thread_ = std::thread([this] { run(); });
  }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  void post_connection(TcpStream stream, std::uint64_t id, bool rejected)
      ABR_EXCLUDES(queue_mutex_) {
    {
      const util::MutexLock lock(queue_mutex_);
      Message message;
      message.kind = Message::Kind::kNewConnection;
      message.stream = std::move(stream);
      message.id = id;
      message.rejected = rejected;
      queue_.push_back(std::move(message));
    }
    wake();
  }

  void post_grant(std::uint64_t id) ABR_EXCLUDES(queue_mutex_) {
    {
      const util::MutexLock lock(queue_mutex_);
      Message message;
      message.kind = Message::Kind::kLinkGrant;
      message.id = id;
      queue_.push_back(std::move(message));
    }
    wake();
  }

  void post_stop(bool count_forced) ABR_EXCLUDES(queue_mutex_) {
    {
      const util::MutexLock lock(queue_mutex_);
      Message message;
      message.kind = Message::Kind::kStop;
      message.rejected = count_forced;
      queue_.push_back(std::move(message));
    }
    wake();
  }

  std::size_t table_size() const { return table_size_.load(); }

 private:
  struct Connection;

  struct Message {
    enum class Kind { kNewConnection, kLinkGrant, kStop } kind =
        Kind::kNewConnection;
    TcpStream stream;
    std::uint64_t id = 0;
    bool rejected = false;
  };

  enum class TimerKind { kDeadline, kResume };

  struct TimerEntry {
    Clock::time_point when;
    std::uint64_t id = 0;
    std::uint64_t generation = 0;
    TimerKind kind = TimerKind::kDeadline;
    bool operator>(const TimerEntry& other) const {
      return when > other.when;
    }
  };

  struct Connection {
    TcpStream stream;
    std::uint64_t id = 0;
    bool rejected = false;

    enum class State {
      kReadHeaders,   ///< accumulating up to the blank line
      kReadBody,      ///< consuming Content-Length bytes
      kDelay,         ///< first-byte fault delay before the head
      kAwaitLink,     ///< queued on the shaper gate
      kQuantumWait,   ///< holding the link, next quantum not yet released
      kStallSleep,    ///< mid-body fault stall (link released)
      kWriteHead,     ///< flushing the pre-serialized head
      kWriteBody,     ///< flushing body bytes (shaped: current quantum)
    } state = State::kReadHeaders;

    std::string in;          ///< unparsed input
    std::size_t scan = 0;    ///< resume point of the "\r\n\r\n" search
    HttpRequest request;
    std::size_t body_remaining = 0;

    bool responding = false;
    Response response;
    Response::Kind response_kind = Response::Kind::kRequest;
    std::string_view body;   ///< response body view (post-truncation)
    std::size_t head_sent = 0;
    std::size_t body_sent = 0;
    std::size_t stall_at = std::string_view::npos;
    bool stalled = false;    ///< the one mid-body stall already happened
    bool shutdown_after = false;  ///< truncating fault: hard cut at the end
    bool holds_link = false;
    std::size_t quantum_left = 0;

    bool want_out = false;   ///< EPOLLOUT currently requested
    bool read_ready = false; ///< input arrived while mid-response
    bool peer_eof = false;

    Clock::time_point deadline{};
    int deadline_window_ms = 0;  ///< 0 = disarmed
    std::uint64_t generation = 0;
    Clock::time_point request_start{};
  };

  void wake() {
    const std::uint64_t one = 1;
    (void)!::write(wake_fd_.get(), &one, sizeof(one));
  }

  void run() {
    std::vector<epoll_event> events(64);
    while (!stopping_) {
      int timeout_ms = -1;
      if (!timers_.empty()) {
        const auto now = Clock::now();
        const auto until = timers_.top().when - now;
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(until)
                .count();
        timeout_ms = static_cast<int>(std::clamp<long long>(ms, 0, 1000));
      }
      const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                                 static_cast<int>(events.size()), timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll instance gone: shutting down
      }
      for (int i = 0; i < n && !stopping_; ++i) {
        if (events[i].data.u64 == 0) {
          drain_wake();
          process_messages();
          continue;
        }
        handle_event(events[i].data.u64, events[i].events);
      }
      if (stopping_) break;
      process_timers();
    }
    close_all();
  }

  void drain_wake() {
    std::uint64_t value = 0;
    (void)!::read(wake_fd_.get(), &value, sizeof(value));
  }

  void process_messages() ABR_EXCLUDES(queue_mutex_) {
    std::vector<Message> pending;
    {
      const util::MutexLock lock(queue_mutex_);
      pending.swap(queue_);
    }
    for (Message& message : pending) {
      switch (message.kind) {
        case Message::Kind::kNewConnection:
          add_connection(std::move(message.stream), message.id,
                         message.rejected);
          break;
        case Message::Kind::kLinkGrant: {
          Connection* connection = find(message.id);
          if (connection == nullptr) {
            // Died while queued: pass the link on so it cannot get stuck.
            server_->forward_grant(server_->gate_->release());
            break;
          }
          connection->holds_link = true;
          if (connection->state == Connection::State::kAwaitLink) {
            pump_shaped(*connection);
          }
          break;
        }
        case Message::Kind::kStop:
          stopping_ = true;
          count_forced_ = message.rejected;
          break;
      }
    }
  }

  void add_connection(TcpStream stream, std::uint64_t id, bool rejected) {
    auto connection = std::make_unique<Connection>();
    connection->stream = std::move(stream);
    connection->id = id;
    connection->rejected = rejected;
    connection->deadline_window_ms = rejected
                                         ? server_->options_.reject_timeout_ms
                                         : server_->options_.idle_timeout_ms;
    Connection* raw = connection.get();
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    event.data.u64 = id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw->stream.fd(),
                    &event) != 0) {
      server_->live_.fetch_sub(1);
      return;  // fd already dead; the unique_ptr closes it
    }
    table_.emplace(id, std::move(connection));
    table_size_.store(table_.size());
    gauge_->set(static_cast<double>(table_.size()));
    arm_deadline(*raw);
    handle_readable(*raw);  // data may predate the epoll registration
  }

  Connection* find(std::uint64_t id) {
    const auto it = table_.find(id);
    return it == table_.end() ? nullptr : it->second.get();
  }

  /// Removes the connection: releases any link claim, unregisters the fd,
  /// shuts the stream down so the peer sees EOF promptly.
  void close_connection(Connection& connection) {
    if (server_->gate_ != nullptr &&
        (connection.holds_link ||
         connection.state == Connection::State::kAwaitLink)) {
      server_->forward_grant(server_->gate_->cancel(connection.id));
    }
    ++connection.generation;  // invalidate queued timers
    (void)::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, connection.stream.fd(),
                      nullptr);
    connection.stream.shutdown_both();
    table_.erase(connection.id);
    table_size_.store(table_.size());
    gauge_->set(static_cast<double>(table_.size()));
    server_->live_.fetch_sub(1);
  }

  void close_all() {
    for (auto& [id, connection] : table_) {
      if (count_forced_) server_->forced_closes_.fetch_add(1);
      connection->stream.shutdown_both();
      server_->live_.fetch_sub(1);
    }
    table_.clear();
    table_size_.store(0);
    gauge_->set(0.0);
  }

  // --- timers --------------------------------------------------------------

  void arm_deadline(Connection& connection) {
    if (connection.deadline_window_ms <= 0) return;
    connection.deadline =
        Clock::now() + std::chrono::milliseconds(connection.deadline_window_ms);
    timers_.push(TimerEntry{connection.deadline, connection.id,
                            ++connection.generation, TimerKind::kDeadline});
  }

  /// Pushes the deadline out after I/O progress (no new heap entry; the
  /// queued one re-checks against the field when it pops).
  void touch_deadline(Connection& connection) {
    if (connection.deadline_window_ms <= 0) return;
    connection.deadline =
        Clock::now() + std::chrono::milliseconds(connection.deadline_window_ms);
  }

  void schedule_resume(Connection& connection, Clock::time_point when) {
    timers_.push(TimerEntry{when, connection.id, ++connection.generation,
                            TimerKind::kResume});
  }

  void process_timers() {
    const auto now = Clock::now();
    while (!timers_.empty() && timers_.top().when <= now) {
      const TimerEntry entry = timers_.top();
      timers_.pop();
      Connection* connection = find(entry.id);
      if (connection == nullptr || connection->generation != entry.generation) {
        continue;  // stale: connection gone or state moved on
      }
      if (entry.kind == TimerKind::kDeadline) {
        if (connection->deadline > now) {
          // Progress since the entry was queued: re-arm at the new instant.
          timers_.push(TimerEntry{connection->deadline, entry.id,
                                  entry.generation, TimerKind::kDeadline});
          continue;
        }
        on_deadline(*connection);
      } else {
        on_resume(*connection);
      }
    }
  }

  void on_deadline(Connection& connection) {
    switch (connection.state) {
      case Connection::State::kReadHeaders:
      case Connection::State::kReadBody:
        if (connection.rejected) {
          // The threaded engine sheds even a peer that stalls mid-request:
          // the deadline just ends the wait and the terse 503 goes out.
          respond_reject(connection);
          return;
        }
        close_connection(connection);  // slowloris: cut without a response
        return;
      case Connection::State::kWriteHead:
      case Connection::State::kWriteBody: {
        const EpollServer::Outcome outcome =
            connection.response.telemetry ? Outcome::kWriteDeadline
                                          : Outcome::kPeerGone;
        finish_report(connection, outcome);
        close_connection(connection);
        return;
      }
      default:
        return;  // waits are governed by resume timers, not deadlines
    }
  }

  void on_resume(Connection& connection) {
    switch (connection.state) {
      case Connection::State::kDelay:
        start_writing(connection);
        return;
      case Connection::State::kQuantumWait:
        connection.state = Connection::State::kWriteBody;
        pump_shaped(connection);
        return;
      case Connection::State::kStallSleep:
        // Re-acquire the link; the stall released it (like the threaded
        // engine dropping the shaper mutex while it sleeps).
        if (server_->gate_ == nullptr ||
            server_->gate_->acquire(connection.id)) {
          connection.holds_link = true;
          connection.state = Connection::State::kWriteBody;
          pump_shaped(connection);
        } else {
          connection.state = Connection::State::kAwaitLink;
        }
        return;
      default:
        return;
    }
  }

  // --- event dispatch ------------------------------------------------------

  void handle_event(std::uint64_t id, std::uint32_t events) {
    Connection* connection = find(id);
    if (connection == nullptr) return;
    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      if (connection->responding) {
        finish_report(*connection, Outcome::kPeerGone);
      }
      close_connection(*connection);
      return;
    }
    if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
      if (connection->state == Connection::State::kReadHeaders ||
          connection->state == Connection::State::kReadBody) {
        handle_readable(*connection);
      } else {
        // Mid-response: note it and keep not reading — the kernel buffer
        // backpressures a pipelining flood exactly like the threaded
        // engine, which only reads between responses.
        connection->read_ready = true;
        if ((events & EPOLLRDHUP) != 0) connection->peer_eof = true;
      }
    }
    connection = find(id);  // the read path may have closed it
    if (connection == nullptr) return;
    if ((events & EPOLLOUT) != 0) {
      if (connection->state == Connection::State::kWriteHead ||
          connection->state == Connection::State::kWriteBody) {
        if (connection->response.shaped && connection->head_sent >=
                                               connection->response.head.size()) {
          pump_shaped(*connection);
        } else {
          pump_plain(*connection);
        }
      }
    }
  }

  // --- read path -----------------------------------------------------------

  void handle_readable(Connection& connection) {
    char buffer[8192];
    while (connection.state == Connection::State::kReadHeaders ||
           connection.state == Connection::State::kReadBody) {
      if (try_parse(connection)) continue;
      if (connection.state != Connection::State::kReadHeaders &&
          connection.state != Connection::State::kReadBody) {
        return;
      }
      const ssize_t n =
          ::recv(connection.stream.fd(), buffer, sizeof(buffer), 0);
      if (n > 0) {
        connection.in.append(buffer, static_cast<std::size_t>(n));
        touch_deadline(connection);
        continue;
      }
      if (n == 0) {
        on_read_eof(connection);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_connection(connection);
      return;
    }
  }

  void on_read_eof(Connection& connection) {
    connection.peer_eof = true;
    if (connection.rejected) {
      // The threaded reject path consumes the request best-effort and
      // answers 503 whatever happened, EOF included.
      respond_reject(connection);
      return;
    }
    if (connection.state == Connection::State::kReadHeaders &&
        connection.in.empty()) {
      close_connection(connection);  // clean EOF between requests
      return;
    }
    respond_bad_request(connection);  // closed mid-message: the terse 400
  }

  /// Advances the parser over `in`. Returns true when it made progress and
  /// the caller should loop (more may be parseable without new input).
  bool try_parse(Connection& connection) {
    if (connection.state == Connection::State::kReadBody) {
      const std::size_t take =
          std::min(connection.body_remaining, connection.in.size());
      if (take > 0) {
        connection.request.body.append(connection.in, 0, take);
        connection.in.erase(0, take);
        connection.body_remaining -= take;
      }
      if (connection.body_remaining > 0) return false;
      dispatch_request(connection);
      return false;
    }

    // Find the header/body boundary, resuming where the last scan left off
    // (the "\r\n\r\n" may straddle reads).
    const std::size_t from = connection.scan > 3 ? connection.scan - 3 : 0;
    const std::size_t boundary = connection.in.find("\r\n\r\n", from);
    if (boundary == std::string::npos) {
      connection.scan = connection.in.size();
      if (connection.in.size() > HttpConnection::kMaxHeaderBytes) {
        respond_bad_request(connection);
      }
      return false;
    }
    if (boundary > HttpConnection::kMaxHeaderBytes) {
      respond_bad_request(connection);
      return false;
    }
    const std::string block = connection.in.substr(0, boundary);
    connection.in.erase(0, boundary + 4);
    connection.scan = 0;

    const std::string_view line = first_line_of(block);
    if (line.size() > HttpConnection::kMaxRequestLineBytes) {
      respond_bad_request(connection);
      return false;
    }
    connection.request = HttpRequest{};
    if (!parse_request_line(line, connection.request)) {
      respond_bad_request(connection);
      return false;
    }
    std::size_t body_length = 0;
    try {
      connection.request.headers = parse_header_block(block, /*skip_lines=*/1);
      body_length = content_length_of(connection.request.headers);
    } catch (const std::invalid_argument&) {
      respond_bad_request(connection);
      return false;
    }
    if (body_length > 0) {
      connection.body_remaining = body_length;
      connection.request.body.reserve(body_length);
      connection.state = Connection::State::kReadBody;
      return true;  // body bytes may already be buffered
    }
    dispatch_request(connection);
    return false;
  }

  // --- response planning ---------------------------------------------------

  void dispatch_request(Connection& connection) {
    if (connection.rejected) {
      respond_reject(connection);
      return;
    }
    connection.request_start = Clock::now();
    deliver(connection, server_->handler_->on_request(connection.request),
            Response::Kind::kRequest);
  }

  void respond_bad_request(Connection& connection) {
    if (connection.rejected) {
      respond_reject(connection);
      return;
    }
    connection.request_start = Clock::now();
    deliver(connection, server_->handler_->on_bad_request(),
            Response::Kind::kBadRequest);
  }

  void respond_reject(Connection& connection) {
    connection.request_start = Clock::now();
    deliver(connection, server_->handler_->on_reject(),
            Response::Kind::kReject);
  }

  void deliver(Connection& connection, Response response,
               Response::Kind kind) {
    ++connection.generation;  // cancel any read-phase timer
    connection.responding = true;
    connection.response = std::move(response);
    connection.response_kind = kind;
    if (kind != Response::Kind::kRequest) {
      connection.response.close_after = true;
      connection.response.shaped = false;
    }
    if (connection.response.reset) {
      finish_report(connection, Outcome::kComplete);
      close_connection(connection);
      return;
    }

    connection.body = connection.response.body();
    if (connection.response.truncate_after_fraction >= 0.0) {
      const auto cut = static_cast<std::size_t>(
          static_cast<double>(connection.body.size()) *
          connection.response.truncate_after_fraction);
      connection.body = connection.body.substr(0, cut);
      connection.shutdown_after = true;
    }
    connection.stall_at = std::string_view::npos;
    if (connection.response.stall_after_fraction >= 0.0) {
      connection.stall_at = static_cast<std::size_t>(
          static_cast<double>(connection.body.size()) *
          connection.response.stall_after_fraction);
    }
    connection.head_sent = 0;
    connection.body_sent = 0;
    connection.stalled = false;
    connection.quantum_left = 0;
    connection.deadline_window_ms =
        connection.response.write_deadline_ms > 0
            ? connection.response.write_deadline_ms
            : (connection.rejected ? server_->options_.reject_timeout_ms
                                   : server_->options_.idle_timeout_ms);

    if (connection.response.first_byte_delay_s > 0.0) {
      connection.state = Connection::State::kDelay;
      schedule_resume(
          connection,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 connection.response.first_byte_delay_s)));
      return;
    }
    start_writing(connection);
  }

  void start_writing(Connection& connection) {
    connection.state = Connection::State::kWriteHead;
    arm_deadline(connection);
    if (connection.response.shaped && !connection.body.empty()) {
      pump_head_then_shaped(connection);
    } else {
      pump_plain(connection);
    }
  }

  // --- write path ----------------------------------------------------------

  /// Writes head + body with writev (zero-copy: the body iovec points into
  /// the shared buffer). Used for unshaped responses and empty bodies.
  void pump_plain(Connection& connection) {
    const std::string& head = connection.response.head;
    while (true) {
      iovec iov[2];
      int iovcnt = 0;
      if (connection.head_sent < head.size()) {
        iov[iovcnt].iov_base =
            const_cast<char*>(head.data() + connection.head_sent);
        iov[iovcnt].iov_len = head.size() - connection.head_sent;
        ++iovcnt;
      }
      std::size_t body_span = 0;
      if (connection.body_sent < connection.body.size()) {
        body_span = connection.body.size() - connection.body_sent;
        iov[iovcnt].iov_base = const_cast<char*>(connection.body.data() +
                                                 connection.body_sent);
        iov[iovcnt].iov_len = body_span;
        ++iovcnt;
      }
      if (iovcnt == 0) {
        finish_response(connection);
        return;
      }
      const ssize_t n = ::writev(connection.stream.fd(), iov, iovcnt);
      if (n > 0) {
        advance_sent(connection, static_cast<std::size_t>(n));
        touch_deadline(connection);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        connection.state = connection.head_sent < head.size()
                               ? Connection::State::kWriteHead
                               : Connection::State::kWriteBody;
        want_writable(connection);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      finish_report(connection, Outcome::kPeerGone);
      close_connection(connection);
      return;
    }
  }

  void advance_sent(Connection& connection, std::size_t n) {
    const std::string& head = connection.response.head;
    if (connection.head_sent < head.size()) {
      const std::size_t take = std::min(n, head.size() - connection.head_sent);
      connection.head_sent += take;
      n -= take;
    }
    connection.body_sent += n;
  }

  /// Flushes the (unshaped) head, then enters the paced body path.
  void pump_head_then_shaped(Connection& connection) {
    const std::string& head = connection.response.head;
    while (connection.head_sent < head.size()) {
      const ssize_t n = ::send(connection.stream.fd(),
                               head.data() + connection.head_sent,
                               head.size() - connection.head_sent,
                               MSG_NOSIGNAL);
      if (n > 0) {
        connection.head_sent += static_cast<std::size_t>(n);
        touch_deadline(connection);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        connection.state = Connection::State::kWriteHead;
        want_writable(connection);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      finish_report(connection, Outcome::kPeerGone);
      close_connection(connection);
      return;
    }
    connection.state = Connection::State::kWriteBody;
    if (server_->gate_ == nullptr) {
      pump_plain(connection);
      return;
    }
    if (connection.holds_link || server_->gate_->acquire(connection.id)) {
      connection.holds_link = true;
      pump_shaped(connection);
    } else {
      connection.state = Connection::State::kAwaitLink;
      ++connection.generation;
    }
  }

  /// Paced body writes while holding the link: each TraceShaper-sized
  /// quantum is released by the gate's trace allowance; release instants in
  /// the future become resume timers instead of sleeps.
  void pump_shaped(Connection& connection) {
    ShaperGate* gate = server_->gate_;
    while (true) {
      if (connection.body_sent >= connection.body.size()) {
        finish_response(connection);
        return;
      }
      if (connection.stall_at != std::string_view::npos &&
          connection.body_sent >= connection.stall_at && !connection.stalled) {
        // Mid-body stall: hand the link back for the duration (the
        // threaded engine drops the shaper mutex while it sleeps).
        connection.stalled = true;
        connection.holds_link = false;
        connection.quantum_left = 0;
        server_->forward_grant(gate->release());
        connection.state = Connection::State::kStallSleep;
        schedule_resume(connection,
                        Clock::now() +
                            std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(
                                    connection.response.stall_wall_s)));
        return;
      }
      if (connection.quantum_left == 0) {
        // The stall point is a quantum boundary, like the threaded split
        // into two separate shaper sends.
        std::size_t limit = connection.body.size();
        if (!connection.stalled &&
            connection.stall_at != std::string_view::npos) {
          limit = std::min(limit, connection.stall_at);
        }
        const std::size_t quantum = std::min(TraceShaper::kQuantumBytes,
                                             limit - connection.body_sent);
        const Clock::time_point release = gate->quantum_release(quantum);
        if (release > Clock::now()) {
          connection.state = Connection::State::kQuantumWait;
          schedule_resume(connection, release);
          return;
        }
        gate->note_sent(quantum);
        connection.quantum_left = quantum;
      }
      const ssize_t n =
          ::send(connection.stream.fd(),
                 connection.body.data() + connection.body_sent,
                 connection.quantum_left, MSG_NOSIGNAL);
      if (n > 0) {
        connection.body_sent += static_cast<std::size_t>(n);
        connection.quantum_left -= static_cast<std::size_t>(n);
        touch_deadline(connection);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        connection.state = Connection::State::kWriteBody;
        want_writable(connection);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      finish_report(connection, Outcome::kPeerGone);
      close_connection(connection);
      return;
    }
  }

  void want_writable(Connection& connection) {
    if (connection.want_out) return;
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLOUT | EPOLLET;
    event.data.u64 = connection.id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, connection.stream.fd(),
                    &event) == 0) {
      connection.want_out = true;
    }
  }

  void drop_writable(Connection& connection) {
    if (!connection.want_out) return;
    epoll_event event{};
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    event.data.u64 = connection.id;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, connection.stream.fd(),
                    &event) == 0) {
      connection.want_out = false;
    }
  }

  // --- response completion -------------------------------------------------

  void finish_report(Connection& connection, Outcome outcome) {
    if (!connection.responding) return;
    connection.responding = false;
    const double wall_us =
        connection.request_start == Clock::time_point{}
            ? 0.0
            : std::chrono::duration<double, std::micro>(
                  Clock::now() - connection.request_start)
                  .count();
    server_->handler_->on_response_done(connection.response,
                                        connection.response_kind, wall_us,
                                        outcome);
  }

  void finish_response(Connection& connection) {
    if (connection.holds_link) {
      connection.holds_link = false;
      server_->forward_grant(server_->gate_->release());
    }
    finish_report(connection, Outcome::kComplete);
    if (connection.shutdown_after || connection.response.close_after) {
      close_connection(connection);
      return;
    }
    // Keep-alive: back to reading; pipelined bytes (buffered here or in the
    // kernel while we were responding) are picked up immediately.
    ++connection.generation;
    connection.state = Connection::State::kReadHeaders;
    connection.scan = 0;
    connection.deadline_window_ms = server_->options_.idle_timeout_ms;
    arm_deadline(connection);
    drop_writable(connection);
    connection.read_ready = false;
    handle_readable(connection);
  }

  EpollServer* server_;
  std::size_t index_;
  obs::Gauge* gauge_;
  FileDescriptor epoll_fd_;
  FileDescriptor wake_fd_;
  std::thread thread_;
  bool stopping_ = false;     ///< reactor-thread only
  bool count_forced_ = false; ///< reactor-thread only
  util::Mutex queue_mutex_;
  std::vector<Message> queue_ ABR_GUARDED_BY(queue_mutex_);
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> table_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  std::atomic<std::size_t> table_size_{0};
};

// --- EpollServer -----------------------------------------------------------

EpollServer::EpollServer(Handler* handler, EpollServerOptions options)
    : handler_(handler), options_(std::move(options)) {
  assert(handler_ != nullptr);
  if (options_.shards == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    options_.shards = std::clamp<unsigned>(hardware / 2, 1, 4);
  }
}

EpollServer::~EpollServer() { stop(); }

void EpollServer::start(std::uint16_t port) {
  assert(!running_.load());
  listener_ = TcpListener::bind_loopback(port);
  port_ = listener_.port();
  draining_.store(false);
  shards_.clear();
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(this, i));
  }
  running_.store(true);
  for (auto& shard : shards_) shard->start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void EpollServer::accept_loop() {
  std::size_t next_shard = 0;
  while (running_.load()) {
    TcpStream stream;
    try {
      stream = listener_.accept();
    } catch (const std::system_error&) {
      if (!running_.load()) break;  // listener closed: orderly shutdown
      // EMFILE/ENFILE/ECONNABORTED: back off briefly and keep accepting —
      // in-flight connections finishing will release descriptors.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (!running_.load()) break;
    const bool reject = options_.max_connections != 0 &&
                        live_.load() >= options_.max_connections;
    if (reject) rejected_.fetch_add(1);
    try {
      stream.set_no_delay(true);
      stream.set_nonblocking(true);
    } catch (const std::system_error&) {
      continue;  // peer vanished between accept and setup
    }
    live_.fetch_add(1);
    const std::uint64_t id =
        ((static_cast<std::uint64_t>(next_shard) + 1) << 32) | ++next_serial_;
    shards_[next_shard]->post_connection(std::move(stream), id, reject);
    next_shard = (next_shard + 1) % shards_.size();
    if (!reject) {
      std::size_t current = live_.load();
      std::size_t previous = peak_.load();
      while (current > previous &&
             !peak_.compare_exchange_weak(previous, current)) {
      }
    }
  }
}

void EpollServer::forward_grant(std::uint64_t ticket) {
  if (ticket == 0) return;
  const std::size_t shard = static_cast<std::size_t>(ticket >> 32) - 1;
  if (shard < shards_.size()) shards_[shard]->post_grant(ticket);
}

void EpollServer::join_shards() {
  for (auto& shard : shards_) shard->join();
  shards_.clear();
}

void EpollServer::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& shard : shards_) shard->post_stop(/*count_forced=*/false);
  join_shards();
}

std::size_t EpollServer::drain(double deadline_s) {
  if (!running_.exchange(false)) return 0;
  draining_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Let in-flight connections finish on their own: responses planned from
  // here on carry Connection: close (the handler consults draining()), so
  // keep-alive sessions end at the next request boundary.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(deadline_s));
  while (Clock::now() < deadline) {
    if (live_.load() == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  forced_closes_.store(0);
  for (auto& shard : shards_) shard->post_stop(/*count_forced=*/true);
  join_shards();
  return forced_closes_.load();
}

std::size_t EpollServer::tracked_connections() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->table_size();
  return total;
}

}  // namespace abr::net
