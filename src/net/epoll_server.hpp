#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http.hpp"
#include "net/server_transport.hpp"
#include "net/socket.hpp"
#include "trace/throughput_trace.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::net {

/// Cross-shard pacing gate for shaped response bodies.
///
/// The threaded engine serializes every shaped body send under one shaper
/// mutex, so bodies go out one at a time, each paced against the trace's
/// cumulative byte allowance (TraceShaper::send). This class reproduces
/// that discipline for the reactor shards without ever blocking a reactor
/// thread: a connection acquires the link (FIFO — queued tickets are served
/// in order), asks when its next quantum may be written, and the shard
/// schedules a timer instead of sleeping. The quantum size and the
/// allowance arithmetic are TraceShaper's, byte for byte.
class ShaperGate {
 public:
  /// The trace must outlive the gate. The epoch (session time 0) is the
  /// moment of construction; reset_epoch() restarts it.
  ShaperGate(const trace::ThroughputTrace& trace, double speedup);

  void reset_epoch() ABR_EXCLUDES(mutex_);

  /// Claims the link for `ticket` (an opaque nonzero connection id).
  /// Returns true when the link was free; otherwise the ticket is queued
  /// and a later release() will hand the link over.
  bool acquire(std::uint64_t ticket) ABR_EXCLUDES(mutex_);

  /// Removes a queued (or holding) ticket whose connection died. Returns
  /// the next ticket to grant when the holder vanished, 0 otherwise.
  std::uint64_t cancel(std::uint64_t ticket) ABR_EXCLUDES(mutex_);

  /// Releases the link and pops the next queued ticket (0 when none). The
  /// caller must forward the grant to the ticket's shard.
  std::uint64_t release() ABR_EXCLUDES(mutex_);

  /// Wall-clock instant at which the current holder may write its next
  /// `bytes`-sized quantum, per the trace's cumulative allowance.
  std::chrono::steady_clock::time_point quantum_release(std::size_t bytes)
      ABR_EXCLUDES(mutex_);

  /// Charges `bytes` against the allowance (call once per written quantum).
  void note_sent(std::size_t bytes) ABR_EXCLUDES(mutex_);

 private:
  const trace::ThroughputTrace* trace_;
  double speedup_;
  mutable util::Mutex mutex_;
  std::chrono::steady_clock::time_point epoch_ ABR_GUARDED_BY(mutex_);
  double sent_kilobits_ ABR_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t holder_ ABR_GUARDED_BY(mutex_) = 0;
  std::deque<std::uint64_t> waiters_ ABR_GUARDED_BY(mutex_);
};

/// Sharded epoll server: one accept thread pins connections to N reactor
/// shards round-robin; each shard owns one epoll instance, one timer heap,
/// and a private connection table (no global connection lock on the serving
/// path). Sockets are nonblocking and edge-triggered; request parsing is an
/// incremental state machine with the same limits and error behaviour as
/// the blocking HttpConnection (8 KB request line, 64 KB header block,
/// slowloris idle deadlines), and response bodies are written zero-copy
/// from shared immutable buffers via writev.
///
/// The server is protocol-agnostic above the request boundary: a Handler
/// turns each parsed request into a fully planned Response (pre-serialized
/// head, body slice, pacing/fault directives), so the DASH routing logic
/// lives in ChunkServer and is engine-independent.
class EpollServer final : public ServerTransport {
 public:
  /// A fully planned response. The head is pre-serialized (status line,
  /// headers, Content-Length, blank line); the body is either an owned
  /// string or a shared immutable buffer slice (zero-copy: one buffer can
  /// back any number of in-flight responses).
  struct Response {
    /// Which handler planned this response — on_response_done uses it to
    /// decide what to account (e.g. request latency only for kRequest).
    enum class Kind { kRequest, kBadRequest, kReject };

    std::string head;
    std::string body_inline;
    std::shared_ptr<const std::string> body_shared;
    std::size_t body_offset = 0;
    std::size_t body_length = 0;  ///< length of the shared slice

    /// Pace the body through the shaper gate (the emulated access link).
    bool shaped = false;
    /// Telemetry-plane response: written under write_deadline_ms, and a
    /// deadline trip is reported via Handler::on_response_done.
    bool telemetry = false;
    /// Close the connection after the response is written (drain, 503,
    /// 400); the write side is shut down first so the peer sees EOF.
    bool close_after = false;
    /// Drop the connection without writing anything (fault kReset).
    bool reset = false;
    /// First-byte delay in wall seconds (fault kLatencySpike).
    double first_byte_delay_s = 0.0;
    /// When >= 0: stall for stall_wall_s after this fraction of the body
    /// (fault kStall). The link is released while stalled.
    double stall_after_fraction = -1.0;
    double stall_wall_s = 0.0;
    /// When >= 0: shut the connection down after this fraction of the body
    /// (fault kPartialBody; the head still promises full Content-Length).
    double truncate_after_fraction = -1.0;
    /// Per-write-progress deadline for this response; 0 uses the
    /// transport-wide idle deadline.
    int write_deadline_ms = 0;

    std::string_view body() const {
      return body_shared != nullptr
                 ? std::string_view(*body_shared)
                       .substr(body_offset, body_length)
                 : std::string_view(body_inline);
    }
  };

  /// How a response delivery ended (Handler::on_response_done).
  enum class Outcome {
    kComplete,       ///< body fully written (or deliberately truncated)
    kWriteDeadline,  ///< peer stalled past the response's write deadline
    kPeerGone,       ///< connection died mid-response
  };

  /// Request-plane callbacks, invoked on reactor threads (must be
  /// thread-safe). All four must be set.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// A complete request was parsed; plan its response.
    virtual Response on_request(const HttpRequest& request) = 0;
    /// The request was malformed (bad framing, oversized line/headers, EOF
    /// mid-message); plan the terse 400. The connection closes after it.
    virtual Response on_bad_request() = 0;
    /// The connection was refused by the admission cap and its (best
    /// effort) request has been consumed; plan the terse 503.
    virtual Response on_reject() = 0;
    /// A response finished; wall_us covers parse-complete to last byte.
    virtual void on_response_done(const Response& response,
                                  Response::Kind kind, double wall_us,
                                  Outcome outcome) = 0;
  };

  struct EpollServerOptions {
    /// Reactor shard count; 0 picks a small default from the host.
    std::size_t shards = 0;
    /// Admission cap on live connections; 0 = unlimited.
    std::size_t max_connections = 0;
    /// Per-progress socket deadline (slowloris guard), milliseconds.
    int idle_timeout_ms = 120000;
    /// Read deadline for admission-rejected connections, milliseconds (the
    /// 503 goes out even when the deadline fires mid-request).
    int reject_timeout_ms = 2000;
  };

  /// The handler and gate (optional) must outlive the server.
  EpollServer(Handler* handler, EpollServerOptions options);
  ~EpollServer() override;

  /// Attaches the pacing gate for shaped bodies. Must be set before
  /// start() when any Response uses shaped=true.
  void set_shaper_gate(ShaperGate* gate) { gate_ = gate; }

  void start(std::uint16_t port = 0) override;
  void stop() override;
  std::size_t drain(double deadline_s) override;
  bool draining() const override { return draining_.load(); }

  std::uint16_t port() const override { return port_; }
  std::size_t active_connections() const override { return live_.load(); }
  std::size_t peak_connections() const override { return peak_.load(); }
  std::size_t rejected_connections() const override {
    return rejected_.load();
  }
  std::size_t tracked_connections() const override;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  class Shard;

  void accept_loop();
  void join_shards();
  /// Hands a released/cancelled link grant to the ticket's shard (no-op for
  /// ticket 0).
  void forward_grant(std::uint64_t ticket);

  Handler* handler_;
  EpollServerOptions options_;
  ShaperGate* gate_ = nullptr;
  TcpListener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> live_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::size_t> rejected_{0};
  std::atomic<std::size_t> forced_closes_{0};
  std::uint64_t next_serial_ = 0;  ///< accept-thread only
};

}  // namespace abr::net
