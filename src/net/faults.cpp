#include "net/faults.hpp"

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::net {

FaultInjector::FaultInjector(testing::FaultPlan plan) : plan_(plan) {
  plan_.validate();
}

testing::FaultDecision FaultInjector::next(std::size_t chunk) {
  std::size_t attempt = 0;
  {
    const util::MutexLock lock(mutex_);
    attempt = attempts_[chunk]++;
  }
  const testing::FaultDecision decision = plan_.decide(chunk, attempt);
  if (decision.kind != testing::FaultKind::kNone) {
    injected_.fetch_add(1);
    obs::MetricsRegistry::global()
        .counter(obs::kFaultsInjectedTotal,
                 obs::fault_kind_label(testing::fault_kind_name(decision.kind)))
        .increment();
  }
  return decision;
}

}  // namespace abr::net
