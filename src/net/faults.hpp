#pragma once

#include <atomic>
#include <cstddef>
#include <map>

#include "testing/fault_plan.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::net {

/// Thread-safe, server-side realization of a FaultPlan: ChunkServer asks it
/// what to do with each incoming segment request, and it answers with the
/// plan's deterministic decision for (chunk, attempt).
///
/// Attempt numbers are counted per chunk across all connections, which
/// matches the client's sequential retry loop: the first request for chunk k
/// is attempt 0, the client's first retry is attempt 1, and so on — the same
/// numbering FaultySource uses in virtual time, so a plan behaves the same
/// on both paths. Injected faults are counted per kind in the global
/// metrics registry.
class FaultInjector {
 public:
  /// The plan is validate()d.
  explicit FaultInjector(testing::FaultPlan plan);

  /// Decision for the next request targeting `chunk` (advances that chunk's
  /// attempt counter).
  testing::FaultDecision next(std::size_t chunk) ABR_EXCLUDES(mutex_);

  const testing::FaultPlan& plan() const { return plan_; }

  /// Total non-kNone decisions handed out.
  std::size_t injected() const { return injected_.load(); }

 private:
  testing::FaultPlan plan_;
  util::Mutex mutex_;
  std::map<std::size_t, std::size_t> attempts_ ABR_GUARDED_BY(mutex_);
  std::atomic<std::size_t> injected_{0};
};

}  // namespace abr::net
