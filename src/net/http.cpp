#include "net/http.hpp"

#include <algorithm>
#include <stdexcept>
#include <system_error>

#include "util/strings.hpp"

namespace abr::net {

const std::string* HttpHeaders::find(std::string_view name) const {
  for (const auto& [key, value] : entries) {
    if (util::iequals(key, name)) return &value;
  }
  return nullptr;
}

void HttpHeaders::set(std::string name, std::string value) {
  for (auto& [key, existing] : entries) {
    if (util::iequals(key, name)) {
      existing = std::move(value);
      return;
    }
  }
  entries.emplace_back(std::move(name), std::move(value));
}

bool parse_request_line(std::string_view line, HttpRequest& out) {
  const auto parts = util::split(line, ' ');
  if (parts.size() != 3) return false;
  if (!util::starts_with(parts[2], "HTTP/1.")) return false;
  if (parts[0].empty() || parts[1].empty() || parts[1][0] != '/') return false;
  out.method = std::string(parts[0]);
  out.target = std::string(parts[1]);
  return true;
}

bool parse_status_line(std::string_view line, HttpResponse& out) {
  // "HTTP/1.1 200 OK" — the reason phrase may contain spaces or be absent.
  if (!util::starts_with(line, "HTTP/1.")) return false;
  const std::size_t first_space = line.find(' ');
  if (first_space == std::string_view::npos) return false;
  const std::size_t second_space = line.find(' ', first_space + 1);
  const std::string_view code =
      line.substr(first_space + 1, second_space == std::string_view::npos
                                       ? std::string_view::npos
                                       : second_space - first_space - 1);
  std::size_t status = 0;
  if (!util::parse_size(code, status) || status < 100 || status > 599) {
    return false;
  }
  out.status = static_cast<int>(status);
  out.reason = second_space == std::string_view::npos
                   ? std::string()
                   : std::string(line.substr(second_space + 1));
  return true;
}

RangeParse parse_range_header(std::string_view value, std::size_t size,
                              ByteRange& out) {
  std::string_view spec = util::trim(value);
  if (!util::starts_with(spec, "bytes=")) return RangeParse::kNone;
  spec.remove_prefix(6);
  spec = util::trim(spec);
  if (spec.find(',') != std::string_view::npos) {
    // Multi-range: syntactically a bytes range, deliberately refused.
    return RangeParse::kUnsatisfiable;
  }
  const std::size_t dash = spec.find('-');
  if (dash == std::string_view::npos) return RangeParse::kNone;
  const std::string_view left = util::trim(spec.substr(0, dash));
  const std::string_view right = util::trim(spec.substr(dash + 1));

  if (left.empty()) {
    // Suffix form "bytes=-K": the final K bytes.
    std::size_t suffix = 0;
    if (right.empty() || !util::parse_size(right, suffix)) {
      return RangeParse::kNone;
    }
    if (suffix == 0 || size == 0) return RangeParse::kUnsatisfiable;
    out.first = size - std::min(suffix, size);
    out.last = size - 1;
    return RangeParse::kValid;
  }

  std::size_t first = 0;
  if (!util::parse_size(left, first)) return RangeParse::kNone;
  if (first >= size) return RangeParse::kUnsatisfiable;
  if (right.empty()) {
    // Open form "bytes=N-": everything from N (the resume shape).
    out.first = first;
    out.last = size - 1;
    return RangeParse::kValid;
  }
  std::size_t last = 0;
  if (!util::parse_size(right, last)) return RangeParse::kNone;
  if (last < first) return RangeParse::kNone;  // malformed: ignored per RFC
  out.first = first;
  out.last = std::min(last, size - 1);
  return RangeParse::kValid;
}

HttpHeaders parse_header_block(std::string_view block, std::size_t skip_lines) {
  HttpHeaders headers;
  std::size_t line_index = 0;
  std::size_t start = 0;
  while (start < block.size()) {
    std::size_t end = block.find('\n', start);
    if (end == std::string_view::npos) end = block.size();
    std::string_view line = block.substr(start, end - start);
    start = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line_index++ < skip_lines) continue;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument("HTTP: malformed header line");
    }
    headers.entries.emplace_back(std::string(util::trim(line.substr(0, colon))),
                                 std::string(util::trim(line.substr(colon + 1))));
  }
  return headers;
}

namespace {

std::string_view first_line(std::string_view block) {
  std::size_t end = block.find('\n');
  if (end == std::string_view::npos) end = block.size();
  std::string_view line = block.substr(0, end);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

std::size_t content_length_of(const HttpHeaders& headers) {
  const std::string* value = headers.find("Content-Length");
  if (value == nullptr) return 0;
  std::size_t length = 0;
  if (!util::parse_size(*value, length) ||
      length > HttpConnection::kMaxBodyBytes) {
    throw std::invalid_argument("HTTP: bad Content-Length");
  }
  return length;
}

}  // namespace

HttpConnection::HttpConnection(TcpStream stream) : owned_(std::move(stream)) {}

HttpConnection::HttpConnection(TcpStream* borrowed) : borrowed_(borrowed) {}

std::optional<std::string> HttpConnection::read_header_block() {
  while (true) {
    const std::size_t boundary = buffer_.find("\r\n\r\n");
    if (boundary != std::string::npos) {
      // Enforce the cap on the extracted block, not just the pending
      // buffer: a terminator arriving within one read chunk past the cap
      // must not smuggle an oversized block through.
      if (boundary > kMaxHeaderBytes) {
        throw std::invalid_argument("HTTP: header block too large");
      }
      std::string block = buffer_.substr(0, boundary);
      buffer_.erase(0, boundary + 4);
      return block;
    }
    if (buffer_.size() > kMaxHeaderBytes) {
      throw std::invalid_argument("HTTP: header block too large");
    }
    char chunk[8192];
    const std::size_t n = stream().read(chunk, sizeof(chunk));
    if (n == 0) {
      if (buffer_.empty()) return std::nullopt;  // clean EOF between messages
      throw std::invalid_argument("HTTP: connection closed mid-headers");
    }
    buffer_.append(chunk, n);
  }
}

std::string HttpConnection::read_exact(std::size_t size,
                                       const ProgressCallback& progress) {
  std::string body;
  body.reserve(size);
  const std::size_t from_buffer = std::min(size, buffer_.size());
  body.append(buffer_, 0, from_buffer);
  buffer_.erase(0, from_buffer);
  if (progress && from_buffer > 0) progress(body.size(), body.size() == size);
  while (body.size() < size) {
    char chunk[16384];
    const std::size_t want = std::min(sizeof(chunk), size - body.size());
    const std::size_t n = stream().read(chunk, want);
    if (n == 0) throw std::invalid_argument("HTTP: connection closed mid-body");
    body.append(chunk, n);
    if (progress) progress(body.size(), body.size() == size);
  }
  return body;
}

std::optional<HttpRequest> HttpConnection::read_request() {
  const auto block = read_header_block();
  if (!block.has_value()) return std::nullopt;

  const std::string_view line = first_line(*block);
  if (line.size() > kMaxRequestLineBytes) {
    throw std::invalid_argument("HTTP: request line too long");
  }
  HttpRequest request;
  if (!parse_request_line(line, request)) {
    throw std::invalid_argument("HTTP: malformed request line");
  }
  request.headers = parse_header_block(*block, /*skip_lines=*/1);
  request.body = read_exact(content_length_of(request.headers), nullptr);
  return request;
}

void HttpConnection::write_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    response.reason + "\r\n";
  bool has_length = false;
  for (const auto& [key, value] : response.headers.entries) {
    if (util::iequals(key, "Content-Length")) has_length = true;
    out += key + ": " + value + "\r\n";
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  stream().write_all(out);
  stream().write_all(response.body);
}

void HttpConnection::write_request(const HttpRequest& request,
                                   const std::string& host) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  for (const auto& [key, value] : request.headers.entries) {
    out += key + ": " + value + "\r\n";
  }
  if (!request.body.empty()) {
    out += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  stream().write_all(out);
  if (!request.body.empty()) stream().write_all(request.body);
}

HttpResponse HttpConnection::read_response(const ProgressCallback& progress) {
  const auto block = read_header_block();
  if (!block.has_value()) {
    throw std::invalid_argument("HTTP: connection closed before response");
  }
  HttpResponse response;
  if (!parse_status_line(first_line(*block), response)) {
    throw std::invalid_argument("HTTP: malformed status line");
  }
  response.headers = parse_header_block(*block, /*skip_lines=*/1);
  response.body = read_exact(content_length_of(response.headers), progress);
  return response;
}

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

void HttpClient::set_timeout_ms(int timeout_ms) {
  const util::MutexLock lock(mutex_);
  timeout_ms_ = timeout_ms;
  connection_.reset();
}

void HttpClient::ensure_connected_locked() {
  if (connection_.has_value()) return;
  TcpStream stream = TcpStream::connect(host_, port_);
  stream.set_no_delay(true);
  stream.set_timeout_ms(timeout_ms_);
  connection_.emplace(std::move(stream));
}

void HttpClient::abort() {
  const util::MutexLock lock(mutex_);
  if (connection_.has_value()) connection_->stream().shutdown_both();
}

HttpResponse HttpClient::request(const std::string& target,
                                 const ProgressCallback& progress) {
  return request(target, HttpHeaders{}, progress);
}

HttpResponse HttpClient::request(const std::string& target,
                                 const HttpHeaders& extra_headers,
                                 const ProgressCallback& progress) {
  HttpRequest http_request;
  http_request.method = "GET";
  http_request.target = target;
  http_request.headers = extra_headers;

  // The connection object is created/destroyed under the mutex but the I/O
  // itself runs unlocked, so abort() can shut the socket down (failing the
  // blocked read) without deadlocking on this request. Only the catch block
  // below destroys the object, so the pointer stays valid throughout.
  HttpConnection* connection = nullptr;
  {
    const util::MutexLock lock(mutex_);
    ensure_connected_locked();
    connection = &*connection_;
  }
  try {
    connection->write_request(http_request, host_);
    HttpResponse response = connection->read_response(progress);
    const std::string* connection_header = response.headers.find("Connection");
    if (connection_header != nullptr &&
        util::iequals(*connection_header, "close")) {
      const util::MutexLock reset_lock(mutex_);
      connection_.reset();
    }
    return response;
  } catch (...) {
    const util::MutexLock reset_lock(mutex_);
    connection_.reset();
    throw;
  }
}

HttpResponse HttpClient::get(const std::string& target,
                             const ProgressCallback& progress) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      HttpResponse response = request(target, progress);
      if (response.status < 200 || response.status >= 300) {
        throw std::runtime_error("HTTP GET " + target + " -> " +
                                 std::to_string(response.status));
      }
      return response;
    } catch (const std::invalid_argument&) {
      // Server closed the persistent connection under us; reconnect once.
      if (attempt == 1) throw;
    } catch (const std::system_error&) {
      if (attempt == 1) throw;
    }
  }
  throw std::runtime_error("HTTP GET: unreachable");
}

}  // namespace abr::net
