#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::net {

/// An HTTP/1.1 message header block.
struct HttpHeaders {
  std::vector<std::pair<std::string, std::string>> entries;

  /// Case-insensitive lookup of the first matching header.
  const std::string* find(std::string_view name) const;
  void set(std::string name, std::string value);
};

struct HttpRequest {
  std::string method;
  std::string target;  ///< origin-form, e.g. "/video/2/seg-7.m4s"
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  HttpHeaders headers;
  std::string body;
};

/// Called as response body bytes arrive: (bytes_so_far, done).
using ProgressCallback = std::function<void(std::size_t, bool)>;

/// One inclusive byte range resolved against a known body size.
struct ByteRange {
  std::size_t first = 0;
  std::size_t last = 0;  ///< inclusive; always < the body size
};

/// Outcome of resolving a Range request header.
enum class RangeParse {
  kNone,           ///< absent / not a bytes range / malformed — serve 200
  kValid,          ///< resolved range — serve 206 with Content-Range
  kUnsatisfiable,  ///< a bytes range the body cannot satisfy — serve 416
                   ///< with "Content-Range: bytes */<size>"
};

/// Resolves an RFC 7233 "Range" header value against a body of `size`
/// bytes. Single ranges only: multi-range requests (a comma in the spec)
/// are rejected as unsatisfiable — a DASH client never issues them and the
/// origin refuses to build multipart bodies. Open ("bytes=N-") and suffix
/// ("bytes=-K") forms are supported; a resume offset equal to the body
/// length is unsatisfiable (the 416 tells the client it already holds the
/// whole chunk). Syntactically malformed specs return kNone, which per RFC
/// means the header is ignored and the full body served.
RangeParse parse_range_header(std::string_view value, std::size_t size,
                              ByteRange& out);

/// One HTTP/1.1 connection with persistent (keep-alive) semantics over a
/// TcpStream. Handles request/response framing with Content-Length bodies —
/// the subset a DASH origin needs. Malformed peers raise
/// std::invalid_argument; transport failures raise std::system_error.
///
/// This is a from-scratch implementation (no third-party HTTP stack): the
/// paper's emulation testbed (Section 7.2) is a plain node.js static server
/// plus a browser player, and this class plays both roles.
class HttpConnection {
 public:
  /// Owns the stream.
  explicit HttpConnection(TcpStream stream);
  /// Borrows a stream owned elsewhere (e.g., by TcpServer, which needs to
  /// retain it so stop() can interrupt a blocked handler). `borrowed` must
  /// outlive this object.
  explicit HttpConnection(TcpStream* borrowed);

  /// Server side: reads the next request. Returns nullopt on clean EOF
  /// between requests (client closed keep-alive).
  std::optional<HttpRequest> read_request();

  /// Server side: writes a response, adding Content-Length.
  void write_response(const HttpResponse& response);

  /// Client side: writes a request, adding Host and Content-Length.
  void write_request(const HttpRequest& request, const std::string& host);

  /// Client side: reads a response; invokes `progress` as body bytes land.
  HttpResponse read_response(const ProgressCallback& progress = nullptr);

  TcpStream& stream() { return borrowed_ != nullptr ? *borrowed_ : owned_; }

  /// Limits (guard against hostile peers). A request line longer than
  /// kMaxRequestLineBytes is rejected even when the whole header block fits
  /// under kMaxHeaderBytes.
  static constexpr std::size_t kMaxRequestLineBytes = 8 * 1024;
  static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr std::size_t kMaxBodyBytes = 256 * 1024 * 1024;

 private:
  /// Reads until a blank line; returns the header block (without the final
  /// CRLFCRLF). Returns nullopt on immediate EOF.
  std::optional<std::string> read_header_block();
  std::string read_exact(std::size_t size, const ProgressCallback& progress);

  TcpStream owned_;
  TcpStream* borrowed_ = nullptr;
  std::string buffer_;  ///< bytes read past the last parsed message
};

/// Minimal HTTP GET client with a persistent connection; reconnects
/// transparently after a server-side close.
///
/// One thread issues requests at a time; abort() is the only member safe to
/// call concurrently with an in-flight request (hedged fetches use it to
/// cancel the losing leg).
class HttpClient {
 public:
  /// `timeout_ms` is the socket-level deadline (SO_RCVTIMEO/SO_SNDTIMEO)
  /// applied to every connection: a peer that accepts and then never
  /// responds makes the blocked read fail with std::system_error
  /// (EAGAIN/EWOULDBLOCK) after this long instead of hanging forever.
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 120000);

  /// Applies to connections established after the call (the current
  /// connection, if any, is dropped so the next request reconnects).
  void set_timeout_ms(int timeout_ms) ABR_EXCLUDES(mutex_);

  /// GETs `target`; throws std::runtime_error on non-2xx. Retries once on a
  /// transport error (persistent connection closed under us).
  HttpResponse get(const std::string& target,
                   const ProgressCallback& progress = nullptr);

  /// Single-attempt GET returning whatever status the server sent; never
  /// retries internally (callers running their own RetryPolicy need every
  /// attempt to be visible). On any thrown error the connection is dropped,
  /// so the next call reconnects.
  HttpResponse request(const std::string& target,
                       const ProgressCallback& progress = nullptr)
      ABR_EXCLUDES(mutex_);

  /// As above, with caller-supplied request headers (range resumes send
  /// "Range: bytes=N-" this way).
  HttpResponse request(const std::string& target,
                       const HttpHeaders& extra_headers,
                       const ProgressCallback& progress = nullptr)
      ABR_EXCLUDES(mutex_);

  /// Interrupts an in-flight request from another thread: shuts down the
  /// current connection, so the blocked read/write fails with an error the
  /// requesting thread surfaces as a transport failure. Safe to call at any
  /// time; a no-op when idle.
  void abort() ABR_EXCLUDES(mutex_);

 private:
  void ensure_connected_locked() ABR_REQUIRES(mutex_);

  std::string host_;
  std::uint16_t port_;
  int timeout_ms_ ABR_GUARDED_BY(mutex_);
  util::Mutex mutex_;  ///< guards connection_ creation/teardown (not I/O)
  std::optional<HttpConnection> connection_ ABR_GUARDED_BY(mutex_);
};

/// Parses "GET /path HTTP/1.1" style request lines and status lines;
/// exposed for tests.
bool parse_request_line(std::string_view line, HttpRequest& out);
bool parse_status_line(std::string_view line, HttpResponse& out);

/// Parses "Name: value" header lines from a block (CRLF or LF separated),
/// skipping the first `skip_lines` lines (the request/status line). Throws
/// std::invalid_argument on a malformed line. Exposed for tests and the
/// fuzz harnesses; HttpConnection uses it on every received block.
HttpHeaders parse_header_block(std::string_view block, std::size_t skip_lines);

}  // namespace abr::net
