#include "net/origin_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::net {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

void BreakerConfig::validate() const {
  if (failure_threshold == 0) {
    throw std::invalid_argument("BreakerConfig: failure_threshold must be >= 1");
  }
  if (probe_interval == 0) {
    throw std::invalid_argument("BreakerConfig: probe_interval must be >= 1");
  }
  if (probe_jitter < 0.0 || probe_jitter >= 1.0) {
    throw std::invalid_argument("BreakerConfig: probe_jitter must be in [0, 1)");
  }
  if (close_threshold == 0) {
    throw std::invalid_argument("BreakerConfig: close_threshold must be >= 1");
  }
}

CircuitBreaker::CircuitBreaker(BreakerConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  config_.validate();
}

void CircuitBreaker::open() {
  state_ = BreakerState::kOpen;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  denied_since_open_ = 0;
  probe_in_flight_ = false;
  const double jittered = static_cast<double>(config_.probe_interval) *
                          (1.0 + config_.probe_jitter * rng_.uniform(-1.0, 1.0));
  probe_due_after_ =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(jittered)));
}

bool CircuitBreaker::tick() {
  if (state_ != BreakerState::kOpen) return false;
  ++denied_since_open_;
  if (denied_since_open_ >= probe_due_after_) {
    state_ = BreakerState::kHalfOpen;
    probe_in_flight_ = false;
    return true;
  }
  return false;
}

bool CircuitBreaker::try_claim() {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
    case BreakerState::kOpen:
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.close_threshold) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A late success (e.g. a hedged loser that was given up on but whose
      // response arrived anyway): the origin evidently works, close.
      state_ = BreakerState::kClosed;
      consecutive_failures_ = 0;
      half_open_successes_ = 0;
      break;
  }
}

void CircuitBreaker::record_failure() {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) open();
      break;
    case BreakerState::kHalfOpen:
      // The probe failed: reopen with a freshly jittered probe schedule.
      open();
      break;
    case BreakerState::kOpen:
      break;
  }
}

OriginPool::OriginPool(std::size_t count, BreakerConfig config,
                       std::uint64_t seed) {
  if (count == 0) {
    throw std::invalid_argument("OriginPool: need at least one origin");
  }
  config.validate();
  breakers_.reserve(count);
  fast_fails_.assign(count, 0);
  fast_fail_counters_.reserve(count);
  util::Rng seeder(seed);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < count; ++i) {
    breakers_.emplace_back(config, seeder());
    fast_fail_counters_.push_back(&registry.counter(
        obs::kBreakerFastFailTotal, obs::origin_label(i)));
  }
}

std::size_t OriginPool::size() const {
  const util::MutexLock lock(mutex_);
  return breakers_.size();
}

void OriginPool::note_transition(std::size_t origin, BreakerState before) {
  const BreakerState now = breakers_[origin].state();
  if (now == before) return;
  transitions_.push_back({origin, now});
  obs::MetricsRegistry::global()
      .counter(obs::kBreakerTransitionsTotal,
               obs::breaker_transition_label(origin, breaker_state_name(now)))
      .increment();
}

std::optional<std::size_t> OriginPool::acquire(std::size_t preferred) {
  const util::MutexLock lock(mutex_);
  const std::size_t n = breakers_.size();
  if (n == 1) return 0;  // single origin: breaker bypass (see class comment)

  // Pass 1: tick every open breaker (counts a fast-fail, advances the probe
  // schedule). The lowest-indexed origin whose probe came due wins priority.
  std::optional<std::size_t> probe;
  for (std::size_t i = 0; i < n; ++i) {
    if (breakers_[i].state() != BreakerState::kOpen) continue;
    ++fast_fails_[i];
    fast_fail_counters_[i]->increment();
    const BreakerState before = breakers_[i].state();
    if (breakers_[i].tick() && !probe.has_value()) probe = i;
    note_transition(i, before);
  }
  if (probe.has_value() && breakers_[*probe].try_claim()) return probe;

  // Pass 2: first claimable origin, scanning cyclically from `preferred`.
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t i = (preferred + offset) % n;
    if (breakers_[i].try_claim()) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> OriginPool::hedge_target(std::size_t exclude) const {
  const util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    if (i == exclude) continue;
    if (breakers_[i].state() == BreakerState::kClosed) return i;
  }
  return std::nullopt;
}

void OriginPool::report_success(std::size_t origin) {
  const util::MutexLock lock(mutex_);
  if (breakers_.size() == 1) return;
  const BreakerState before = breakers_.at(origin).state();
  breakers_[origin].record_success();
  note_transition(origin, before);
}

void OriginPool::report_failure(std::size_t origin) {
  const util::MutexLock lock(mutex_);
  if (breakers_.size() == 1) return;
  const BreakerState before = breakers_.at(origin).state();
  breakers_[origin].record_failure();
  note_transition(origin, before);
}

BreakerState OriginPool::state(std::size_t origin) const {
  const util::MutexLock lock(mutex_);
  return breakers_.at(origin).state();
}

std::size_t OriginPool::fast_fails(std::size_t origin) const {
  const util::MutexLock lock(mutex_);
  return fast_fails_.at(origin);
}

std::vector<BreakerTransition> OriginPool::transitions() const {
  const util::MutexLock lock(mutex_);
  return transitions_;
}

std::string OriginPool::transition_string(std::size_t origin) const {
  const util::MutexLock lock(mutex_);
  std::string out = breaker_state_name(BreakerState::kClosed);
  for (const BreakerTransition& transition : transitions_) {
    if (transition.origin != origin) continue;
    out += "->";
    out += breaker_state_name(transition.to);
  }
  return out;
}

}  // namespace abr::net
