#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace abr::obs {
class Counter;
}

namespace abr::net {

/// Circuit-breaker states, in the classic closed/open/half-open scheme:
/// closed passes traffic, open refuses it, half-open lets exactly one probe
/// through to test whether the origin has recovered.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* breaker_state_name(BreakerState state);

/// Tuning for one origin's circuit breaker. All scheduling is counted in
/// *events* (failures, denied consults), never in wall-clock time: a seeded
/// run issues the same request sequence, so the breaker walks the same state
/// sequence — which is what keeps `abrsim --origins --kill-origin` runs
/// bit-identical.
struct BreakerConfig {
  /// Consecutive failures that trip the breaker closed -> open.
  std::size_t failure_threshold = 3;

  /// Mean number of denied consults while open before a half-open probe is
  /// allowed. The actual interval is jittered per opening (see probe_jitter)
  /// from the breaker's seeded RNG, so colocated breakers do not probe in
  /// lockstep yet every run draws the same schedule.
  std::size_t probe_interval = 4;

  /// Probe interval is scaled by (1 + probe_jitter * u), u uniform in
  /// [-1, 1), then clamped to >= 1.
  double probe_jitter = 0.5;

  /// Consecutive half-open successes needed to close.
  std::size_t close_threshold = 1;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

/// Per-origin failure tracker. Not thread-safe by itself; OriginPool
/// serializes access. Exposed for unit tests.
class CircuitBreaker {
 public:
  CircuitBreaker(BreakerConfig config, std::uint64_t seed);

  BreakerState state() const { return state_; }

  /// One denied consult while open. Returns true when this consult made the
  /// probe come due (the breaker is now half-open and try_claim() will hand
  /// out the probe slot). Only meaningful in the open state.
  bool tick();

  /// Attempts to claim the right to send one request. Closed: always
  /// granted. Half-open: granted once until the probe reports back. Open:
  /// refused (call tick() to advance the probe schedule).
  bool try_claim();

  void record_success();
  void record_failure();

 private:
  void open();

  BreakerConfig config_;
  util::Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_successes_ = 0;
  std::size_t denied_since_open_ = 0;
  std::size_t probe_due_after_ = 0;
  bool probe_in_flight_ = false;
};

/// One breaker state change, in occurrence order.
struct BreakerTransition {
  std::size_t origin = 0;
  BreakerState to = BreakerState::kClosed;
};

/// Health tracking and failover routing for a set of interchangeable
/// origins. The pool does no I/O: callers acquire() an origin index, perform
/// the transfer themselves, and report the outcome back. Both the real-HTTP
/// client (HttpChunkSource) and the virtual-time chaos source
/// (SimulatedOriginSource) route through the same pool, so breaker behaviour
/// is identical on both paths.
///
/// acquire() semantics:
///  1. Every open breaker is consulted ("ticked") once — the denied consult
///    is counted as a fast-fail and advances that origin's deterministic
///    probe schedule. If a probe comes due, the probe takes priority: the
///    recovering origin gets the request even though healthy peers exist
///    (otherwise a pool that failed over would never revisit a restarted
///    origin).
///  2. Otherwise the first origin from `preferred` (cyclically) whose
///    breaker grants a claim is returned, so a healthy current origin keeps
///    serving and failover is sticky.
///  3. nullopt means every origin refused (all open, no probe due yet).
///
/// A pool of size 1 bypasses the breaker entirely: with nowhere to fail
/// over to, fast-failing would only turn retryable errors into immediate
/// failures, and the single-origin path must behave exactly as it did
/// before the pool existed.
///
/// Thread-safe; transitions and fast-fails are also counted in the global
/// metrics registry (no-ops unless it is enabled).
class OriginPool {
 public:
  explicit OriginPool(std::size_t count, BreakerConfig config = {},
                      std::uint64_t seed = 0x0717c3b5ULL);

  std::size_t size() const ABR_EXCLUDES(mutex_);

  std::optional<std::size_t> acquire(std::size_t preferred)
      ABR_EXCLUDES(mutex_);

  /// A side-effect-free pick for hedged requests: the first origin other
  /// than `exclude` whose breaker is closed. No ticks, no claims — hedges
  /// never disturb the probe schedule.
  std::optional<std::size_t> hedge_target(std::size_t exclude) const
      ABR_EXCLUDES(mutex_);

  void report_success(std::size_t origin) ABR_EXCLUDES(mutex_);
  void report_failure(std::size_t origin) ABR_EXCLUDES(mutex_);

  BreakerState state(std::size_t origin) const ABR_EXCLUDES(mutex_);

  /// Denied consults of this origin's open breaker (the "breaker-opened
  /// fast-fail" counter, also exported per-origin to the registry).
  std::size_t fast_fails(std::size_t origin) const ABR_EXCLUDES(mutex_);

  /// Every breaker state change so far, in order. Deterministic for a
  /// deterministic request sequence.
  std::vector<BreakerTransition> transitions() const ABR_EXCLUDES(mutex_);

  /// transitions() restricted to one origin, rendered as
  /// "closed->open->half_open->closed" (leading state included). Handy for
  /// logs and golden assertions.
  std::string transition_string(std::size_t origin) const
      ABR_EXCLUDES(mutex_);

 private:
  /// Appends a transition + metric if `breaker`'s state differs from
  /// `before`.
  void note_transition(std::size_t origin, BreakerState before)
      ABR_REQUIRES(mutex_);

  mutable util::Mutex mutex_;
  std::vector<CircuitBreaker> breakers_ ABR_GUARDED_BY(mutex_);
  std::vector<std::size_t> fast_fails_ ABR_GUARDED_BY(mutex_);
  std::vector<BreakerTransition> transitions_ ABR_GUARDED_BY(mutex_);
  std::vector<obs::Counter*> fast_fail_counters_ ABR_GUARDED_BY(mutex_);
};

}  // namespace abr::net
