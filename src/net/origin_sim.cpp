#include "net/origin_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::net {

SimulatedOriginSource::SimulatedOriginSource(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    testing::OutageScript script, SimulatedOriginOptions options)
    : base_(trace, manifest),
      script_(std::move(script)),
      options_(options),
      pool_(options.origins, options.breaker, options.seed),
      backoff_rng_(options.seed ^ 0x9e3779b97f4a7c15ULL) {
  script_.validate();
  if (options_.retry.max_attempts == 0) {
    throw std::invalid_argument(
        "SimulatedOriginSource: max_attempts must be >= 1");
  }
  if (options_.connect_fail_s <= 0.0) {
    throw std::invalid_argument(
        "SimulatedOriginSource: connect_fail_s must be positive");
  }
}

sim::FetchOutcome SimulatedOriginSource::fetch(std::size_t chunk,
                                               std::size_t level) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);
  obs::Counter& failovers_total = registry.counter(obs::kOriginFailoversTotal);

  const double start_s = base_.now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;
  outcome.origin = current_origin_;

  // The RetryPolicy budget applies per origin: exhausting it on one origin
  // is what licenses moving on to the next (the breaker usually fails over
  // sooner, after failure_threshold consecutive failures).
  const std::size_t budget = options_.retry.max_attempts * pool_.size();
  std::size_t consecutive_failures = 0;
  while (outcome.attempts < budget) {
    ++outcome.attempts;
    const std::optional<std::size_t> origin = pool_.acquire(current_origin_);
    if (!origin.has_value()) {
      // Every breaker is open and no probe is due: a denied cycle. It still
      // costs time, and the denial ticks every probe schedule forward, so
      // the loop cannot livelock — some origin becomes probeable soon.
      base_.wait(options_.connect_fail_s);
      ++attempt_failures_;
      ++outcome.faults;
      failures_total.increment();
    } else {
      if (*origin != current_origin_) {
        ++failovers_;
        failovers_total.increment();
        current_origin_ = *origin;
      }
      if (script_.down(*origin, base_.now())) {
        base_.wait(options_.connect_fail_s);
        pool_.report_failure(*origin);
        ++attempt_failures_;
        ++outcome.faults;
        failures_total.increment();
      } else {
        const sim::FetchOutcome inner = base_.fetch(chunk, level);
        pool_.report_success(*origin);
        outcome.kilobits = inner.kilobits;
        outcome.duration_s = std::max(base_.now() - start_s, 1e-9);
        outcome.origin = *origin;
        return outcome;
      }
    }
    ++consecutive_failures;
    if (outcome.attempts < budget) {
      ++retries_;
      retries_total.increment();
      base_.wait(options_.retry.backoff_s(consecutive_failures, backoff_rng_));
    }
  }

  outcome.failed = true;
  outcome.kilobits = 0.0;
  outcome.duration_s = std::max(base_.now() - start_s, 1e-9);
  outcome.origin = current_origin_;
  return outcome;
}

}  // namespace abr::net
