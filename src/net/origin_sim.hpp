#pragma once

#include <cstdint>

#include "net/origin_pool.hpp"
#include "sim/chunk_source.hpp"
#include "testing/outage_script.hpp"
#include "util/rng.hpp"

namespace abr::net {

/// Knobs for the virtual-time multi-origin source.
struct SimulatedOriginOptions {
  std::size_t origins = 2;

  /// Virtual cost of one failed attempt against a dead origin (a refused
  /// TCP connect plus the client noticing), session seconds.
  double connect_fail_s = 0.05;

  sim::RetryPolicy retry;
  BreakerConfig breaker;

  /// Seeds the breaker probe jitter and the retry backoff jitter. Same seed
  /// + same trace + same script => bit-identical sessions.
  std::uint64_t seed = 0x5eedULL;
};

/// Virtual-time counterpart of the multi-origin HttpChunkSource: chunk
/// timing follows the throughput trace exactly (Eq. 2, via TraceChunkSource)
/// while an OutageScript takes origins down and back up in session time, and
/// an OriginPool decides — with the same circuit-breaker state machine the
/// real client runs — which origin each attempt goes to.
///
/// Everything is a pure function of (trace, manifest, script, options), so
/// `abrsim --origins N --kill-origin ...` produces bit-identical chunk logs
/// across runs: the determinism contract of PR 2's fault layer extends to
/// origin-level chaos.
class SimulatedOriginSource final : public sim::ChunkSource {
 public:
  /// The trace and manifest must outlive the source. The script is
  /// validate()d.
  SimulatedOriginSource(const trace::ThroughputTrace& trace,
                        const media::VideoManifest& manifest,
                        testing::OutageScript script,
                        SimulatedOriginOptions options = {});

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  void wait(double seconds) override { base_.wait(seconds); }
  double now() const override { return base_.now(); }
  const trace::ThroughputTrace* truth() const override {
    return base_.truth();
  }

  const OriginPool& pool() const { return pool_; }
  std::size_t failovers() const { return failovers_; }
  std::size_t attempt_failures() const { return attempt_failures_; }
  std::size_t retries() const { return retries_; }

 private:
  sim::TraceChunkSource base_;
  testing::OutageScript script_;
  SimulatedOriginOptions options_;
  OriginPool pool_;
  util::Rng backoff_rng_;
  std::size_t current_origin_ = 0;
  std::size_t failovers_ = 0;
  std::size_t attempt_failures_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace abr::net
