#pragma once

#include <cstddef>
#include <cstdint>

namespace abr::net {

/// Lifecycle + observability surface a ChunkServer transport provides. Two
/// engines implement it: the threaded TcpServer (one blocking thread per
/// connection) and the sharded EpollServer (N reactor shards over
/// nonblocking sockets). Tests assert against this interface, so both
/// engines must satisfy the same admission / drain / overload contract.
class ServerTransport {
 public:
  virtual ~ServerTransport() = default;

  ServerTransport(const ServerTransport&) = delete;
  ServerTransport& operator=(const ServerTransport&) = delete;

  /// Binds 127.0.0.1 and starts accepting; port 0 picks an ephemeral port.
  /// A stopped (or drained) transport may be started again — passing the
  /// old port() restarts the origin on the same address, which is how the
  /// chaos harness brings a killed origin back.
  virtual void start(std::uint16_t port) = 0;

  /// Hard stop: interrupts every live connection and joins every thread.
  virtual void stop() = 0;

  /// Graceful shutdown: stops accepting, waits up to `deadline_s` for
  /// in-flight connections to finish on their own, then force-closes the
  /// stragglers. Returns the number of forced closes. Idempotent with
  /// stop() in either order.
  virtual std::size_t drain(double deadline_s) = 0;

  /// True from the moment drain() begins until the next start().
  virtual bool draining() const = 0;

  virtual std::uint16_t port() const = 0;

  /// Connections currently live (admitted and rejected alike).
  virtual std::size_t active_connections() const = 0;
  virtual std::size_t peak_connections() const = 0;
  /// Connections refused by the admission cap.
  virtual std::size_t rejected_connections() const = 0;
  /// Table entries including finished-but-unreclaimed ones (tests use this
  /// to show reclamation keeps the table bounded).
  virtual std::size_t tracked_connections() const = 0;

 protected:
  ServerTransport() = default;
};

}  // namespace abr::net
