#include "net/shaper.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace abr::net {

TraceShaper::TraceShaper(const trace::ThroughputTrace& trace, double speedup)
    : trace_(&trace),
      speedup_(speedup),
      epoch_(std::chrono::steady_clock::now()) {
  assert(speedup > 0.0);
}

double TraceShaper::session_now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count() * speedup_;
}

void TraceShaper::reset_epoch() {
  epoch_ = std::chrono::steady_clock::now();
  sent_kilobits_ = 0.0;
}

void TraceShaper::send(TcpStream& stream, std::string_view data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t quantum = std::min(kQuantumBytes, data.size() - offset);
    const double quantum_kilobits =
        static_cast<double>(quantum) * 8.0 / 1000.0;

    // The trace allows this quantum once its cumulative capacity since the
    // epoch reaches sent + quantum; compute that instant exactly via the
    // trace's inverse integral and sleep the (scaled) difference.
    const double release_session_s =
        trace_->transfer_end_time(sent_kilobits_ + quantum_kilobits, 0.0);
    const double now_session_s = session_now();
    if (release_session_s > now_session_s) {
      const double wall_sleep_s =
          (release_session_s - now_session_s) / speedup_;
      std::this_thread::sleep_for(std::chrono::duration<double>(wall_sleep_s));
    }

    stream.write_all(data.data() + offset, quantum);
    offset += quantum;
    sent_kilobits_ += quantum_kilobits;
  }
}

}  // namespace abr::net
