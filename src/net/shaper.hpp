#pragma once

#include <chrono>

#include "net/socket.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::net {

/// Trace-driven link shaper: paces bytes written to a TcpStream so that the
/// cumulative bytes sent track the integral of a throughput trace.
///
/// This replaces the `tc` token-bucket shaping of the paper's testbed
/// (Section 7.2) with an application-level equivalent: before each quantum
/// the shaper compares bytes-sent against the trace's allowance at the
/// current (scaled) session time and sleeps until the allowance catches up.
///
/// `speedup` compresses session time: at speedup 20 a 260 s video session
/// runs in 13 s of wall time, with trace rates scaled up correspondingly.
/// On loopback (>10 Gbps raw) the shaped rate remains the bottleneck for
/// any realistic trace, so the measured throughput at the client follows
/// the trace as it would behind tc.
class TraceShaper {
 public:
  /// The trace must outlive the shaper. The epoch (session time 0) is the
  /// moment of construction; reset_epoch() restarts it.
  TraceShaper(const trace::ThroughputTrace& trace, double speedup = 1.0);

  /// Writes the buffer to the stream, pacing per the trace.
  void send(TcpStream& stream, std::string_view data);

  /// Session time now, seconds (trace timebase, i.e. wall time * speedup).
  double session_now() const;

  void reset_epoch();

  /// Pacing quantum, bytes. Smaller = smoother shaping, more syscalls.
  static constexpr std::size_t kQuantumBytes = 16 * 1024;

 private:
  const trace::ThroughputTrace* trace_;
  double speedup_;
  std::chrono::steady_clock::time_point epoch_;
  double sent_kilobits_ = 0.0;  ///< cumulative shaped payload
};

}  // namespace abr::net
