#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace abr::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

FileDescriptor::~FileDescriptor() { close(); }

FileDescriptor::FileDescriptor(FileDescriptor&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)) {}

FileDescriptor& FileDescriptor::operator=(FileDescriptor&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
  }
  return *this;
}

void FileDescriptor::close() {
  // exchange() so two threads racing to close (shutdown path vs. owner
  // destructor) cannot double-close the same descriptor.
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("TcpStream: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("connect");
  }
  return TcpStream(std::move(fd));
}

std::size_t TcpStream::read(char* data, std::size_t size) {
  while (true) {
    const ssize_t n = ::recv(fd_.get(), data, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void TcpStream::write_all(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_.get(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

void TcpStream::set_timeout_ms(int milliseconds) {
  timeval tv{};
  tv.tv_sec = milliseconds / 1000;
  tv.tv_usec = (milliseconds % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_*TIMEO)");
  }
}

void TcpStream::set_nonblocking(bool enabled) {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_.get(), F_SETFL, want) != 0) throw_errno("fcntl(F_SETFL)");
}

void TcpStream::set_no_delay(bool enabled) {
  const int flag = enabled ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag)) !=
      0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void TcpStream::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

void TcpStream::shutdown_both() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
  FileDescriptor fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");

  const int reuse = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse)) !=
      0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd.get(), 16) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }

  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

TcpStream TcpListener::accept() {
  while (true) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) return TcpStream(FileDescriptor(client));
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void TcpListener::close() {
  // On Linux, close() alone does not wake a thread blocked in accept();
  // shutdown() forces the pending accept to return (EINVAL), which is the
  // documented orderly-shutdown path for this class.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  fd_.close();
}

}  // namespace abr::net
