#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace abr::net {

/// RAII owner of a POSIX file descriptor (Core Guidelines R.1): closes on
/// destruction, move-only. The descriptor slot is atomic because the
/// shutdown contract of TcpListener/TcpStream is cross-thread: one thread
/// blocks in accept()/read() while another close()es or shutdown()s the
/// same object to wake it. Moves are still single-threaded (ownership
/// transfer is never concurrent); only get/valid/close race by design.
class FileDescriptor {
 public:
  FileDescriptor() = default;
  explicit FileDescriptor(int fd) : fd_(fd) {}
  ~FileDescriptor();

  FileDescriptor(const FileDescriptor&) = delete;
  FileDescriptor& operator=(const FileDescriptor&) = delete;
  FileDescriptor(FileDescriptor&& other) noexcept;
  FileDescriptor& operator=(FileDescriptor&& other) noexcept;

  int get() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return get() >= 0; }

  /// Closes now (idempotent, safe against a concurrent close).
  void close();

 private:
  std::atomic<int> fd_{-1};
};

/// A connected TCP byte stream. All operations throw std::system_error on
/// socket failure; read() returning 0 means orderly EOF.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FileDescriptor fd) : fd_(std::move(fd)) {}

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_.valid(); }

  /// Reads up to `size` bytes; returns bytes read, 0 on EOF.
  std::size_t read(char* data, std::size_t size);

  /// Writes the whole buffer (looping over partial writes).
  void write_all(const char* data, std::size_t size);
  void write_all(std::string_view text) { write_all(text.data(), text.size()); }

  /// Sets SO_RCVTIMEO/SO_SNDTIMEO so a stuck peer cannot hang the player.
  void set_timeout_ms(int milliseconds);

  /// Sets O_NONBLOCK: read()/write return what the kernel has instead of
  /// blocking (the epoll transport's I/O mode).
  void set_nonblocking(bool enabled);

  /// Raw descriptor for event-loop registration. Ownership stays with the
  /// stream; the value is invalidated by close().
  int fd() const { return fd_.get(); }

  /// Disables Nagle; chunk transfers are latency-sensitive at their tail.
  void set_no_delay(bool enabled);

  /// Shuts down the write side (signals EOF to the peer).
  void shutdown_write();

  /// Shuts down both directions without closing the descriptor: any thread
  /// blocked in read()/write() on this stream returns immediately. Safe to
  /// call from another thread (the canonical way to interrupt a blocked
  /// connection handler).
  void shutdown_both();

  void close() { fd_.close(); }

 private:
  FileDescriptor fd_;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port.
  static TcpListener bind_loopback(std::uint16_t port = 0);

  /// The actual bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Throws std::system_error if the
  /// listener was closed (the orderly shutdown path).
  TcpStream accept();

  /// Unblocks any accept() in progress.
  void close();

  bool valid() const { return fd_.valid(); }

 private:
  FileDescriptor fd_;
  std::uint16_t port_ = 0;
};

}  // namespace abr::net
