#include "net/streaming_client.hpp"

#include <cmath>
#include <stdexcept>
#include <thread>

#include "media/mpd.hpp"
#include "net/chunk_server.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace abr::net {

HttpChunkSource::HttpChunkSource(std::string host, std::uint16_t port,
                                 const media::VideoManifest& manifest,
                                 double speedup)
    : client_(host, port),
      host_(std::move(host)),
      manifest_(&manifest),
      speedup_(speedup),
      epoch_(std::chrono::steady_clock::now()) {
  if (speedup <= 0.0) {
    throw std::invalid_argument("HttpChunkSource: non-positive speedup");
  }
}

double HttpChunkSource::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count() * speedup_;
}

sim::FetchOutcome HttpChunkSource::fetch(std::size_t chunk, std::size_t level) {
  const std::string target = "/video/" + std::to_string(level) + "/seg-" +
                             std::to_string(chunk) + ".m4s";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kHttpRequestsTotal, "side=\"client\"").increment();
  obs::LatencyTimer latency(&registry.histogram(obs::kHttpFetchLatencyUs));
  const auto start = std::chrono::steady_clock::now();
  const HttpResponse response = client_.get(target);
  const auto end = std::chrono::steady_clock::now();
  latency.stop();

  sim::FetchOutcome outcome;
  outcome.duration_s =
      std::max(std::chrono::duration<double>(end - start).count() * speedup_,
               1e-6);
  outcome.kilobits = static_cast<double>(response.body.size()) * 8.0 / 1000.0;
  return outcome;
}

void HttpChunkSource::wait(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / speedup_));
}

media::VideoManifest HttpChunkSource::fetch_manifest() {
  const HttpResponse response = client_.get("/manifest.mpd");
  media::VideoManifest fetched = media::from_mpd(response.body);
  if (fetched.level_count() != manifest_->level_count() ||
      fetched.chunk_count() != manifest_->chunk_count()) {
    throw std::runtime_error("fetch_manifest: origin disagrees with local");
  }
  return fetched;
}

sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup) {
  ChunkServer server(manifest, trace, speedup);
  server.start();

  HttpChunkSource source("127.0.0.1", server.port(), manifest, speedup);
  server.reset_trace_clock();

  sim::PlayerSession session(manifest, qoe, config);
  sim::SessionResult result = session.run(source, controller, predictor);
  server.stop();
  return result;
}

}  // namespace abr::net
