#include "net/streaming_client.hpp"

#include <cerrno>
#include <cmath>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "media/mpd.hpp"
#include "net/chunk_server.hpp"
#include "net/faults.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace abr::net {

namespace {

bool is_timeout(const std::system_error& error) {
  const std::error_code& code = error.code();
  return code == std::errc::resource_unavailable_try_again ||
         code == std::errc::operation_would_block ||
         code == std::errc::timed_out;
}

}  // namespace

HttpChunkSource::HttpChunkSource(std::string host, std::uint16_t port,
                                 const media::VideoManifest& manifest,
                                 double speedup, sim::RetryPolicy retry,
                                 std::uint64_t jitter_seed)
    : client_(host, port, retry.request_timeout_ms),
      host_(std::move(host)),
      manifest_(&manifest),
      speedup_(speedup),
      retry_(retry),
      jitter_rng_(jitter_seed),
      epoch_(std::chrono::steady_clock::now()) {
  if (speedup <= 0.0) {
    throw std::invalid_argument("HttpChunkSource: non-positive speedup");
  }
  if (retry_.max_attempts == 0) {
    throw std::invalid_argument("HttpChunkSource: max_attempts must be >= 1");
  }
}

double HttpChunkSource::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count() * speedup_;
}

sim::FetchOutcome HttpChunkSource::fetch(std::size_t chunk,
                                         std::size_t level) {
  const std::string target = "/video/" + std::to_string(level) + "/seg-" +
                             std::to_string(chunk) + ".m4s";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& timeouts_total = registry.counter(obs::kFetchTimeoutsTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);
  obs::LatencyTimer latency(&registry.histogram(obs::kHttpFetchLatencyUs));

  const double start_session_s = now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;

  for (std::size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    ++outcome.attempts;
    registry.counter(obs::kHttpRequestsTotal, "side=\"client\"").increment();
    bool delivered = false;
    try {
      const HttpResponse response = client_.request(target);
      if (response.status >= 200 && response.status < 300) {
        outcome.kilobits =
            static_cast<double>(response.body.size()) * 8.0 / 1000.0;
        delivered = true;
      } else if (response.status < 500) {
        // 3xx/4xx means client and origin disagree about the video — a
        // configuration bug, not a transient transport fault.
        throw std::runtime_error("HTTP GET " + target + " -> " +
                                 std::to_string(response.status));
      }
      // 5xx: transient server failure; fall through to retry.
    } catch (const std::system_error& error) {
      if (is_timeout(error)) {
        timeouts_total.increment();
      }
    } catch (const std::invalid_argument&) {
      // Truncated/reset/malformed response; the connection was dropped.
    }

    if (delivered) {
      outcome.duration_s = std::max(now() - start_session_s, 1e-6);
      latency.stop();
      return outcome;
    }
    failures_total.increment();
    if (attempt + 1 < retry_.max_attempts) {
      retries_total.increment();
      const double backoff_s = retry_.backoff_s(attempt + 1, jitter_rng_);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff_s / speedup_));
    }
  }

  outcome.failed = true;
  outcome.kilobits = 0.0;
  outcome.duration_s = std::max(now() - start_session_s, 1e-6);
  latency.stop();
  return outcome;
}

void HttpChunkSource::wait(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / speedup_));
}

media::VideoManifest HttpChunkSource::fetch_manifest() {
  const HttpResponse response = client_.get("/manifest.mpd");
  media::VideoManifest fetched = media::from_mpd(response.body);
  if (fetched.level_count() != manifest_->level_count() ||
      fetched.chunk_count() != manifest_->chunk_count()) {
    throw std::runtime_error("fetch_manifest: origin disagrees with local");
  }
  return fetched;
}

sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup,
    const EmulationFaults* faults) {
  ChunkServer server(manifest, trace, speedup);
  std::optional<FaultInjector> injector;
  sim::RetryPolicy retry;
  if (faults != nullptr) {
    injector.emplace(faults->plan);
    server.set_fault_injector(&*injector);
    retry = faults->retry;
  }
  server.start();

  HttpChunkSource source("127.0.0.1", server.port(), manifest, speedup, retry);
  server.reset_trace_clock();

  sim::PlayerSession session(manifest, qoe, config);
  sim::SessionResult result = session.run(source, controller, predictor);
  server.stop();
  return result;
}

}  // namespace abr::net
