#include "net/streaming_client.hpp"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "media/mpd.hpp"
#include "net/chunk_server.hpp"
#include "net/faults.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "util/mutex.hpp"
#include "util/strings.hpp"

namespace abr::net {

namespace {

bool is_timeout(const std::system_error& error) {
  const std::error_code& code = error.code();
  return code == std::errc::resource_unavailable_try_again ||
         code == std::errc::operation_would_block ||
         code == std::errc::timed_out;
}

std::string segment_target(std::size_t chunk, std::size_t level) {
  return "/video/" + std::to_string(level) + "/seg-" + std::to_string(chunk) +
         ".m4s";
}

/// Extracts the first-byte position from "Content-Range: bytes F-L/N".
bool parse_content_range_start(const std::string& value, std::size_t& first) {
  std::string_view v = util::trim(value);
  if (!util::starts_with(v, "bytes ")) return false;
  v.remove_prefix(6);
  const std::size_t dash = v.find('-');
  if (dash == std::string_view::npos) return false;
  return util::parse_size(util::trim(v.substr(0, dash)), first);
}

/// One sub-chunk GET attempt under the abort monitor.
struct ControlledAttempt {
  enum class Status { kComplete, kAborted, kFailed };
  Status status = Status::kFailed;
  std::size_t have_bytes = 0;      ///< valid prefix after this attempt
  std::size_t received_bytes = 0;  ///< bytes that landed during it
  bool resumed = false;            ///< a Range request was issued
};

/// GETs `target` with a range resume from `have_bytes` and a wall-clock
/// watchdog translating the FetchControl deadline projection into real time
/// (session seconds = wall seconds * speedup). The watchdog cancels the
/// request via HttpClient::abort() — the caller must treat that outcome as
/// self-inflicted (no breaker report, no failure count).
ControlledAttempt controlled_attempt(HttpClient& client,
                                     const std::string& target,
                                     std::size_t have_bytes,
                                     std::size_t total_bytes,
                                     const sim::FetchControl& control,
                                     double speedup) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kHttpRequestsTotal, "side=\"client\"").increment();

  ControlledAttempt result;
  result.have_bytes = have_bytes;

  HttpHeaders headers;
  if (have_bytes > 0) {
    headers.set("Range", "bytes=" + std::to_string(have_bytes) + "-");
    result.resumed = true;
    registry.counter(obs::kHttpRangeRequestsTotal, "side=\"client\"")
        .increment();
  }

  std::atomic<std::size_t> received{0};
  std::atomic<bool> done{false};
  std::atomic<bool> self_abort{false};

  std::thread watchdog;
  if (control.abort_enabled && control.check_interval_s > 0.0) {
    watchdog = std::thread([&] {
      const auto start = std::chrono::steady_clock::now();
      const auto interval =
          std::chrono::duration<double>(control.check_interval_s / speedup);
      const auto goal_bytes = static_cast<double>(total_bytes - have_bytes);
      while (!done.load()) {
        std::this_thread::sleep_for(interval);
        if (done.load()) break;
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count() *
            speedup;
        if (elapsed_s < control.min_observation_s) continue;
        const auto done_bytes = static_cast<double>(received.load());
        const double rate = done_bytes / elapsed_s;  // bytes per session-s
        const double remaining = goal_bytes - done_bytes;
        const double cushion =
            std::max(0.0, control.buffer_s - elapsed_s);
        if (rate <= 0.0 || remaining / rate > cushion + control.max_stall_s) {
          self_abort.store(true);
          client.abort();
          break;
        }
      }
    });
  }
  const auto finish_watchdog = [&] {
    done.store(true);
    if (watchdog.joinable()) watchdog.join();
  };

  try {
    const HttpResponse response = client.request(
        target, headers,
        [&received](std::size_t bytes_so_far, bool) {
          received.store(bytes_so_far);
        });
    finish_watchdog();
    if (response.status == 206) {
      std::size_t first = 0;
      const std::string* content_range =
          response.headers.find("Content-Range");
      if (content_range != nullptr &&
          parse_content_range_start(*content_range, first) &&
          first == have_bytes) {
        result.received_bytes = response.body.size();
        result.have_bytes =
            std::min(have_bytes + response.body.size(), total_bytes);
        if (result.have_bytes >= total_bytes) {
          result.status = ControlledAttempt::Status::kComplete;
        }
      }
      // A 206 from the wrong offset is discarded: credit unchanged, the
      // attempt reads as failed and the retry loop reissues the range.
    } else if (response.status == 200) {
      // Origin ignored (or never saw) the range: the full body replaces
      // whatever prefix we held.
      result.received_bytes = response.body.size();
      result.have_bytes = std::min(response.body.size(), total_bytes);
      if (result.have_bytes >= total_bytes) {
        result.status = ControlledAttempt::Status::kComplete;
      }
    } else if (response.status == 416 && have_bytes >= total_bytes) {
      // Resume offset == body length: the origin is telling us we already
      // hold the whole chunk.
      result.status = ControlledAttempt::Status::kComplete;
    } else if (response.status >= 300 && response.status < 500) {
      throw std::runtime_error("HTTP GET " + target + " -> " +
                               std::to_string(response.status));
    }
    // Other statuses (5xx, unexpected 416): retryable failure.
  } catch (const std::system_error& error) {
    finish_watchdog();
    const std::size_t landed = received.load();
    result.received_bytes = landed;
    result.have_bytes = std::min(have_bytes + landed, total_bytes);
    if (self_abort.load()) {
      result.status = ControlledAttempt::Status::kAborted;
    } else if (is_timeout(error)) {
      registry.counter(obs::kFetchTimeoutsTotal).increment();
    }
  } catch (const std::invalid_argument&) {
    // Truncated mid-body (or the watchdog's shutdown surfaced as framing):
    // the landed prefix stays valid under range resume.
    finish_watchdog();
    const std::size_t landed = received.load();
    result.received_bytes = landed;
    result.have_bytes = std::min(have_bytes + landed, total_bytes);
    if (self_abort.load()) {
      result.status = ControlledAttempt::Status::kAborted;
    }
  }
  return result;
}

}  // namespace

HttpChunkSource::HttpChunkSource(std::string host, std::uint16_t port,
                                 const media::VideoManifest& manifest,
                                 double speedup, sim::RetryPolicy retry,
                                 std::uint64_t jitter_seed)
    : HttpChunkSource(
          std::vector<OriginEndpoint>{OriginEndpoint{std::move(host), port}},
          manifest, speedup, retry, jitter_seed) {}

HttpChunkSource::HttpChunkSource(std::vector<OriginEndpoint> origins,
                                 const media::VideoManifest& manifest,
                                 double speedup, sim::RetryPolicy retry,
                                 std::uint64_t jitter_seed,
                                 FailoverOptions failover)
    : origins_(std::move(origins)),
      manifest_(&manifest),
      speedup_(speedup),
      retry_(retry),
      failover_(failover),
      pool_(origins_.empty() ? 1 : origins_.size(), failover.breaker,
            failover.seed),
      jitter_rng_(jitter_seed),
      epoch_(std::chrono::steady_clock::now()) {
  if (origins_.empty()) {
    throw std::invalid_argument("HttpChunkSource: need at least one origin");
  }
  if (speedup <= 0.0) {
    throw std::invalid_argument("HttpChunkSource: non-positive speedup");
  }
  if (retry_.max_attempts == 0) {
    throw std::invalid_argument("HttpChunkSource: max_attempts must be >= 1");
  }
  clients_.reserve(origins_.size());
  for (const OriginEndpoint& origin : origins_) {
    clients_.push_back(std::make_unique<HttpClient>(
        origin.host, origin.port, retry_.request_timeout_ms));
  }
}

double HttpChunkSource::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count() * speedup_;
}

std::optional<double> HttpChunkSource::attempt(std::size_t origin,
                                               const std::string& target) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter(obs::kHttpRequestsTotal, "side=\"client\"").increment();
  try {
    const HttpResponse response = clients_[origin]->request(target);
    if (response.status >= 200 && response.status < 300) {
      return static_cast<double>(response.body.size()) * 8.0 / 1000.0;
    }
    if (response.status < 500) {
      // 3xx/4xx means client and origin disagree about the video — a
      // configuration bug, not a transient transport fault.
      throw std::runtime_error("HTTP GET " + target + " -> " +
                               std::to_string(response.status));
    }
    // 5xx: transient server failure; retryable.
  } catch (const std::system_error& error) {
    if (is_timeout(error)) {
      registry.counter(obs::kFetchTimeoutsTotal).increment();
    }
  } catch (const std::invalid_argument&) {
    // Truncated/reset/malformed response; the connection was dropped.
  }
  return std::nullopt;
}

sim::FetchOutcome HttpChunkSource::fetch(std::size_t chunk,
                                         std::size_t level) {
  const std::string target = segment_target(chunk, level);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::LatencyTimer latency(&registry.histogram(obs::kHttpFetchLatencyUs));

  const double start_session_s = now();
  std::size_t burned = 0;
  if (failover_.hedge_startup && clients_.size() > 1 &&
      chunk < failover_.hedge_chunks) {
    std::optional<sim::FetchOutcome> hedged =
        try_hedged_fetch(target, start_session_s, burned);
    if (hedged.has_value()) {
      latency.stop();
      return *hedged;
    }
    // No eligible second origin, or both legs failed: the standard retry
    // loop finishes the job with whatever attempt budget remains.
  }
  sim::FetchOutcome outcome =
      fetch_with_retries(target, start_session_s, burned);
  latency.stop();
  return outcome;
}

sim::FetchOutcome HttpChunkSource::fetch_controlled(
    std::size_t chunk, std::size_t level, const sim::FetchControl& control) {
  const std::string target = segment_target(chunk, level);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::LatencyTimer latency(&registry.histogram(obs::kHttpFetchLatencyUs));
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);
  obs::Counter& failovers_total = registry.counter(obs::kOriginFailoversTotal);

  const double total_kb = manifest_->chunk_kilobits(chunk, level);
  const auto total_bytes = static_cast<std::size_t>(total_kb * 1000.0 / 8.0);
  // Resume credit in whole bytes, rounded down — never claim an undelivered
  // byte.
  std::size_t have_bytes = std::min(
      static_cast<std::size_t>(control.resume_from_kilobits * 125.0),
      total_bytes);
  std::size_t transferred_bytes = 0;

  const double start_session_s = now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;
  outcome.origin = current_origin_;

  const auto finish = [&](bool failed, bool aborted) {
    outcome.failed = failed;
    outcome.aborted = aborted;
    outcome.kilobits = static_cast<double>(transferred_bytes) * 8.0 / 1000.0;
    outcome.delivered_kilobits =
        static_cast<double>(have_bytes) * 8.0 / 1000.0;
    outcome.duration_s = std::max(now() - start_session_s, 1e-6);
    outcome.origin = current_origin_;
    latency.stop();
    return outcome;
  };

  // Hedging is deliberately bypassed in controlled mode: an aborted hedge
  // leg is indistinguishable from a lost race, and the deadline monitor
  // already bounds tail latency.
  const std::size_t budget = retry_.max_attempts * clients_.size();
  std::size_t consecutive_failures = 0;
  while (outcome.attempts < budget) {
    if (have_bytes >= total_bytes) return finish(false, false);
    ++outcome.attempts;
    const std::optional<std::size_t> origin = pool_.acquire(current_origin_);
    if (!origin.has_value()) {
      failures_total.increment();
    } else {
      if (*origin != current_origin_) {
        ++failovers_;
        failovers_total.increment();
        current_origin_ = *origin;
      }
      const ControlledAttempt result = controlled_attempt(
          *clients_[*origin], target, have_bytes, total_bytes, control,
          speedup_);
      have_bytes = result.have_bytes;
      transferred_bytes += result.received_bytes;
      if (result.resumed) ++outcome.resumes;
      switch (result.status) {
        case ControlledAttempt::Status::kComplete:
          pool_.report_success(*origin);
          return finish(false, false);
        case ControlledAttempt::Status::kAborted:
          // Self-inflicted: the breaker must not open on it and it is not
          // an attempt failure.
          return finish(false, true);
        case ControlledAttempt::Status::kFailed:
          pool_.report_failure(*origin);
          failures_total.increment();
          break;
      }
    }
    ++consecutive_failures;
    if (outcome.attempts < budget) {
      retries_total.increment();
      const double backoff_s =
          retry_.backoff_s(consecutive_failures, jitter_rng_);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff_s / speedup_));
    }
  }
  return finish(/*failed=*/have_bytes < total_bytes, false);
}

sim::FetchOutcome HttpChunkSource::fetch_with_retries(
    const std::string& target, double start_session_s,
    std::size_t burned_attempts) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);
  obs::Counter& failovers_total = registry.counter(obs::kOriginFailoversTotal);

  // The RetryPolicy budget applies per origin; the breaker usually fails
  // over long before one origin's budget is exhausted.
  const std::size_t budget = retry_.max_attempts * clients_.size();
  sim::FetchOutcome outcome;
  outcome.attempts = burned_attempts;
  outcome.origin = current_origin_;

  std::size_t consecutive_failures = 0;
  while (outcome.attempts < budget) {
    ++outcome.attempts;
    const std::optional<std::size_t> origin = pool_.acquire(current_origin_);
    if (!origin.has_value()) {
      // Every breaker is open and no probe is due. The denied consults
      // advanced each probe schedule, so a later cycle will be let through;
      // the backoff below keeps this loop from spinning.
      failures_total.increment();
    } else {
      if (*origin != current_origin_) {
        ++failovers_;
        failovers_total.increment();
        current_origin_ = *origin;
      }
      const std::optional<double> kilobits = attempt(*origin, target);
      if (kilobits.has_value()) {
        pool_.report_success(*origin);
        outcome.kilobits = *kilobits;
        outcome.origin = *origin;
        outcome.duration_s = std::max(now() - start_session_s, 1e-6);
        return outcome;
      }
      pool_.report_failure(*origin);
      failures_total.increment();
    }
    ++consecutive_failures;
    if (outcome.attempts < budget) {
      retries_total.increment();
      const double backoff_s =
          retry_.backoff_s(consecutive_failures, jitter_rng_);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff_s / speedup_));
    }
  }

  outcome.failed = true;
  outcome.kilobits = 0.0;
  outcome.duration_s = std::max(now() - start_session_s, 1e-6);
  outcome.origin = current_origin_;
  return outcome;
}

std::optional<sim::FetchOutcome> HttpChunkSource::try_hedged_fetch(
    const std::string& target, double start_session_s, std::size_t& burned) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::optional<std::size_t> primary = pool_.acquire(current_origin_);
  if (!primary.has_value()) return std::nullopt;
  if (*primary != current_origin_) {
    ++failovers_;
    registry.counter(obs::kOriginFailoversTotal).increment();
    current_origin_ = *primary;
  }

  const std::optional<std::size_t> secondary = pool_.hedge_target(*primary);
  if (!secondary.has_value()) {
    // Nobody healthy to race against; honour the claim we already made with
    // a single ordinary attempt, then let the retry loop take over.
    ++burned;
    const std::optional<double> kilobits = attempt(*primary, target);
    if (kilobits.has_value()) {
      pool_.report_success(*primary);
      sim::FetchOutcome outcome;
      outcome.attempts = burned;
      outcome.origin = *primary;
      outcome.kilobits = *kilobits;
      outcome.duration_s = std::max(now() - start_session_s, 1e-6);
      return outcome;
    }
    pool_.report_failure(*primary);
    registry.counter(obs::kFetchAttemptFailuresTotal).increment();
    return std::nullopt;
  }

  ++hedges_launched_;
  registry.counter(obs::kHedgedRequestsTotal).increment();

  struct Leg {
    bool done = false;
    std::optional<double> kilobits;
  };
  util::Mutex mutex;
  util::CondVar cv;
  Leg legs[2];
  bool hedge_ran = false;
  const std::size_t leg_origin[2] = {*primary, *secondary};

  std::thread hedge([&] {
    if (failover_.hedge_delay_s > 0.0) {
      const util::MutexLock lock(mutex);
      const bool primary_won = cv.wait_for(
          mutex,
          std::chrono::duration<double>(failover_.hedge_delay_s / speedup_),
          [&] { return legs[0].done && legs[0].kilobits.has_value(); });
      if (primary_won) {
        legs[1].done = true;  // cancelled before launch
        cv.notify_all();
        return;
      }
    }
    {
      const util::MutexLock lock(mutex);
      hedge_ran = true;
    }
    const std::optional<double> kilobits = attempt(leg_origin[1], target);
    bool primary_done = false;
    {
      const util::MutexLock lock(mutex);
      legs[1].done = true;
      legs[1].kilobits = kilobits;
      primary_done = legs[0].done;
      cv.notify_all();
    }
    // A winning hedge cancels the still-running primary leg: its blocked
    // read fails and the main thread moves on immediately instead of riding
    // the slow origin to its socket timeout.
    if (kilobits.has_value() && !primary_done) clients_[leg_origin[0]]->abort();
  });

  const std::optional<double> primary_result = attempt(leg_origin[0], target);
  bool hedge_pending = false;
  {
    const util::MutexLock lock(mutex);
    legs[0].done = true;
    legs[0].kilobits = primary_result;
    hedge_pending = !legs[1].done;
    cv.notify_all();
  }

  if (primary_result.has_value()) {
    // Primary won; cancel a still-running hedge (harmless no-op when the
    // hedge is idle or already finished).
    if (hedge_pending) clients_[leg_origin[1]]->abort();
    hedge.join();
    pool_.report_success(leg_origin[0]);
    // The hedge leg is never reported: a failure may only mean we aborted
    // it, and the breaker must not open on self-inflicted errors.
    sim::FetchOutcome outcome;
    outcome.attempts = burned + 1 + (hedge_ran ? 1 : 0);
    outcome.origin = leg_origin[0];
    outcome.kilobits = *primary_result;
    outcome.duration_s = std::max(now() - start_session_s, 1e-6);
    burned = outcome.attempts;
    return outcome;
  }

  // Primary failed — genuinely, or because a winning hedge aborted it.
  std::optional<double> hedge_result;
  {
    const util::MutexLock lock(mutex);
    cv.wait(mutex, [&] { return legs[1].done; });
    hedge_result = legs[1].kilobits;
  }
  hedge.join();

  const bool hedge_won = hedge_result.has_value();
  // Skip the primary's failure report only when the hedge finished first
  // and won (the abort case); a failure that predates the hedge's finish is
  // real even if the hedge went on to win.
  if (hedge_pending || !hedge_won) {
    pool_.report_failure(leg_origin[0]);
    registry.counter(obs::kFetchAttemptFailuresTotal).increment();
  }

  if (hedge_won) {
    pool_.report_success(leg_origin[1]);
    ++hedge_wins_;
    registry.counter(obs::kHedgeWinsTotal).increment();
    current_origin_ = leg_origin[1];
    sim::FetchOutcome outcome;
    outcome.attempts = burned + 2;
    outcome.origin = leg_origin[1];
    outcome.kilobits = *hedge_result;
    outcome.duration_s = std::max(now() - start_session_s, 1e-6);
    burned = outcome.attempts;
    return outcome;
  }

  // Both legs failed for real.
  pool_.report_failure(leg_origin[1]);
  registry.counter(obs::kFetchAttemptFailuresTotal).increment();
  burned += hedge_ran ? 2 : 1;
  return std::nullopt;
}

void HttpChunkSource::wait(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds / speedup_));
}

media::VideoManifest HttpChunkSource::fetch_manifest() {
  const HttpResponse response = clients_[0]->get("/manifest.mpd");
  media::VideoManifest fetched = media::from_mpd(response.body);
  if (fetched.level_count() != manifest_->level_count() ||
      fetched.chunk_count() != manifest_->chunk_count()) {
    throw std::runtime_error("fetch_manifest: origin disagrees with local");
  }
  return fetched;
}

sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup,
    const EmulationFaults* faults) {
  ChunkServer server(manifest, trace, speedup);
  std::optional<FaultInjector> injector;
  sim::RetryPolicy retry;
  if (faults != nullptr) {
    injector.emplace(faults->plan);
    server.set_fault_injector(&*injector);
    retry = faults->retry;
  }
  server.start();

  HttpChunkSource source("127.0.0.1", server.port(), manifest, speedup, retry);
  server.reset_trace_clock();

  sim::PlayerSession session(manifest, qoe, config);
  sim::SessionResult result = session.run(source, controller, predictor);
  server.stop();
  return result;
}

}  // namespace abr::net
