#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "media/manifest.hpp"
#include "net/http.hpp"
#include "qoe/qoe.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"

namespace abr::net {

/// A sim::ChunkSource that fetches chunks over real HTTP, converting wall
/// time to session time by the emulation speedup. Plugging this into
/// PlayerSession turns the simulator into the paper's real-player emulation
/// (Section 7.2): same controller, same buffer logic, but transfers cross an
/// actual TCP connection shaped by the server.
class HttpChunkSource final : public sim::ChunkSource {
 public:
  /// The manifest must outlive the source. `speedup` must match the
  /// server-side shaper's.
  HttpChunkSource(std::string host, std::uint16_t port,
                  const media::VideoManifest& manifest, double speedup = 1.0);

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  void wait(double seconds) override;
  double now() const override;

  /// Downloads and parses the origin's MPD; throws if it does not match the
  /// local manifest's ladder (sanity check that client and server agree).
  media::VideoManifest fetch_manifest();

 private:
  HttpClient client_;
  std::string host_;
  const media::VideoManifest* manifest_;
  double speedup_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Runs one full emulated streaming session: starts a shaped ChunkServer on
/// loopback, streams the whole video through PlayerSession with the given
/// controller/predictor, and returns the same SessionResult the simulator
/// produces. `speedup` compresses the session (e.g., 20 => a 260 s video
/// takes ~13 s of wall time).
sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup = 20.0);

}  // namespace abr::net
