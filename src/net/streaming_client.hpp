#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "media/manifest.hpp"
#include "net/http.hpp"
#include "net/origin_pool.hpp"
#include "qoe/qoe.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "testing/fault_plan.hpp"
#include "util/rng.hpp"

namespace abr::net {

/// One origin's address.
struct OriginEndpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Multi-origin behaviour knobs for HttpChunkSource. The defaults make the
/// failover machinery inert: breaker defaults, no hedging.
struct FailoverOptions {
  BreakerConfig breaker;

  /// Seeds the per-origin breaker probe jitter (see OriginPool).
  std::uint64_t seed = 0x0717c3b5ULL;

  /// When true, the first `hedge_chunks` chunks of the session each race a
  /// second request against another healthy origin (tail-latency insurance
  /// for the startup-critical chunks that gate playback). The losing leg is
  /// aborted and not reported to the breaker.
  bool hedge_startup = false;
  std::size_t hedge_chunks = 1;

  /// Session-seconds to give the primary leg a head start before launching
  /// the hedge (0 = race immediately).
  double hedge_delay_s = 0.0;
};

/// A sim::ChunkSource that fetches chunks over real HTTP, converting wall
/// time to session time by the emulation speedup. Plugging this into
/// PlayerSession turns the simulator into the paper's real-player emulation
/// (Section 7.2): same controller, same buffer logic, but transfers cross an
/// actual TCP connection shaped by the server.
///
/// Transport failures are survived, not propagated: each fetch runs the
/// RetryPolicy's attempt loop — per-attempt socket deadline, capped
/// exponential backoff with jitter from a seeded RNG — and reports
/// exhaustion through FetchOutcome::failed so PlayerSession can degrade or
/// skip. Retries, timeouts, and attempt failures are counted in the global
/// metrics registry.
///
/// With more than one origin, every attempt routes through an OriginPool:
/// per-origin circuit breakers fast-fail origins that look down, failover
/// moves traffic to the next healthy origin, and a deterministic
/// (event-counted, seeded) probe schedule revisits the broken one. A
/// single-origin source behaves exactly as it did before the pool existed.
class HttpChunkSource final : public sim::ChunkSource {
 public:
  /// Single-origin convenience constructor (the historical signature).
  /// The manifest must outlive the source. `speedup` must match the
  /// server-side shaper's. Backoff jitter derives from `jitter_seed`.
  HttpChunkSource(std::string host, std::uint16_t port,
                  const media::VideoManifest& manifest, double speedup = 1.0,
                  sim::RetryPolicy retry = {},
                  std::uint64_t jitter_seed = 0x5eedULL);

  /// Multi-origin constructor. `origins` must be non-empty; all origins must
  /// serve the same video. The per-origin retry budget is `retry`'s — the
  /// total attempt budget for a chunk is max_attempts * origins.size().
  HttpChunkSource(std::vector<OriginEndpoint> origins,
                  const media::VideoManifest& manifest, double speedup = 1.0,
                  sim::RetryPolicy retry = {},
                  std::uint64_t jitter_seed = 0x5eedULL,
                  FailoverOptions failover = {});

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override;

  /// Sub-chunk transfer over real HTTP: a resume credit turns into a
  /// "Range: bytes=N-" request (206 verified against Content-Range; a 416
  /// at a full offset means the chunk is already complete), and the abort
  /// monitor runs as a wall-clock watchdog thread that cancels the in-flight
  /// request via HttpClient::abort() when the projected completion implies a
  /// stall. Self-inflicted aborts are never reported to the circuit breaker
  /// and are not counted as attempt failures. Hedged startup is bypassed in
  /// controlled mode (an aborted hedge is indistinguishable from a loss).
  sim::FetchOutcome fetch_controlled(std::size_t chunk, std::size_t level,
                                     const sim::FetchControl& control) override;
  bool supports_range() const override { return true; }
  void wait(double seconds) override;
  double now() const override;

  /// Downloads and parses the origin's MPD (from origin 0); throws if it
  /// does not match the local manifest's ladder (sanity check that client
  /// and server agree).
  media::VideoManifest fetch_manifest();

  const OriginPool& pool() const { return pool_; }
  std::size_t failovers() const { return failovers_; }
  std::size_t hedges_launched() const { return hedges_launched_; }
  std::size_t hedge_wins() const { return hedge_wins_; }

 private:
  /// One GET of `target` against `origin`; returns delivered kilobits or
  /// nullopt on any retryable failure. Throws on 3xx/4xx (config bug).
  std::optional<double> attempt(std::size_t origin, const std::string& target);

  sim::FetchOutcome fetch_with_retries(const std::string& target,
                                       double start_session_s,
                                       std::size_t burned_attempts);

  /// Races `target` against the preferred origin and a hedge target.
  /// Returns the winning outcome, or nullopt when no second healthy origin
  /// exists or both legs failed (the caller falls back to the retry loop;
  /// `burned` reports attempts consumed here).
  std::optional<sim::FetchOutcome> try_hedged_fetch(const std::string& target,
                                                    double start_session_s,
                                                    std::size_t& burned);

  std::vector<OriginEndpoint> origins_;
  std::vector<std::unique_ptr<HttpClient>> clients_;
  const media::VideoManifest* manifest_;
  double speedup_;
  sim::RetryPolicy retry_;
  FailoverOptions failover_;
  OriginPool pool_;
  util::Rng jitter_rng_;
  std::chrono::steady_clock::time_point epoch_;
  std::size_t current_origin_ = 0;
  std::size_t failovers_ = 0;
  std::size_t hedges_launched_ = 0;
  std::size_t hedge_wins_ = 0;
};

/// Optional failure regime for run_emulated_session.
struct EmulationFaults {
  testing::FaultPlan plan;
  sim::RetryPolicy retry;
};

/// Runs one full emulated streaming session: starts a shaped ChunkServer on
/// loopback, streams the whole video through PlayerSession with the given
/// controller/predictor, and returns the same SessionResult the simulator
/// produces. `speedup` compresses the session (e.g., 20 => a 260 s video
/// takes ~13 s of wall time). When `faults` is non-null the server injects
/// the plan's failures and the client runs the given RetryPolicy.
sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup = 20.0,
    const EmulationFaults* faults = nullptr);

}  // namespace abr::net
