#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "media/manifest.hpp"
#include "net/http.hpp"
#include "qoe/qoe.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "testing/fault_plan.hpp"
#include "util/rng.hpp"

namespace abr::net {

/// A sim::ChunkSource that fetches chunks over real HTTP, converting wall
/// time to session time by the emulation speedup. Plugging this into
/// PlayerSession turns the simulator into the paper's real-player emulation
/// (Section 7.2): same controller, same buffer logic, but transfers cross an
/// actual TCP connection shaped by the server.
///
/// Transport failures are survived, not propagated: each fetch runs the
/// RetryPolicy's attempt loop — per-attempt socket deadline, capped
/// exponential backoff with jitter from a seeded RNG — and reports
/// exhaustion through FetchOutcome::failed so PlayerSession can degrade or
/// skip. Retries, timeouts, and attempt failures are counted in the global
/// metrics registry.
class HttpChunkSource final : public sim::ChunkSource {
 public:
  /// The manifest must outlive the source. `speedup` must match the
  /// server-side shaper's. Backoff jitter derives from `jitter_seed`.
  HttpChunkSource(std::string host, std::uint16_t port,
                  const media::VideoManifest& manifest, double speedup = 1.0,
                  sim::RetryPolicy retry = {},
                  std::uint64_t jitter_seed = 0x5eedULL);

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  void wait(double seconds) override;
  double now() const override;

  /// Downloads and parses the origin's MPD; throws if it does not match the
  /// local manifest's ladder (sanity check that client and server agree).
  media::VideoManifest fetch_manifest();

 private:
  HttpClient client_;
  std::string host_;
  const media::VideoManifest* manifest_;
  double speedup_;
  sim::RetryPolicy retry_;
  util::Rng jitter_rng_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Optional failure regime for run_emulated_session.
struct EmulationFaults {
  testing::FaultPlan plan;
  sim::RetryPolicy retry;
};

/// Runs one full emulated streaming session: starts a shaped ChunkServer on
/// loopback, streams the whole video through PlayerSession with the given
/// controller/predictor, and returns the same SessionResult the simulator
/// produces. `speedup` compresses the session (e.g., 20 => a 260 s video
/// takes ~13 s of wall time). When `faults` is non-null the server injects
/// the plan's failures and the client runs the given RetryPolicy.
sim::SessionResult run_emulated_session(
    const trace::ThroughputTrace& trace, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const sim::SessionConfig& config,
    sim::BitrateController& controller,
    predict::ThroughputPredictor& predictor, double speedup = 20.0,
    const EmulationFaults* faults = nullptr);

}  // namespace abr::net
