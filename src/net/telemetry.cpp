#include "net/telemetry.hpp"

#include <sstream>

#include "obs/journal.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace abr::net {

std::string statusz_json(const TelemetryStatus& status) {
  std::string out = "{";
  out += "\"uptime_s\":" + obs::json_number(status.uptime_s);
  out += ",\"draining\":";
  out += status.draining ? "true" : "false";
  out += ",\"active_connections\":" +
         std::to_string(status.active_connections);
  out += ",\"peak_connections\":" + std::to_string(status.peak_connections);
  out += ",\"shed_connections\":" + std::to_string(status.shed_connections);
  out += ",\"requests_served\":" + std::to_string(status.requests_served);
  for (const std::string& fragment : status.extra) {
    out += ',';
    out += fragment;
  }
  out += "}";
  return out;
}

bool is_telemetry_target(std::string_view target) {
  return target == "/metrics" || target == "/statusz";
}

HttpResponse telemetry_response(obs::MetricsRegistry& registry,
                                std::string_view target,
                                const TelemetryStatus& status) {
  HttpResponse response;
  if (target == "/metrics") {
    std::ostringstream body;
    registry.write_prometheus(body);
    response.headers.set("Content-Type", kPrometheusContentType);
    response.body = std::move(body).str();
  } else {
    response.headers.set("Content-Type", "application/json");
    response.body = statusz_json(status) + "\n";
  }
  return response;
}

TelemetryServer::TelemetryServer(obs::MetricsRegistry& registry,
                                 StatusSource status,
                                 TelemetryServerOptions options)
    : registry_(&registry),
      status_source_(std::move(status)),
      options_(options),
      metrics_requests_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryRequestsTotal,
          obs::telemetry_endpoint_label("/metrics"))),
      statusz_requests_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryRequestsTotal,
          obs::telemetry_endpoint_label("/statusz"))),
      scrape_latency_(&obs::MetricsRegistry::global().histogram(
          obs::kTelemetryScrapeLatencyUs, "",
          obs::exponential_buckets(10.0, 2.0, 16))),
      deadline_exceeded_(&obs::MetricsRegistry::global().counter(
          obs::kTelemetryDeadlineExceededTotal)),
      server_([this](TcpStream& stream) { handle(stream); }) {
  server_.set_max_connections(options_.max_connections);
  server_.set_reject_handler([this](TcpStream& stream) { reject(stream); });
}

void TelemetryServer::start(std::uint16_t port) {
  started_ = std::chrono::steady_clock::now();
  server_.start(port);
}

void TelemetryServer::stop() { server_.stop(); }

TelemetryStatus TelemetryServer::status() {
  if (status_source_) return status_source_();
  TelemetryStatus status;
  status.uptime_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - started_)
                        .count();
  status.draining = server_.draining();
  status.active_connections = server_.active_connections();
  status.peak_connections = server_.peak_connections();
  status.shed_connections = server_.rejected_connections();
  status.requests_served = requests_served_.load();
  return status;
}

void TelemetryServer::handle(TcpStream& stream) {
  // One request per connection, the whole exchange bounded by the deadline:
  // a scraper that dribbles its request or refuses to read the response is
  // disconnected, not waited on.
  try {
    stream.set_no_delay(true);
    stream.set_timeout_ms(options_.deadline_ms);
    HttpConnection connection(&stream);
    const obs::LatencyTimer timer(scrape_latency_);
    std::optional<HttpRequest> request;
    try {
      request = connection.read_request();
    } catch (const std::invalid_argument&) {
      HttpResponse bad;
      bad.status = 400;
      bad.reason = "Bad Request";
      bad.headers.set("Connection", "close");
      connection.write_response(bad);
      return;
    }
    if (!request.has_value()) return;
    ++requests_served_;

    HttpResponse response;
    if (request->method != "GET") {
      response.status = 405;
      response.reason = "Method Not Allowed";
      response.headers.set("Allow", "GET");
    } else if (is_telemetry_target(request->target)) {
      (request->target == "/metrics" ? metrics_requests_ : statusz_requests_)
          ->increment();
      response = telemetry_response(*registry_, request->target, status());
    } else if (request->target == "/healthz") {
      response.headers.set("Content-Type", "text/plain");
      response.body = "ok\n";
    } else {
      response.status = 404;
      response.reason = "Not Found";
    }
    response.headers.set("Connection", "close");
    connection.write_response(response);
    stream.shutdown_write();
  } catch (const std::exception&) {
    // Deadline hit (or peer gone): shed the scrape rather than queue it.
    deadline_exceeded_->increment();
  }
}

void TelemetryServer::reject(TcpStream& stream) {
  try {
    stream.set_no_delay(true);
    stream.set_timeout_ms(options_.deadline_ms);
    HttpConnection connection(&stream);
    try {
      (void)connection.read_request();
    } catch (const std::exception&) {
    }
    HttpResponse response;
    response.status = 503;
    response.reason = "Service Unavailable";
    response.headers.set("Retry-After", "1");
    response.headers.set("Connection", "close");
    response.body = "overloaded\n";
    connection.write_response(response);
    stream.shutdown_write();
  } catch (const std::exception&) {
    // Peer gone mid-shed: nothing to tell it.
  }
}

}  // namespace abr::net
