#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "net/chunk_server.hpp"
#include "net/http.hpp"
#include "obs/metrics.hpp"

namespace abr::net {

/// Content type of a Prometheus text-format (0.0.4) scrape body.
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

/// Point-in-time server state rendered by /statusz.
struct TelemetryStatus {
  double uptime_s = 0.0;
  bool draining = false;
  std::size_t active_connections = 0;
  std::size_t peak_connections = 0;
  std::size_t shed_connections = 0;
  std::size_t requests_served = 0;
  /// Extra preformatted JSON members (e.g. "\"sessions\":4"), appended
  /// verbatim after the standard fields. Each entry must be a complete
  /// `"key":value` fragment.
  std::vector<std::string> extra;
};

/// Compact single-line JSON for /statusz.
std::string statusz_json(const TelemetryStatus& status);

/// True for the request targets served by the telemetry plane (/metrics and
/// /statusz). Telemetry responses bypass traffic shaping and are written
/// under a hard per-request deadline, so a scrape can never worsen overload.
bool is_telemetry_target(std::string_view target);

/// Builds the /metrics (Prometheus text exposition) or /statusz (JSON)
/// response. `target` must satisfy is_telemetry_target().
HttpResponse telemetry_response(obs::MetricsRegistry& registry,
                                std::string_view target,
                                const TelemetryStatus& status);

struct TelemetryServerOptions {
  /// Admission cap on concurrent scrapes. Overloaded scrapers are shed with
  /// a terse 503 on their own short-lived thread — never queued.
  std::size_t max_connections = 4;

  /// Hard per-request deadline: socket reads and writes past this are
  /// abandoned (and counted in abr_telemetry_deadline_exceeded_total).
  int deadline_ms = 250;
};

/// Standalone scrape endpoint for client-side processes (`abrsim
/// --telemetry-port`): serves GET /metrics, /statusz, and /healthz from a
/// registry, one request per connection, bounded by
/// TelemetryServerOptions::deadline_ms. The registry must outlive the
/// server.
class TelemetryServer {
 public:
  /// Optional callback supplying the /statusz payload; when absent the
  /// server reports its own uptime and transport counters.
  using StatusSource = std::function<TelemetryStatus()>;

  explicit TelemetryServer(obs::MetricsRegistry& registry,
                           StatusSource status = nullptr,
                           TelemetryServerOptions options = {});

  /// Port 0 picks an ephemeral port.
  void start(std::uint16_t port = 0);
  void stop();

  std::uint16_t port() const { return server_.port(); }
  std::size_t requests_served() const { return requests_served_.load(); }
  std::size_t shed_connections() const {
    return server_.rejected_connections();
  }
  const TcpServer& transport() const { return server_; }

 private:
  void handle(TcpStream& stream);
  void reject(TcpStream& stream);
  TelemetryStatus status();

  obs::MetricsRegistry* registry_;
  StatusSource status_source_;
  TelemetryServerOptions options_;
  std::chrono::steady_clock::time_point started_;
  std::atomic<std::size_t> requests_served_{0};

  obs::Counter* metrics_requests_;
  obs::Counter* statusz_requests_;
  obs::Histogram* scrape_latency_;
  obs::Counter* deadline_exceeded_;

  TcpServer server_;
};

}  // namespace abr::net
