#include "obs/exposition.hpp"

#include <cctype>
#include <map>
#include <optional>

#include "util/checked_parse.hpp"

namespace abr::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!head(name.front())) return false;
  for (const char c : name.substr(1)) {
    if (!tail(c)) return false;
  }
  return true;
}

bool valid_label_name(std::string_view name) {
  if (name.empty() || name.front() == ':') return false;
  return valid_metric_name(name);
}

/// A sample value: finite decimal, +Inf, -Inf, or NaN.
bool valid_value(std::string_view token) {
  if (token.empty()) return false;
  if (token == "+Inf" || token == "-Inf" || token == "NaN") return true;
  const std::string text(token);
  char* end = nullptr;
  std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

/// Strips a histogram sample suffix, returning the base family name.
std::string_view family_of(std::string_view name) {
  for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

struct HistogramState {
  std::uint64_t last_cumulative = 0;
  std::optional<std::uint64_t> inf_bucket;
  std::optional<std::uint64_t> count;
  std::size_t count_line = 0;
};

/// Syntax-checks the label body between braces.
bool parse_labels(std::string_view body) {
  while (!body.empty()) {
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) return false;
    if (!valid_label_name(body.substr(0, eq))) return false;
    body.remove_prefix(eq + 1);
    if (body.empty() || body.front() != '"') return false;
    body.remove_prefix(1);
    while (!body.empty() && body.front() != '"') {
      if (body.front() == '\\') {
        if (body.size() < 2) return false;
        body.remove_prefix(2);
      } else {
        body.remove_prefix(1);
      }
    }
    if (body.empty()) return false;  // unterminated value
    body.remove_prefix(1);           // closing quote
    if (!body.empty()) {
      if (body.front() != ',') return false;
      body.remove_prefix(1);
      if (body.empty()) return false;  // trailing comma
    }
  }
  return true;
}

/// Extracts the value of label `name` from a label body (no syntax checks).
std::optional<std::string> label_value(std::string_view body,
                                       std::string_view name) {
  while (!body.empty()) {
    const std::size_t eq = body.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = body.substr(0, eq);
    body.remove_prefix(eq + 1);
    if (body.empty() || body.front() != '"') return std::nullopt;
    body.remove_prefix(1);
    std::string value;
    while (!body.empty() && body.front() != '"') {
      if (body.front() == '\\' && body.size() >= 2) {
        value += body[1];
        body.remove_prefix(2);
      } else {
        value += body.front();
        body.remove_prefix(1);
      }
    }
    if (body.empty()) return std::nullopt;
    body.remove_prefix(1);
    if (key == name) return value;
    if (!body.empty() && body.front() == ',') body.remove_prefix(1);
  }
  return std::nullopt;
}

}  // namespace

std::vector<ExpositionIssue> validate_prometheus_text(std::string_view text) {
  std::vector<ExpositionIssue> issues;
  std::map<std::string, std::string, std::less<>> declared_type;
  // Histogram bookkeeping keyed by family{labels-without-le}.
  std::map<std::string, HistogramState> histograms;

  const auto issue = [&](std::size_t line, std::string message) {
    issues.push_back({line, std::move(message)});
  };

  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const std::size_t newline = text.find('\n');
    std::string_view line = text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size()
                                                         : newline + 1);
    if (line.empty()) continue;

    if (line.front() == '#') {
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          issue(line_number, "malformed # TYPE line");
          continue;
        }
        const std::string_view name = rest.substr(0, space);
        const std::string_view kind = rest.substr(space + 1);
        if (!valid_metric_name(name)) {
          issue(line_number,
                "invalid metric name in # TYPE: " + std::string(name));
        }
        if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
            kind != "summary" && kind != "untyped") {
          issue(line_number, "unknown metric type: " + std::string(kind));
        }
        declared_type[std::string(name)] = std::string(kind);
      }
      continue;  // # HELP and other comments are free-form
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' &&
           line[name_end] != ' ') {
      ++name_end;
    }
    const std::string_view name = line.substr(0, name_end);
    if (!valid_metric_name(name)) {
      issue(line_number, "invalid metric name: " + std::string(name));
      continue;
    }
    std::string_view rest = line.substr(name_end);
    std::string_view labels;
    if (!rest.empty() && rest.front() == '{') {
      const std::size_t close = rest.find('}');
      if (close == std::string_view::npos) {
        issue(line_number, "unterminated label body");
        continue;
      }
      labels = rest.substr(1, close - 1);
      if (!parse_labels(labels)) {
        issue(line_number, "malformed label body: " + std::string(labels));
      }
      rest.remove_prefix(close + 1);
    }
    if (rest.empty() || rest.front() != ' ') {
      issue(line_number, "missing sample value");
      continue;
    }
    rest.remove_prefix(1);
    const std::size_t value_end = rest.find(' ');
    const std::string_view value_token = rest.substr(0, value_end);
    if (!valid_value(value_token)) {
      issue(line_number, "unparsable sample value: " + std::string(value_token));
      continue;
    }
    if (value_end != std::string_view::npos) {
      const std::string_view timestamp = rest.substr(value_end + 1);
      if (!valid_value(timestamp)) {
        issue(line_number, "unparsable timestamp: " + std::string(timestamp));
      }
    }

    // Type discipline: the sample must belong to a declared family, and the
    // declaration must precede it (we only see prior declarations here).
    const std::string_view family = family_of(name);
    const auto declared = declared_type.find(family);
    const auto declared_self = declared_type.find(name);
    const bool histogram_sample =
        declared != declared_type.end() && declared->second == "histogram" &&
        family.size() != name.size();
    if (declared_self == declared_type.end() && !histogram_sample) {
      issue(line_number,
            "sample precedes its # TYPE declaration: " + std::string(name));
      continue;
    }

    if (histogram_sample) {
      const std::string_view suffix = name.substr(family.size());
      if (suffix == "_bucket") {
        const auto le = label_value(labels, "le");
        if (!le.has_value()) {
          issue(line_number, "histogram bucket without le label");
          continue;
        }
        // Key buckets by their family + non-le labels so labeled variants
        // track independently.
        std::string residual(labels);
        const std::size_t le_pos = residual.find("le=\"");
        if (le_pos != std::string::npos) {
          std::size_t start = le_pos;
          std::size_t end = residual.find('"', le_pos + 4);
          end = end == std::string::npos ? residual.size() : end + 1;
          if (end < residual.size() && residual[end] == ',') {
            ++end;  // swallow the separator of a following pair
          } else if (start > 0 && residual[start - 1] == ',') {
            --start;  // swallow the separator of a preceding pair
          }
          residual.erase(start, end - start);
        }
        std::string key(family);
        key += '{';
        key += residual;
        key += '}';
        HistogramState& state = histograms[key];
        std::uint64_t cumulative = 0;
        if (!util::parse_u64(value_token, cumulative)) {
          issue(line_number, "histogram bucket value is not a count");
        }
        if (cumulative < state.last_cumulative) {
          issue(line_number, "histogram bucket counts are not cumulative");
        }
        state.last_cumulative = cumulative;
        if (*le == "+Inf") state.inf_bucket = cumulative;
      } else if (suffix == "_count") {
        std::string key(family);
        key += '{';
        key += std::string(labels);
        key += '}';
        HistogramState& state = histograms[key];
        std::uint64_t count = 0;
        if (!util::parse_u64(value_token, count)) {
          issue(line_number, "histogram count value is not a count");
        }
        state.count = count;
        state.count_line = line_number;
      }
    }
  }

  for (const auto& [key, state] : histograms) {
    if (!state.inf_bucket.has_value()) {
      issue(state.count_line == 0 ? line_number : state.count_line,
            "histogram " + key + " has no le=\"+Inf\" bucket");
    } else if (state.count.has_value() && *state.count != *state.inf_bucket) {
      issue(state.count_line,
            "histogram " + key + " _count disagrees with its +Inf bucket");
    }
  }
  return issues;
}

std::string format_exposition_issues(
    const std::vector<ExpositionIssue>& issues) {
  std::string out;
  for (const ExpositionIssue& issue : issues) {
    out += "line " + std::to_string(issue.line) + ": " + issue.message + "\n";
  }
  return out;
}

}  // namespace abr::obs
