#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace abr::obs {

/// One problem found by validate_prometheus_text (1-based line number).
struct ExpositionIssue {
  std::size_t line = 0;
  std::string message;

  friend bool operator==(const ExpositionIssue&,
                         const ExpositionIssue&) = default;
};

/// Validates Prometheus text exposition format (version 0.0.4): metric and
/// label name syntax, parsable sample values, `# TYPE` declarations naming a
/// known kind and preceding their family's samples, and histogram
/// consistency (cumulative `_bucket` counts that end in an `le="+Inf"`
/// bucket equal to `_count`). Returns every issue found; an empty vector
/// means the text is a valid scrape body. CI's telemetry smoke job and the
/// unit tests both gate on this.
std::vector<ExpositionIssue> validate_prometheus_text(std::string_view text);

/// Formats issues as "line N: message" lines (empty string when clean).
std::string format_exposition_issues(const std::vector<ExpositionIssue>& issues);

}  // namespace abr::obs
