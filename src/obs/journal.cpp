#include "obs/journal.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Inf/NaN; journals only carry finite quantities, but a
    // defensive null beats emitting an unparsable token.
    return "null";
  }
  char buffer[40];
  // Integral doubles print as plain integers ("350", not "3.5e+02"); %lld
  // covers every integer a double represents exactly.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  // Shortest ascending-precision search. Normal values start at 15: %g
  // strips trailing zeros, so when fewer than 15 digits round-trip the
  // 15-digit rendering already collapses to that shorter string (the parsed
  // string lies within half an ulp of the value, so digits 1..15 are the
  // short string padded with zeros or nines). Subnormals break that bound
  // (their ulps are enormous) and keep the full search from 1.
  const int first_precision =
      std::fabs(value) >= 2.2250738585072014e-308 ? 15 : 1;
  for (int precision = first_precision; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

namespace {

/// Builds one flat JSON object; keys are emitted in call order, so a given
/// entry type always serializes its fields in the same sequence.
class LineBuilder {
 public:
  void string(const char* key, std::string_view value) {
    field(key) += '"';
    line_ += json_escape(value);
    line_ += '"';
  }
  void number(const char* key, double value) { field(key) += json_number(value); }
  void integer(const char* key, std::size_t value) {
    field(key) += std::to_string(value);
  }
  void boolean(const char* key, bool value) {
    field(key) += value ? "true" : "false";
  }
  std::string finish() {
    line_ += '}';
    return std::move(line_);
  }

 private:
  std::string& field(const char* key) {
    line_ += line_.empty() ? '{' : ',';
    line_ += '"';
    line_ += key;
    line_ += "\":";
    return line_;
  }
  std::string line_;
};

}  // namespace

Journal::Journal(std::ostream& out)
    : out_(&out),
      records_counter_(
          &MetricsRegistry::global().counter(kJournalRecordsTotal)) {}

Journal::Journal(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::binary)),
      out_(owned_.get()),
      records_counter_(
          &MetricsRegistry::global().counter(kJournalRecordsTotal)) {
  if (!*owned_) {
    throw std::runtime_error("Journal: cannot open " + path);
  }
}

void Journal::write_line(const std::string& line) {
  const util::MutexLock lock(mutex_);
  *out_ << line << '\n';
  ++records_;
  records_counter_->increment();
}

void Journal::flush() {
  const util::MutexLock lock(mutex_);
  out_->flush();
}

std::size_t Journal::records() const {
  const util::MutexLock lock(mutex_);
  return records_;
}

void Journal::chunk(const ChunkJournalEntry& entry) {
  LineBuilder line;
  line.string("type", "chunk");
  line.string("session", entry.session);
  line.string("algo", entry.algorithm);
  line.integer("chunk", entry.chunk);
  line.integer("level", entry.level);
  line.number("t_s", entry.t_s);
  line.number("bitrate_kbps", entry.bitrate_kbps);
  line.number("download_s", entry.download_s);
  line.number("throughput_kbps", entry.throughput_kbps);
  line.number("buffer_before_s", entry.buffer_before_s);
  line.number("buffer_after_s", entry.buffer_after_s);
  line.number("rebuffer_s", entry.rebuffer_s);
  line.number("wait_s", entry.wait_s);
  line.number("qoe_utility", entry.qoe_utility);
  line.number("qoe_switch_penalty", entry.qoe_switch_penalty);
  line.number("qoe_rebuffer_charge", entry.qoe_rebuffer_charge);
  line.number("qoe_chunk", entry.qoe_chunk);
  line.number("qoe_cum", entry.qoe_cumulative);
  line.number("predicted_kbps", entry.predicted_kbps);
  line.number("effective_kbps", entry.effective_kbps);
  line.number("error_window", entry.error_window);
  line.integer("nodes", entry.nodes_expanded);
  line.boolean("warm_start", entry.warm_start);
  line.string("path", entry.solver_path);
  line.integer("origin", entry.origin);
  line.integer("attempts", entry.attempts);
  line.integer("faults", entry.faults);
  line.boolean("degraded", entry.degraded);
  line.boolean("skipped", entry.skipped);
  line.boolean("aborted", entry.aborted);
  line.boolean("partial", entry.partial);
  line.number("wasted_kb", entry.wasted_kb);
  line.integer("resumed_from_byte", entry.resumed_from_byte);
  write_line(line.finish());
}

void Journal::session(const SessionJournalEntry& entry) {
  LineBuilder line;
  line.string("type", "session");
  line.string("session", entry.session);
  line.string("algo", entry.algorithm);
  line.integer("chunks", entry.chunks);
  line.number("duration_s", entry.duration_s);
  line.number("startup_delay_s", entry.startup_delay_s);
  line.number("qoe", entry.qoe);
  line.number("qoe_utility", entry.qoe_utility);
  line.number("qoe_switch_penalty", entry.qoe_switch_penalty);
  line.number("qoe_rebuffer_charge", entry.qoe_rebuffer_charge);
  line.number("qoe_startup_charge", entry.qoe_startup_charge);
  line.number("avg_bitrate_kbps", entry.average_bitrate_kbps);
  line.number("rebuffer_s", entry.rebuffer_s);
  line.integer("switches", entry.switches);
  line.integer("degraded", entry.degraded_chunks);
  line.integer("skipped", entry.skipped_chunks);
  line.integer("attempts", entry.attempts);
  line.integer("faults", entry.faults);
  line.integer("aborted", entry.aborted_chunks);
  line.integer("partial", entry.partial_chunks);
  line.integer("resumes", entry.resumes);
  line.number("wasted_kb", entry.wasted_kb);
  write_line(line.finish());
}

}  // namespace abr::obs
