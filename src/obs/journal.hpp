#pragma once

#include <cstddef>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::obs {

class Counter;

/// One journal line per chunk decision: the full Eq. (5) attribution for
/// that chunk, the predictor/solver state the decision was made from, and
/// the delivery provenance of the bytes. Every field is caller-supplied and
/// derived from virtual session time, so two seeded runs of the same
/// configuration serialize byte-identical journals (the determinism
/// contract `abrsim --faults` already honours for chunk logs).
struct ChunkJournalEntry {
  std::string session;    ///< e.g. "s0" (single player) or "p3" (fleet)
  std::string algorithm;  ///< BitrateController::name()
  std::size_t chunk = 0;
  std::size_t level = 0;
  double t_s = 0.0;  ///< virtual session time the download began

  double bitrate_kbps = 0.0;
  double download_s = 0.0;
  double throughput_kbps = 0.0;
  double buffer_before_s = 0.0;
  double buffer_after_s = 0.0;
  double rebuffer_s = 0.0;
  double wait_s = 0.0;

  // Eq. (5) attribution for this chunk: QoE = sum(utility) -
  // sum(switch_penalty) - sum(rebuffer_charge) - startup_charge. The
  // per-chunk contribution is utility - switch_penalty - rebuffer_charge;
  // the startup charge lives on the session record.
  double qoe_utility = 0.0;          ///< q(R_k)
  double qoe_switch_penalty = 0.0;   ///< lambda * |q_k - q_{k-1}|
  double qoe_rebuffer_charge = 0.0;  ///< mu * rebuffer + mu_event per stall
  double qoe_chunk = 0.0;            ///< this chunk's net contribution
  double qoe_cumulative = 0.0;       ///< running sum (startup term excluded)

  // Predictor state at decision time.
  double predicted_kbps = 0.0;  ///< raw forecast (harmonic mean et al.)
  double effective_kbps = 0.0;  ///< post-robustness deflation; == predicted
                                ///< when no deflation applies
  double error_window = 0.0;    ///< max abs fractional prediction error over
                                ///< the tracker window (RobustMPC state)

  // Solver effort behind the decision.
  std::size_t nodes_expanded = 0;  ///< branch-and-bound nodes (0 off-solver)
  bool warm_start = false;         ///< solve seeded with the previous plan
  std::string solver_path = "rule";  ///< "online" | "table" | "rule"

  // Delivery provenance.
  std::size_t origin = 0;
  std::size_t attempts = 1;
  std::size_t faults = 0;  ///< faults/attempt failures hit by this fetch
  bool degraded = false;
  bool skipped = false;

  // Sub-chunk delivery (zero/false outside an abort policy).
  bool aborted = false;   ///< a transfer was cancelled by the abort monitor
  bool partial = false;   ///< only a prefix of the chunk was played
  double wasted_kb = 0.0; ///< delivered kilobits discarded by aborts/switches
  std::size_t resumed_from_byte = 0;  ///< last range-resume offset (0 = none)
};

/// One journal line per finished session: totals plus the startup charge
/// that completes the Eq. (5) decomposition begun by the chunk records.
struct SessionJournalEntry {
  std::string session;
  std::string algorithm;
  std::size_t chunks = 0;
  double duration_s = 0.0;
  double startup_delay_s = 0.0;

  double qoe = 0.0;  ///< Eq. (5) total, == sum(qoe_chunk) - startup charge
  double qoe_utility = 0.0;
  double qoe_switch_penalty = 0.0;
  double qoe_rebuffer_charge = 0.0;
  double qoe_startup_charge = 0.0;  ///< mu_startup * startup_delay_s

  double average_bitrate_kbps = 0.0;
  double rebuffer_s = 0.0;
  std::size_t switches = 0;
  std::size_t degraded_chunks = 0;
  std::size_t skipped_chunks = 0;
  std::size_t attempts = 0;
  std::size_t faults = 0;

  // Sub-chunk delivery aggregates (zero outside an abort policy).
  std::size_t aborted_chunks = 0;
  std::size_t partial_chunks = 0;
  std::size_t resumes = 0;
  double wasted_kb = 0.0;
};

/// Escapes `text` for use inside a JSON string literal.
std::string json_escape(std::string_view text);

/// Deterministic, locale-independent JSON number: the shortest "%.*g"
/// rendering that round-trips through strtod to the same double. Same
/// double in, same bytes out — the property byte-identical journals rest on.
std::string json_number(double value);

/// Structured session journal: one flat JSON object per line (JSONL).
/// Thread-safe (fleet simulations share one journal across players); record
/// order is the emit order, which is deterministic wherever the caller is.
/// The journal never reads a clock — timestamps are the caller's virtual
/// time — so it is safe to use from the deterministic layers.
class Journal {
 public:
  /// Writes to a caller-owned stream (must outlive the journal).
  explicit Journal(std::ostream& out);

  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit Journal(const std::string& path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  void chunk(const ChunkJournalEntry& entry) ABR_EXCLUDES(mutex_);
  void session(const SessionJournalEntry& entry) ABR_EXCLUDES(mutex_);

  /// Flushes the underlying stream (drain paths call this so partial
  /// journals survive a hard shutdown).
  void flush() ABR_EXCLUDES(mutex_);

  std::size_t records() const ABR_EXCLUDES(mutex_);

 private:
  void write_line(const std::string& line) ABR_EXCLUDES(mutex_);

  std::unique_ptr<std::ofstream> owned_;
  std::ostream* out_;
  Counter* records_counter_;
  mutable util::Mutex mutex_;
  std::size_t records_ ABR_GUARDED_BY(mutex_) = 0;
};

}  // namespace abr::obs
