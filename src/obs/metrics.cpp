#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace abr::obs {

namespace {

/// Shortest round-trippable-enough rendering for the text format ("0.005",
/// not "0.005000000000000000104...").
std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
  return current + delta;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no bucket bounds");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds not strictly increasing");
  }
}

void Histogram::observe(double value) {
  if (!enabled()) return;
  // Prometheus convention: bucket i counts value <= bounds[i]; the last
  // bucket is +Inf.
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.bucket_counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snap.bucket_counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = snap.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  snap.p50 = snap.percentile(0.50);
  snap.p90 = snap.percentile(0.90);
  snap.p99 = snap.percentile(0.99);
  return snap;
}

double HistogramSnapshot::percentile(double q) const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    if (bucket_counts[i] == 0) continue;
    const std::uint64_t next = cumulative + bucket_counts[i];
    if (rank <= static_cast<double>(next)) {
      // Interpolate within bucket i. Edge buckets use the observed extremes
      // instead of -Inf / +Inf.
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(bucket_counts[i]);
      return std::clamp(lo + within * (hi - lo), min, max);
    }
    cumulative = next;
  }
  return max;
}

// --- Bucket layouts --------------------------------------------------------

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument("exponential_buckets: bad parameters");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  if (width <= 0.0 || count == 0) {
    throw std::invalid_argument("linear_buckets: bad parameters");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + static_cast<double>(i) * width);
  }
  return bounds;
}

std::vector<double> default_latency_buckets_us() {
  return exponential_buckets(0.25, 2.0, 24);  // 0.25 us .. ~4.2 s
}

// --- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(/*enabled=*/false);
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& labels) {
  const util::MutexLock lock(mutex_);
  auto& entry = counters_[key(name, labels)];
  if (!entry.instrument) {
    entry.name = name;
    entry.labels = labels;
    entry.instrument.reset(new Counter(&enabled_));
  }
  return *entry.instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& labels) {
  const util::MutexLock lock(mutex_);
  auto& entry = gauges_[key(name, labels)];
  if (!entry.instrument) {
    entry.name = name;
    entry.labels = labels;
    entry.instrument.reset(new Gauge(&enabled_));
  }
  return *entry.instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& labels,
                                      std::vector<double> bounds) {
  const util::MutexLock lock(mutex_);
  auto& entry = histograms_[key(name, labels)];
  if (!entry.instrument) {
    entry.name = name;
    entry.labels = labels;
    entry.instrument.reset(new Histogram(
        &enabled_,
        bounds.empty() ? default_latency_buckets_us() : std::move(bounds)));
  }
  return *entry.instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [k, entry] : counters_) {
    snap.counters[k] = entry.instrument->value();
  }
  for (const auto& [k, entry] : gauges_) {
    snap.gauges[k] = entry.instrument->value();
  }
  for (const auto& [k, entry] : histograms_) {
    snap.histograms[k] = entry.instrument->snapshot();
  }
  return snap;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const util::MutexLock lock(mutex_);

  // The maps are keyed by name{labels}, and '{' sorts after every
  // identifier character, so label variants of one family are adjacent:
  // emit the # TYPE header whenever the family name changes.
  const char* last_family = "";
  const auto family_header = [&](const std::string& name, const char* type) {
    if (name != last_family) {
      out << "# TYPE " << name << " " << type << "\n";
      last_family = name.c_str();
    }
  };

  for (const auto& [k, entry] : counters_) {
    family_header(entry.name, "counter");
    out << k << " " << format_double(entry.instrument->value()) << "\n";
  }
  last_family = "";
  for (const auto& [k, entry] : gauges_) {
    family_header(entry.name, "gauge");
    out << k << " " << format_double(entry.instrument->value()) << "\n";
  }
  last_family = "";
  for (const auto& [k, entry] : histograms_) {
    family_header(entry.name, "histogram");
    const HistogramSnapshot snap = entry.instrument->snapshot();
    const std::string separator = entry.labels.empty() ? "" : ",";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.bucket_counts.size(); ++i) {
      cumulative += snap.bucket_counts[i];
      const std::string le =
          i < snap.bounds.size() ? format_double(snap.bounds[i]) : "+Inf";
      out << entry.name << "_bucket{" << entry.labels << separator << "le=\""
          << le << "\"} " << cumulative << "\n";
    }
    const std::string labels =
        entry.labels.empty() ? "" : "{" + entry.labels + "}";
    out << entry.name << "_sum" << labels << " " << format_double(snap.sum)
        << "\n";
    out << entry.name << "_count" << labels << " " << snap.count << "\n";
  }
}

void MetricsRegistry::reset() {
  const util::MutexLock lock(mutex_);
  for (auto& [k, entry] : counters_) {
    entry.instrument->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [k, entry] : gauges_) {
    entry.instrument->value_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [k, entry] : histograms_) {
    Histogram& h = *entry.instrument;
    for (auto& bucket : h.buckets_) bucket.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_.store(0.0, std::memory_order_relaxed);
    h.min_.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    h.max_.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
  }
}

}  // namespace abr::obs
