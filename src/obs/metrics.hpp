#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::obs {

/// Atomic += for doubles via a CAS loop (std::atomic<double>::fetch_add is
/// C++20 but not uniformly available); returns the new value.
double atomic_add(std::atomic<double>& target, double delta);

/// Monotonically increasing value (events, bytes, accumulated seconds).
/// Thread-safe; increments are relaxed atomics. When the owning registry is
/// disabled, increment() is a relaxed load + branch and nothing else.
class Counter {
 public:
  void increment(double delta = 1.0) {
    if (!enabled()) return;
    atomic_add(value_, delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins instantaneous value (buffer level, active connections).
class Gauge {
 public:
  void set(double value) {
    if (!enabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void add(double delta) {
    if (!enabled()) return;
    atomic_add(value_, delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Point-in-time copy of a histogram, with percentile estimation.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Bucket upper bounds (`le` in Prometheus terms); bucket_counts has one
  /// extra trailing entry for the +Inf overflow bucket. Counts are
  /// per-bucket, not cumulative.
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;

  /// Estimates the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket containing the rank, clamped to the observed [min, max].
  /// The error is bounded by the width of that bucket.
  double percentile(double q) const;
};

/// Fixed-bucket histogram. observe() is wait-free: a binary search over the
/// bucket bounds plus a handful of relaxed atomic updates. Disabled cost is
/// one relaxed load + branch.
class Histogram {
 public:
  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

  /// Consistent-enough copy for reporting: buckets are read individually
  /// (no global lock), so a snapshot taken while writers are active may be
  /// off by in-flight observations.
  HistogramSnapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
  const std::atomic<bool>* enabled_;
};

/// `count` bounds starting at `start`, each `factor` times the previous
/// (Prometheus ExponentialBuckets). start > 0, factor > 1.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

/// `count` bounds `start, start + width, ...` (Prometheus LinearBuckets).
std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count);

/// Default bounds for latency-in-microseconds histograms: 0.25 us .. ~4 s,
/// factor 2 — covers a FastMPC table lookup (sub-us) through a slow MPC
/// horizon solve or an HTTP transfer, with ~2x worst-case percentile error.
std::vector<double> default_latency_buckets_us();

struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named-instrument registry. Get-or-create takes a mutex; returned
/// references are stable for the registry's lifetime, so hot paths should
/// hold onto them. The global() instance starts *disabled* (the kill
/// switch): every instrument bound to it no-ops until someone opts in via
/// set_enabled(true), e.g. `abrsim --metrics`. Instances you construct
/// yourself default to enabled.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by the library's built-in instrumentation.
  /// Starts disabled.
  static MetricsRegistry& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// `labels` is a raw Prometheus label body, e.g. `algorithm="MPC"`; the
  /// same (name, labels) pair always returns the same instrument.
  Counter& counter(const std::string& name, const std::string& labels = "")
      ABR_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& labels = "")
      ABR_EXCLUDES(mutex_);

  /// Empty `bounds` selects default_latency_buckets_us(). Bounds must be
  /// strictly increasing; they are fixed at first registration (later calls
  /// with different bounds return the existing instrument).
  Histogram& histogram(const std::string& name, const std::string& labels = "",
                       std::vector<double> bounds = {}) ABR_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const ABR_EXCLUDES(mutex_);

  /// Prometheus text exposition format (# TYPE lines, cumulative
  /// `_bucket{le=...}` plus `_sum`/`_count` for histograms).
  void write_prometheus(std::ostream& out) const ABR_EXCLUDES(mutex_);

  /// Zeroes every instrument's value. Instruments stay registered, so
  /// references held by callers remain valid.
  void reset() ABR_EXCLUDES(mutex_);

 private:
  template <typename T>
  struct Named {
    std::string name;    ///< metric family name
    std::string labels;  ///< label body, may be empty
    std::unique_ptr<T> instrument;
  };

  static std::string key(const std::string& name, const std::string& labels) {
    return labels.empty() ? name : name + "{" + labels + "}";
  }

  std::atomic<bool> enabled_;
  mutable util::Mutex mutex_;
  std::map<std::string, Named<Counter>> counters_ ABR_GUARDED_BY(mutex_);
  std::map<std::string, Named<Gauge>> gauges_ ABR_GUARDED_BY(mutex_);
  std::map<std::string, Named<Histogram>> histograms_ ABR_GUARDED_BY(mutex_);
};

}  // namespace abr::obs
