#include "obs/names.hpp"

#include "obs/metrics.hpp"

namespace abr::obs {

std::string solve_algorithm_label(const std::string& algorithm) {
  return "algorithm=\"" + algorithm + "\"";
}

std::string fault_kind_label(const std::string& kind) {
  return "kind=\"" + kind + "\"";
}

std::string origin_label(std::size_t origin) {
  return "origin=\"" + std::to_string(origin) + "\"";
}

std::string breaker_transition_label(std::size_t origin, const char* to) {
  return "origin=\"" + std::to_string(origin) + "\",to=\"" + to + "\"";
}

std::string bad_request_label(const char* reason) {
  return std::string("reason=\"") + reason + "\"";
}

std::string telemetry_endpoint_label(const char* endpoint) {
  return std::string("endpoint=\"") + endpoint + "\"";
}

std::string shard_label(std::size_t shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

void register_standard_metrics(MetricsRegistry& registry) {
  for (const char* algorithm : {"MPC", "RobustMPC", "FastMPC"}) {
    registry.histogram(kSolveLatencyUs, solve_algorithm_label(algorithm));
  }
  registry.histogram(kHorizonNodesExpanded, "",
                     exponential_buckets(1.0, 2.0, 20));
  registry.histogram(kTableBuildSeconds, "",
                     exponential_buckets(0.001, 2.0, 20));
  registry.counter(kChunksDownloadedTotal);
  registry.counter(kRebufferSecondsTotal);
  registry.counter(kWaitSecondsTotal);
  registry.counter(kSessionsTotal);
  registry.histogram(kChunkDownloadSeconds, "",
                     exponential_buckets(0.01, 2.0, 16));
  registry.gauge(kBufferLevelSeconds);
  registry.counter(kHttpRequestsTotal);
  registry.counter(kHttpBytesServedTotal);
  registry.gauge(kHttpActiveConnections);
  registry.histogram(kHttpRequestLatencyUs);
  registry.histogram(kHttpFetchLatencyUs);
  registry.counter(kFetchRetriesTotal);
  registry.counter(kFetchTimeoutsTotal);
  registry.counter(kFetchAttemptFailuresTotal);
  registry.counter(kChunksDegradedTotal);
  registry.counter(kChunksSkippedTotal);
  for (const char* kind :
       {"latency_spike", "stall", "partial_body", "reset", "http_error"}) {
    registry.counter(kFaultsInjectedTotal, fault_kind_label(kind));
  }
  registry.counter(kOriginShedTotal);
  registry.counter(kOriginFailoversTotal);
  registry.counter(kHedgedRequestsTotal);
  registry.counter(kHedgeWinsTotal);
  registry.gauge(kHttpPeakConnections);
  registry.counter(kDrainForcedClosesTotal);
  for (const char* reason : {"malformed", "method", "not_found", "range"}) {
    registry.counter(kHttpBadRequestsTotal, bad_request_label(reason));
  }
  registry.counter(kChunksAbortedTotal);
  registry.counter(kChunksPartialTotal);
  registry.counter(kWastedKilobitsTotal);
  registry.counter(kRangeResumesTotal);
  registry.counter(kHttpRangeRequestsTotal);
  for (const char* endpoint : {"/metrics", "/statusz"}) {
    registry.counter(kTelemetryRequestsTotal,
                     telemetry_endpoint_label(endpoint));
  }
  registry.histogram(kTelemetryScrapeLatencyUs, "",
                     exponential_buckets(10.0, 2.0, 16));
  registry.counter(kTelemetryDeadlineExceededTotal);
  registry.counter(kJournalRecordsTotal);
  registry.gauge(kFleetSessionsActive);
  registry.counter(kFleetBucketsEvictedTotal);
  registry.gauge(kServerShardConnections, shard_label(0));
  registry.histogram(kFleetStepLatencyUs, "",
                     exponential_buckets(1.0, 2.0, 20));
}

}  // namespace abr::obs
