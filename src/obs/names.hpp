#pragma once

#include <cstddef>
#include <string>

namespace abr::obs {

class MetricsRegistry;

// Canonical metric names shared by the built-in instrumentation, so that
// dashboards, tests, and the Prometheus dump all agree. All latency
// histograms are in microseconds (suffix _us); accumulating counters of
// seconds carry _seconds_total.

// Controller decision path (core/).
inline constexpr char kSolveLatencyUs[] = "abr_solve_latency_us";
inline constexpr char kDecideLatencyUs[] = "abr_decide_latency_us";
inline constexpr char kHorizonNodesExpanded[] = "abr_horizon_nodes_expanded";
inline constexpr char kTableBuildSeconds[] = "abr_table_build_seconds";

// Player session (sim/).
inline constexpr char kChunksDownloadedTotal[] = "abr_chunks_downloaded_total";
inline constexpr char kRebufferSecondsTotal[] = "abr_rebuffer_seconds_total";
inline constexpr char kWaitSecondsTotal[] = "abr_wait_seconds_total";
inline constexpr char kChunkDownloadSeconds[] = "abr_chunk_download_seconds";
inline constexpr char kBufferLevelSeconds[] = "abr_buffer_level_s";
inline constexpr char kSessionsTotal[] = "abr_sessions_total";

// Shared-link multi-player simulation (sim/multiplayer).
inline constexpr char kMultiplayerJainFairness[] =
    "abr_multiplayer_jain_fairness";
inline constexpr char kMultiplayerLinkUtilization[] =
    "abr_multiplayer_link_utilization";

// HTTP origin + client (net/).
inline constexpr char kHttpRequestsTotal[] = "abr_http_requests_total";
inline constexpr char kHttpBytesServedTotal[] = "abr_http_bytes_served_total";
inline constexpr char kHttpActiveConnections[] = "abr_http_active_connections";
inline constexpr char kHttpRequestLatencyUs[] = "abr_http_request_latency_us";
inline constexpr char kHttpFetchLatencyUs[] =
    "abr_http_client_fetch_latency_us";

// Fault injection and resilience (testing/, net/, sim/).
inline constexpr char kFetchRetriesTotal[] = "abr_fetch_retries_total";
inline constexpr char kFetchTimeoutsTotal[] = "abr_fetch_timeouts_total";
inline constexpr char kFetchAttemptFailuresTotal[] =
    "abr_fetch_attempt_failures_total";
inline constexpr char kChunksDegradedTotal[] = "abr_chunks_degraded_total";
inline constexpr char kChunksSkippedTotal[] = "abr_chunks_skipped_total";
inline constexpr char kFaultsInjectedTotal[] = "abr_faults_injected_total";

// Origin failover and overload hardening (net/). The shed counter and the
// breaker fast-fail counter are deliberately distinct families: the first
// means "origin overloaded" (admission control sent a 503), the second means
// "origin considered down" (the client refused to even try). Dashboards need
// to tell those apart.
inline constexpr char kOriginShedTotal[] = "abr_origin_shed_total";
inline constexpr char kBreakerFastFailTotal[] =
    "abr_origin_breaker_fastfail_total";
inline constexpr char kBreakerTransitionsTotal[] =
    "abr_origin_breaker_transitions_total";
inline constexpr char kOriginFailoversTotal[] = "abr_origin_failovers_total";
inline constexpr char kHedgedRequestsTotal[] = "abr_hedged_requests_total";
inline constexpr char kHedgeWinsTotal[] = "abr_hedge_wins_total";
inline constexpr char kHttpBadRequestsTotal[] = "abr_http_bad_requests_total";
inline constexpr char kHttpPeakConnections[] = "abr_http_peak_connections";
inline constexpr char kDrainForcedClosesTotal[] =
    "abr_server_drain_forced_closes_total";

// Sub-chunk delivery: mid-chunk abort/re-decide, range resume, partial
// playback (sim/, net/). Wasted kilobits are bytes that flowed but were
// discarded (aborted suffixes, prefix credit lost to a level switch) — the
// honest cost of acting inside a chunk.
inline constexpr char kChunksAbortedTotal[] = "abr_chunks_aborted_total";
inline constexpr char kChunksPartialTotal[] = "abr_chunks_partial_total";
inline constexpr char kWastedKilobitsTotal[] = "abr_wasted_kilobits_total";
inline constexpr char kRangeResumesTotal[] = "abr_range_resumes_total";
inline constexpr char kHttpRangeRequestsTotal[] =
    "abr_http_range_requests_total";

// Live telemetry plane (net/telemetry, obs/journal, sim/fleet_series).
inline constexpr char kTelemetryRequestsTotal[] =
    "abr_telemetry_requests_total";
inline constexpr char kTelemetryScrapeLatencyUs[] =
    "abr_telemetry_scrape_latency_us";
inline constexpr char kTelemetryDeadlineExceededTotal[] =
    "abr_telemetry_deadline_exceeded_total";
inline constexpr char kJournalRecordsTotal[] = "abr_journal_records_total";
inline constexpr char kFleetSessionsActive[] = "abr_fleet_sessions_active";
inline constexpr char kFleetBucketsEvictedTotal[] =
    "abr_fleet_buckets_evicted_total";

// Sharded serving core + SoA fleet engine (net/epoll_server,
// sim/fleet_engine).
inline constexpr char kServerShardConnections[] =
    "abr_server_shard_connections";
inline constexpr char kFleetStepLatencyUs[] = "abr_fleet_step_latency_us";

/// Label body for a solve-latency histogram, e.g. algorithm="MPC".
std::string solve_algorithm_label(const std::string& algorithm);

/// Label body for a fault counter, e.g. kind="reset".
std::string fault_kind_label(const std::string& kind);

/// Label body for a per-origin counter, e.g. origin="2".
std::string origin_label(std::size_t origin);

/// Label body for a breaker transition counter, e.g. origin="0",to="open".
std::string breaker_transition_label(std::size_t origin, const char* to);

/// Label body for a bad-request counter, e.g. reason="malformed".
std::string bad_request_label(const char* reason);

/// Label body for a telemetry request counter, e.g. endpoint="/metrics".
std::string telemetry_endpoint_label(const char* endpoint);

/// Label body for a per-reactor-shard gauge, e.g. shard="3".
std::string shard_label(std::size_t shard);

/// Pre-registers the standard metric families above (with the solve-latency
/// histograms for MPC, RobustMPC, and FastMPC) so a metrics dump shows the
/// full schema, zero-valued, even for instruments the current run never
/// touched.
void register_standard_metrics(MetricsRegistry& registry);

}  // namespace abr::obs
