#pragma once

#include <chrono>

#include "obs/metrics.hpp"

namespace abr::obs {

/// RAII wall-clock timer: records its lifetime in microseconds into a
/// Histogram on destruction. Null histogram or a disabled registry arms
/// nothing — the constructor then costs one relaxed load and no clock read,
/// which is what keeps disabled-mode overhead near zero on hot paths
/// (FastMPC lookups are a few ns; reading the clock would dominate them).
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* histogram)
      : histogram_(histogram != nullptr && histogram->enabled() ? histogram
                                                                : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  ~LatencyTimer() { stop(); }

  /// Records now; subsequent calls (and destruction) are no-ops. Returns
  /// the elapsed microseconds, or 0 if the timer was never armed.
  double stop() {
    if (histogram_ == nullptr) return 0.0;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    histogram_->observe(us);
    histogram_ = nullptr;
    return us;
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace abr::obs
