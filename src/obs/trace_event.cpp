#include "obs/trace_event.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace abr::obs {

namespace {

std::int64_t to_us(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * 1e6));
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  append_escaped(out, text);
  out += '"';
}

void append_json_number(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no Inf/NaN literals
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out += buf;
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += "{";
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) out += ",";
    first = false;
    append_json_string(out, arg.key);
    out += ":";
    if (const auto* i = std::get_if<std::int64_t>(&arg.value)) {
      out += std::to_string(*i);
    } else if (const auto* d = std::get_if<double>(&arg.value)) {
      append_json_number(out, *d);
    } else {
      append_json_string(out, std::get<std::string>(arg.value));
    }
  }
  out += "}";
}

}  // namespace

void TraceWriter::push(TraceEvent event) {
  const util::MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceWriter::complete(std::string name, std::string category,
                           double start_s, double duration_s, int tid,
                           std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.ts_us = to_us(start_s);
  event.dur_us = std::max<std::int64_t>(to_us(duration_s), 0);
  event.tid = tid;
  event.args = std::move(args);
  push(std::move(event));
}

void TraceWriter::instant(std::string name, std::string category, double ts_s,
                          int tid, std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.ts_us = to_us(ts_s);
  event.tid = tid;
  event.args = std::move(args);
  push(std::move(event));
}

void TraceWriter::counter(std::string name, double ts_s, double value) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_us = to_us(ts_s);
  event.args.emplace_back("value", value);
  push(std::move(event));
}

void TraceWriter::set_process_name(std::string name, int pid) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = "process_name";
  event.phase = 'M';
  event.pid = pid;
  event.args.emplace_back("name", std::move(name));
  push(std::move(event));
}

void TraceWriter::set_thread_name(std::string name, int tid, int pid) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args.emplace_back("name", std::move(name));
  push(std::move(event));
}

std::size_t TraceWriter::event_count() const {
  const util::MutexLock lock(mutex_);
  return events_.size();
}

std::size_t TraceWriter::event_count(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const TraceEvent& event : events_) {
    if (event.name == name) ++count;
  }
  return count;
}

std::vector<TraceEvent> TraceWriter::events() const {
  const util::MutexLock lock(mutex_);
  return events_;
}

void TraceWriter::write(std::ostream& out) const {
  const util::MutexLock lock(mutex_);
  std::string json;
  json.reserve(events_.size() * 96 + 128);
  json += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) json += ",\n";
    first = false;
    json += "{\"name\":";
    append_json_string(json, event.name);
    if (!event.category.empty()) {
      json += ",\"cat\":";
      append_json_string(json, event.category);
    }
    json += ",\"ph\":\"";
    json += event.phase;
    json += "\"";
    if (event.phase != 'M') {
      json += ",\"ts\":" + std::to_string(event.ts_us);
    }
    if (event.phase == 'X') {
      json += ",\"dur\":" + std::to_string(event.dur_us);
    }
    if (event.phase == 'i') {
      json += ",\"s\":\"t\"";  // instant scope: thread
    }
    json += ",\"pid\":" + std::to_string(event.pid);
    json += ",\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) {
      json += ",\"args\":";
      append_args(json, event.args);
    }
    json += "}";
  }
  json += "],\"displayTimeUnit\":\"ms\",";
  json += "\"otherData\":{\"generator\":\"mpc-abr/obs\"}}";
  out << json;
}

void TraceWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceWriter: cannot open " + path);
  }
  write(out);
  out << "\n";
}

}  // namespace abr::obs
