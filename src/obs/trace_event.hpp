#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace abr::obs {

/// One argument attached to a trace event; rendered into the event's
/// "args" object.
struct TraceArg {
  std::string key;
  std::variant<std::int64_t, double, std::string> value;

  TraceArg(std::string k, std::int64_t v) : key(std::move(k)), value(v) {}
  TraceArg(std::string k, std::size_t v)
      : key(std::move(k)), value(static_cast<std::int64_t>(v)) {}
  TraceArg(std::string k, double v) : key(std::move(k)), value(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
};

/// One entry in Chrome's trace_event format. Timestamps and durations are
/// microseconds, matching the format spec.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';  ///< 'X' complete, 'C' counter, 'i' instant, 'M' metadata
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  ///< complete events only
  int pid = 1;
  int tid = 0;
  std::vector<TraceArg> args;
};

/// Collects trace events and serializes them as Chrome trace-event JSON
/// (the "JSON Object Format": {"traceEvents": [...]}), loadable in
/// chrome://tracing or Perfetto. Thread-safe: recording appends under a
/// mutex. Times are given in *seconds* (the project-wide unit) and stored
/// as integer microseconds.
///
/// A session timeline uses the session clock (virtual time in simulation),
/// so downloads, rebuffers, and waits lay out exactly as the player
/// experienced them; controller decide() spans carry their wall-clock
/// duration at the session timestamp where the decision happened.
class TraceWriter {
 public:
  explicit TraceWriter(bool enabled = true) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Complete ('X') event covering [start_s, start_s + duration_s).
  void complete(std::string name, std::string category, double start_s,
                double duration_s, int tid = 0,
                std::vector<TraceArg> args = {});

  /// Instant ('i') event at ts_s.
  void instant(std::string name, std::string category, double ts_s,
               int tid = 0, std::vector<TraceArg> args = {});

  /// Counter ('C') event: a named time series sampled at ts_s. Chrome plots
  /// one track per (pid, name).
  void counter(std::string name, double ts_s, double value);

  /// Metadata naming the process / thread tracks in the viewer.
  void set_process_name(std::string name, int pid = 1);
  void set_thread_name(std::string name, int tid, int pid = 1);

  std::size_t event_count() const ABR_EXCLUDES(mutex_);
  std::size_t event_count(std::string_view name) const ABR_EXCLUDES(mutex_);
  /// Copy, for tests.
  std::vector<TraceEvent> events() const ABR_EXCLUDES(mutex_);

  /// Writes {"traceEvents": [...], ...}; valid JSON regardless of event
  /// names/args (strings are escaped).
  void write(std::ostream& out) const ABR_EXCLUDES(mutex_);
  void save(const std::string& path) const ABR_EXCLUDES(mutex_);

 private:
  void push(TraceEvent event) ABR_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ ABR_GUARDED_BY(mutex_);
  bool enabled_;
};

}  // namespace abr::obs
