#include "predict/error_tracker.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace abr::predict {

PredictionErrorTracker::PredictionErrorTracker(std::size_t window)
    : window_(window) {
  assert(window > 0);
}

void PredictionErrorTracker::record(double predicted_kbps,
                                    double actual_kbps) {
  if (predicted_kbps <= 0.0 || actual_kbps <= 0.0) return;
  errors_.push_back(std::abs(predicted_kbps - actual_kbps) / actual_kbps);
  while (errors_.size() > window_) errors_.pop_front();
}

double PredictionErrorTracker::max_abs_error() const {
  if (errors_.empty()) return 0.0;
  return *std::max_element(errors_.begin(), errors_.end());
}

double PredictionErrorTracker::lower_bound(double predicted_kbps) const {
  return predicted_kbps / (1.0 + max_abs_error());
}

void PredictionErrorTracker::reset() { errors_.clear(); }

}  // namespace abr::predict
