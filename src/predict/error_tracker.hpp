#pragma once

#include <cstddef>
#include <deque>

namespace abr::predict {

/// Tracks recent prediction error and derives the throughput lower bound
/// RobustMPC feeds to the regular MPC solve (Section 7.1.2 of the paper):
///
///   C_lower = C_hat / (1 + err),
///
/// where err is the maximum absolute percentage error of the past `window`
/// chunks. Errors are measured relative to the *actual* throughput.
class PredictionErrorTracker {
 public:
  explicit PredictionErrorTracker(std::size_t window = 5);

  /// Records that `predicted_kbps` was forecast for a chunk whose measured
  /// throughput turned out to be `actual_kbps`. Non-positive samples are
  /// ignored (no information).
  void record(double predicted_kbps, double actual_kbps);

  /// Maximum absolute percentage error over the window; 0 when empty.
  double max_abs_error() const;

  /// The RobustMPC bound: prediction / (1 + max_abs_error()).
  double lower_bound(double predicted_kbps) const;

  std::size_t sample_count() const { return errors_.size(); }
  void reset();

 private:
  std::size_t window_;
  std::deque<double> errors_;  ///< absolute percentage errors, newest last
};

}  // namespace abr::predict
