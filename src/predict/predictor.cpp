#include "predict/predictor.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/stats.hpp"

namespace abr::predict {

namespace {

/// Last `window` entries of the history (or fewer if short).
std::span<const double> tail(std::span<const double> history,
                             std::size_t window) {
  if (history.size() <= window) return history;
  return history.subspan(history.size() - window);
}

/// True mean throughput over each of the next `horizon` windows of
/// `chunk_duration_s` starting at `now_s`.
std::vector<double> true_future_means(const PredictionInput& input,
                                      std::size_t horizon) {
  if (input.truth == nullptr) {
    throw std::logic_error(
        "oracle predictor requires ground-truth trace (simulation only)");
  }
  assert(input.chunk_duration_s > 0.0);
  std::vector<double> result(horizon);
  for (std::size_t i = 0; i < horizon; ++i) {
    const double t0 = input.now_s + static_cast<double>(i) * input.chunk_duration_s;
    const double t1 = t0 + input.chunk_duration_s;
    result[i] = input.truth->kilobits_between(t0, t1) / input.chunk_duration_s;
  }
  return result;
}

}  // namespace

HarmonicMeanPredictor::HarmonicMeanPredictor(std::size_t window)
    : window_(window) {
  assert(window > 0);
}

std::vector<double> HarmonicMeanPredictor::predict(const PredictionInput& input,
                                                   std::size_t horizon) {
  const double estimate = util::harmonic_mean(tail(input.history_kbps, window_));
  return std::vector<double>(horizon, estimate);
}

std::string HarmonicMeanPredictor::name() const {
  return "harmonic-mean-" + std::to_string(window_);
}

SlidingMeanPredictor::SlidingMeanPredictor(std::size_t window)
    : window_(window) {
  assert(window > 0);
}

std::vector<double> SlidingMeanPredictor::predict(const PredictionInput& input,
                                                  std::size_t horizon) {
  const double estimate = util::mean(tail(input.history_kbps, window_));
  return std::vector<double>(horizon, estimate);
}

std::string SlidingMeanPredictor::name() const {
  return "sliding-mean-" + std::to_string(window_);
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

std::vector<double> EwmaPredictor::predict(const PredictionInput& input,
                                           std::size_t horizon) {
  if (input.history_kbps.empty()) return std::vector<double>(horizon, 0.0);
  double estimate = input.history_kbps.front();
  for (std::size_t i = 1; i < input.history_kbps.size(); ++i) {
    estimate = alpha_ * input.history_kbps[i] + (1.0 - alpha_) * estimate;
  }
  return std::vector<double>(horizon, estimate);
}

std::string EwmaPredictor::name() const { return "ewma"; }

std::vector<double> PerfectPredictor::predict(const PredictionInput& input,
                                              std::size_t horizon) {
  return true_future_means(input, horizon);
}

std::string PerfectPredictor::name() const { return "perfect"; }

NoisyOraclePredictor::NoisyOraclePredictor(double error_level,
                                           std::uint64_t seed)
    : error_level_(error_level), rng_(seed) {
  assert(error_level >= 0.0);
}

std::vector<double> NoisyOraclePredictor::predict(const PredictionInput& input,
                                                  std::size_t horizon) {
  std::vector<double> forecast = true_future_means(input, horizon);
  for (double& value : forecast) {
    const double magnitude = rng_.uniform(0.0, 2.0 * error_level_);
    const double sign = rng_.uniform() < 0.5 ? -1.0 : 1.0;
    // Clamp so a corrupted forecast can never go non-positive.
    value *= std::max(0.05, 1.0 + sign * magnitude);
  }
  return forecast;
}

std::string NoisyOraclePredictor::name() const {
  return "noisy-oracle-" + std::to_string(error_level_);
}

double average_prediction_error(const trace::ThroughputTrace& trace,
                                ThroughputPredictor& predictor,
                                double interval_s, double duration_s) {
  assert(interval_s > 0.0 && duration_s > interval_s);
  std::vector<double> history;
  double error_sum = 0.0;
  std::size_t error_count = 0;
  const auto steps = static_cast<std::size_t>(duration_s / interval_s);
  for (std::size_t i = 0; i < steps; ++i) {
    const double t0 = static_cast<double>(i) * interval_s;
    const double actual = trace.kilobits_between(t0, t0 + interval_s) / interval_s;
    if (!history.empty()) {
      PredictionInput input;
      input.history_kbps = history;
      input.chunk_duration_s = interval_s;
      const double predicted = predictor.predict(input, 1).front();
      if (predicted > 0.0 && actual > 0.0) {
        error_sum += (predicted - actual) / actual;
        ++error_count;
      }
    }
    history.push_back(actual);
  }
  return error_count == 0 ? 0.0
                          : error_sum / static_cast<double>(error_count);
}

}  // namespace abr::predict
