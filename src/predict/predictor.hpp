#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/throughput_trace.hpp"
#include "util/rng.hpp"

namespace abr::predict {

/// Everything a predictor may observe when forecasting the next chunks.
struct PredictionInput {
  /// Measured average throughput of each past chunk download, oldest first,
  /// kbps. Empty before the first chunk completes.
  std::span<const double> history_kbps;

  /// Current session time, seconds. Used by oracle predictors only.
  double now_s = 0.0;

  /// Nominal chunk play duration, seconds. Oracle predictors forecast the
  /// true mean throughput over successive windows of this length.
  double chunk_duration_s = 0.0;

  /// Ground-truth trace. Null outside simulation (e.g., when driving a real
  /// network session); oracle predictors then throw.
  const trace::ThroughputTrace* truth = nullptr;
};

/// Forecasts per-chunk average throughput for the next `horizon` chunks.
///
/// The paper treats predictor design as out of scope (Section 3.3) and
/// characterizes predictors by their error; accordingly this interface
/// covers both practical history-based estimators (harmonic mean — the
/// paper's choice, Section 7.1.2) and synthetic oracles with controlled
/// error used by the sensitivity experiments (Fig. 11a, Fig. 12b).
class ThroughputPredictor {
 public:
  virtual ~ThroughputPredictor() = default;

  /// Returns `horizon` per-chunk throughput forecasts, kbps. A forecast of
  /// 0 means "no information" (empty history); controllers fall back to the
  /// lowest bitrate in that case.
  virtual std::vector<double> predict(const PredictionInput& input,
                                      std::size_t horizon) = 0;

  virtual std::string name() const = 0;
};

/// Harmonic mean of the last `window` per-chunk throughputs, applied as a
/// flat forecast across the horizon. The paper's production predictor:
/// robust to the single-chunk outliers that bias arithmetic means high.
class HarmonicMeanPredictor final : public ThroughputPredictor {
 public:
  explicit HarmonicMeanPredictor(std::size_t window = 5);

  std::vector<double> predict(const PredictionInput& input,
                              std::size_t horizon) override;
  std::string name() const override;

 private:
  std::size_t window_;
};

/// Arithmetic sliding mean (the estimator the harmonic mean is compared
/// against; biased high under bursty throughput).
class SlidingMeanPredictor final : public ThroughputPredictor {
 public:
  explicit SlidingMeanPredictor(std::size_t window = 5);

  std::vector<double> predict(const PredictionInput& input,
                              std::size_t horizon) override;
  std::string name() const override;

 private:
  std::size_t window_;
};

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; higher alpha tracks faster.
class EwmaPredictor final : public ThroughputPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.4);

  std::vector<double> predict(const PredictionInput& input,
                              std::size_t horizon) override;
  std::string name() const override;

 private:
  double alpha_;
};

/// Perfect foresight: the true mean throughput over each of the next
/// `horizon` chunk-duration windows. Implements the paper's "MPC-OPT"
/// configuration ("exact MPC with perfect throughput prediction for the
/// next 5 chunks", Section 7.1.2). Requires `input.truth`.
class PerfectPredictor final : public ThroughputPredictor {
 public:
  std::vector<double> predict(const PredictionInput& input,
                              std::size_t horizon) override;
  std::string name() const override;
};

/// Ground truth corrupted by controlled multiplicative noise: each forecast
/// is true * (1 + e) with |e| ~ Uniform(0, 2 * error_level) and random sign,
/// so the *average* absolute percentage error equals `error_level`. This is
/// the noise model of Fig. 11a ("the prediction output as being a
/// combination of the true throughput with added random noise according to
/// the average error level"). Requires `input.truth`.
class NoisyOraclePredictor final : public ThroughputPredictor {
 public:
  NoisyOraclePredictor(double error_level, std::uint64_t seed);

  std::vector<double> predict(const PredictionInput& input,
                              std::size_t horizon) override;
  std::string name() const override;

  double error_level() const { return error_level_; }

 private:
  double error_level_;
  util::Rng rng_;
};

/// Signed mean percentage prediction error of a history-based predictor over
/// one trace, evaluated on `interval_s`-second interval averages (the Fig. 7
/// right-panel statistic). Positive = over-estimation.
double average_prediction_error(const trace::ThroughputTrace& trace,
                                ThroughputPredictor& predictor,
                                double interval_s, double duration_s);

}  // namespace abr::predict
