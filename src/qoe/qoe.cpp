#include "qoe/qoe.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace abr::qoe {

QoeWeights preset_weights(QoePreference preference) {
  switch (preference) {
    case QoePreference::kBalanced:
      return QoeWeights::balanced();
    case QoePreference::kAvoidInstability:
      return QoeWeights::avoid_instability();
    case QoePreference::kAvoidRebuffering:
      return QoeWeights::avoid_rebuffering();
  }
  return QoeWeights::balanced();
}

const char* preference_name(QoePreference preference) {
  switch (preference) {
    case QoePreference::kBalanced:
      return "Balanced";
    case QoePreference::kAvoidInstability:
      return "AvoidInstability";
    case QoePreference::kAvoidRebuffering:
      return "AvoidRebuffering";
  }
  return "?";
}

QoeModel::QoeModel(media::QualityFunction quality, QoeWeights weights)
    : quality_(std::move(quality)), weights_(weights) {
  if (weights_.lambda < 0.0 || weights_.mu < 0.0 ||
      weights_.mu_startup < 0.0 || weights_.mu_event < 0.0) {
    throw std::invalid_argument("QoeWeights must be non-negative");
  }
}

double QoeModel::session_qoe(std::span<const double> bitrates_kbps,
                             std::span<const double> rebuffer_s,
                             double startup_delay_s) const {
  if (bitrates_kbps.size() != rebuffer_s.size()) {
    throw std::invalid_argument("session_qoe: per-chunk vectors differ in size");
  }
  Accumulator acc(*this);
  for (std::size_t k = 0; k < bitrates_kbps.size(); ++k) {
    acc.add_chunk(bitrates_kbps[k], rebuffer_s[k]);
  }
  acc.set_startup_delay(startup_delay_s);
  return acc.total();
}

void QoeModel::Accumulator::add_chunk(double bitrate_kbps, double rebuffer_s) {
  assert(rebuffer_s >= 0.0);
  const double q = model_->quality(bitrate_kbps);
  quality_sum_ += q;
  if (has_prev_) smoothness_sum_ += std::abs(q - prev_quality_);
  prev_quality_ = q;
  has_prev_ = true;
  rebuffer_sum_ += rebuffer_s;
  if (rebuffer_s > 0.0) ++rebuffer_events_;
  ++chunks_;
}

void QoeModel::Accumulator::set_startup_delay(double seconds) {
  assert(seconds >= 0.0);
  startup_s_ = seconds;
}

double QoeModel::Accumulator::total() const {
  const QoeWeights& w = model_->weights();
  return quality_sum_ - w.lambda * smoothness_sum_ - w.mu * rebuffer_sum_ -
         w.mu_event * static_cast<double>(rebuffer_events_) -
         w.mu_startup * startup_s_;
}

}  // namespace abr::qoe
