#pragma once

#include <span>
#include <string>

#include "media/quality.hpp"

namespace abr::qoe {

/// Weights of the QoE objective, Eq. (5) of the paper:
///
///   QoE = sum q(R_k) - lambda * sum |q(R_{k+1}) - q(R_k)|
///         - mu * total_rebuffer_s - mu_startup * startup_delay_s
///
/// Units (with the identity quality function): quality terms are kbps, so
/// mu = 3000 means one second of rebuffering costs as much QoE as lowering
/// one chunk by 3000 kbps (Section 7.1.1).
struct QoeWeights {
  double lambda = 1.0;       ///< quality-variation penalty
  double mu = 3000.0;        ///< rebuffer penalty, per second
  double mu_startup = 3000.0;///< startup-delay penalty, per second

  /// Penalty per rebuffering *event* (footnote 3 of the paper: the count
  /// formulation of the rebuffer term). 0 — the paper's default — charges
  /// duration only; a positive value additionally charges each stall.
  double mu_event = 0.0;

  /// The paper's three preference presets (Fig. 11b).
  static QoeWeights balanced() { return {1.0, 3000.0, 3000.0}; }
  static QoeWeights avoid_instability() { return {3.0, 3000.0, 3000.0}; }
  static QoeWeights avoid_rebuffering() { return {1.0, 6000.0, 6000.0}; }

  friend bool operator==(const QoeWeights&, const QoeWeights&) = default;
};

/// Named preset selector used by benches and examples.
enum class QoePreference { kBalanced, kAvoidInstability, kAvoidRebuffering };

QoeWeights preset_weights(QoePreference preference);
const char* preference_name(QoePreference preference);

/// Evaluates the Eq. (5) objective: quality function q(.) plus weights.
///
/// Two usage modes:
///  - batch: session_qoe() over complete per-chunk vectors (used by the
///    offline planners and by result post-processing);
///  - incremental: an Accumulator fed one chunk at a time (used by the
///    player session as it runs).
class QoeModel {
 public:
  QoeModel(media::QualityFunction quality, QoeWeights weights);

  const QoeWeights& weights() const { return weights_; }
  const media::QualityFunction& quality_function() const { return quality_; }

  /// q(R) for a bitrate in kbps.
  double quality(double bitrate_kbps) const { return quality_(bitrate_kbps); }

  /// Total QoE for a finished session. `bitrates_kbps` and `rebuffer_s`
  /// must have equal length (per-chunk); `startup_delay_s` may be 0 when the
  /// startup term is excluded (Fig. 11d).
  double session_qoe(std::span<const double> bitrates_kbps,
                     std::span<const double> rebuffer_s,
                     double startup_delay_s) const;

  /// Incremental evaluator with identical semantics to session_qoe.
  class Accumulator {
   public:
    explicit Accumulator(const QoeModel& model) : model_(&model) {}

    /// Adds chunk k with its selected bitrate and the rebuffering incurred
    /// while downloading it.
    void add_chunk(double bitrate_kbps, double rebuffer_s);

    void set_startup_delay(double seconds);

    double total() const;
    double total_quality() const { return quality_sum_; }
    double total_smoothness_penalty() const { return smoothness_sum_; }
    double total_rebuffer_s() const { return rebuffer_sum_; }
    std::size_t rebuffer_events() const { return rebuffer_events_; }
    std::size_t chunk_count() const { return chunks_; }

   private:
    const QoeModel* model_;
    double quality_sum_ = 0.0;
    double smoothness_sum_ = 0.0;  ///< sum |q_k - q_{k-1}|, unweighted
    double rebuffer_sum_ = 0.0;
    std::size_t rebuffer_events_ = 0;
    double startup_s_ = 0.0;
    double prev_quality_ = 0.0;
    bool has_prev_ = false;
    std::size_t chunks_ = 0;
  };

 private:
  media::QualityFunction quality_;
  QoeWeights weights_;
};

}  // namespace abr::qoe
