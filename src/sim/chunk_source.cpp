#include "sim/chunk_source.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace abr::sim {

double RetryPolicy::backoff_s(std::size_t failed_attempts,
                              util::Rng& rng) const {
  assert(failed_attempts >= 1);
  const double base =
      initial_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempts - 1));
  const double capped = std::min(base, max_backoff_s);
  const double jitter = jitter_fraction * rng.uniform(-1.0, 1.0);
  return std::max(0.0, capped * (1.0 + jitter));
}

TraceChunkSource::TraceChunkSource(const trace::ThroughputTrace& trace,
                                   const media::VideoManifest& manifest)
    : trace_(&trace), manifest_(&manifest) {}

FetchOutcome TraceChunkSource::fetch(std::size_t chunk, std::size_t level) {
  const double kilobits = manifest_->chunk_kilobits(chunk, level);
  const double end_s = trace_->transfer_end_time(kilobits, now_s_);
  FetchOutcome outcome;
  outcome.duration_s = end_s - now_s_;
  outcome.kilobits = kilobits;
  now_s_ = end_s;
  return outcome;
}

FetchOutcome TraceChunkSource::fetch_controlled(std::size_t chunk,
                                                std::size_t level,
                                                const FetchControl& control) {
  const double total_kb = manifest_->chunk_kilobits(chunk, level);
  const double resume_kb =
      std::clamp(control.resume_from_kilobits, 0.0, total_kb);
  double goal_kb = total_kb - resume_kb;
  if (control.truncate_after_fraction < 1.0) {
    goal_kb *= std::max(0.0, control.truncate_after_fraction);
  }

  FetchOutcome outcome;
  if (goal_kb <= 0.0) {
    outcome.delivered_kilobits = resume_kb;
    return outcome;  // the resume credit already covers the chunk
  }

  const double start_s = now_s_;
  const double end_s = trace_->transfer_end_time(goal_kb, start_s);
  if (resume_kb > 0.0) outcome.resumes = 1;
  if (control.abort_enabled && control.check_interval_s > 0.0) {
    // Deterministic deadline monitor: walk fixed checkpoints through the
    // transfer and project its completion from the delivered-so-far rate.
    // Abort when the projection says the remaining bytes arrive later than
    // the playback cushion plus the tolerated stall — the virtual-time
    // equivalent of cancelling the socket mid-body.
    for (double t = start_s + control.check_interval_s; t < end_s;
         t += control.check_interval_s) {
      const double elapsed = t - start_s;
      if (elapsed < control.min_observation_s) continue;
      const double done_kb = trace_->kilobits_between(start_s, t);
      const double remaining_kb = goal_kb - done_kb;
      const double rate_kbps = done_kb / elapsed;
      const double cushion_s = std::max(0.0, control.buffer_s - elapsed);
      const bool stall_projected =
          rate_kbps <= 0.0 ||
          remaining_kb / rate_kbps > cushion_s + control.max_stall_s;
      if (stall_projected) {
        outcome.aborted = true;
        outcome.duration_s = elapsed;
        outcome.kilobits = done_kb;
        outcome.delivered_kilobits = resume_kb + done_kb;
        now_s_ = t;
        return outcome;
      }
    }
  }
  outcome.duration_s = end_s - start_s;
  outcome.kilobits = goal_kb;
  outcome.delivered_kilobits = resume_kb + goal_kb;
  now_s_ = end_s;
  return outcome;
}

void TraceChunkSource::wait(double seconds) {
  assert(seconds >= 0.0);
  now_s_ += seconds;
}

}  // namespace abr::sim
