#include "sim/chunk_source.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace abr::sim {

double RetryPolicy::backoff_s(std::size_t failed_attempts,
                              util::Rng& rng) const {
  assert(failed_attempts >= 1);
  const double base =
      initial_backoff_s *
      std::pow(backoff_multiplier, static_cast<double>(failed_attempts - 1));
  const double capped = std::min(base, max_backoff_s);
  const double jitter = jitter_fraction * rng.uniform(-1.0, 1.0);
  return std::max(0.0, capped * (1.0 + jitter));
}

TraceChunkSource::TraceChunkSource(const trace::ThroughputTrace& trace,
                                   const media::VideoManifest& manifest)
    : trace_(&trace), manifest_(&manifest) {}

FetchOutcome TraceChunkSource::fetch(std::size_t chunk, std::size_t level) {
  const double kilobits = manifest_->chunk_kilobits(chunk, level);
  const double end_s = trace_->transfer_end_time(kilobits, now_s_);
  FetchOutcome outcome;
  outcome.duration_s = end_s - now_s_;
  outcome.kilobits = kilobits;
  now_s_ = end_s;
  return outcome;
}

void TraceChunkSource::wait(double seconds) {
  assert(seconds >= 0.0);
  now_s_ += seconds;
}

}  // namespace abr::sim
