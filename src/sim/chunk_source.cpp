#include "sim/chunk_source.hpp"

#include <cassert>

namespace abr::sim {

TraceChunkSource::TraceChunkSource(const trace::ThroughputTrace& trace,
                                   const media::VideoManifest& manifest)
    : trace_(&trace), manifest_(&manifest) {}

FetchOutcome TraceChunkSource::fetch(std::size_t chunk, std::size_t level) {
  const double kilobits = manifest_->chunk_kilobits(chunk, level);
  const double end_s = trace_->transfer_end_time(kilobits, now_s_);
  FetchOutcome outcome;
  outcome.duration_s = end_s - now_s_;
  outcome.kilobits = kilobits;
  now_s_ = end_s;
  return outcome;
}

void TraceChunkSource::wait(double seconds) {
  assert(seconds >= 0.0);
  now_s_ += seconds;
}

}  // namespace abr::sim
