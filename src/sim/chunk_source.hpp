#pragma once

#include <cstddef>
#include <cstdint>

#include "media/manifest.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::util {
class Rng;
}

namespace abr::sim {

/// Outcome of one chunk transfer (possibly spanning several attempts).
struct FetchOutcome {
  double duration_s = 0.0;   ///< wall (or virtual) time the transfer took,
                             ///< including failed attempts and backoff
  double kilobits = 0.0;     ///< payload size actually transferred
  bool failed = false;       ///< every attempt failed; kilobits is 0
  std::size_t attempts = 1;  ///< attempts consumed (>= 1)
  std::size_t origin = 0;    ///< origin that served (or last refused) the
                             ///< chunk; 0 for single-origin sources
  std::size_t faults = 0;    ///< injected faults / failed attempts hit by
                             ///< this fetch (delivery provenance)
};

/// Transport retry semantics shared by the real-HTTP client and the
/// virtual-time fault injector: per-attempt deadline, capped exponential
/// backoff with jitter drawn from a seeded RNG (deterministic runs stay
/// deterministic), bounded attempt count.
struct RetryPolicy {
  std::size_t max_attempts = 4;
  double initial_backoff_s = 0.2;   ///< session seconds before attempt 2
  double backoff_multiplier = 2.0;
  double max_backoff_s = 5.0;       ///< cap on the exponential growth
  double jitter_fraction = 0.25;    ///< backoff scaled by 1 +/- this * u
  int request_timeout_ms = 10000;   ///< per-attempt socket deadline (wall
                                    ///< clock; real-network sources only)

  /// Backoff before the next attempt after `failed_attempts` (>= 1)
  /// consecutive failures, in session seconds. Jitter comes from `rng` so a
  /// seeded caller gets a reproducible schedule.
  double backoff_s(std::size_t failed_attempts, util::Rng& rng) const;
};

/// Where chunks come from and how time passes while they do.
///
/// Two implementations exist: TraceChunkSource advances a virtual clock
/// through a throughput trace (the simulation framework of Section 7.3), and
/// net::HttpChunkSource performs real HTTP transfers over a shaped loopback
/// connection (the emulation testbed of Section 7.2). PlayerSession runs the
/// identical buffer/QoE logic over either, which is what makes simulated and
/// emulated results directly comparable.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Transfers chunk `chunk` at ladder index `level`; blocks (in virtual or
  /// real time) until complete.
  virtual FetchOutcome fetch(std::size_t chunk, std::size_t level) = 0;

  /// Passes `seconds` of session time without transferring (buffer-full
  /// waits).
  virtual void wait(double seconds) = 0;

  /// Session clock, seconds since the source was created/reset.
  virtual double now() const = 0;

  /// Ground-truth trace when one exists (simulation); null on real networks.
  /// Oracle predictors require it.
  virtual const trace::ThroughputTrace* truth() const { return nullptr; }
};

/// Virtual-time source: transfer times follow Eq. (2) of the paper exactly —
/// the integral of the trace's C_t over the download interval.
class TraceChunkSource final : public ChunkSource {
 public:
  /// Both referents must outlive the source.
  TraceChunkSource(const trace::ThroughputTrace& trace,
                   const media::VideoManifest& manifest);

  FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  void wait(double seconds) override;
  double now() const override { return now_s_; }
  const trace::ThroughputTrace* truth() const override { return trace_; }

 private:
  const trace::ThroughputTrace* trace_;
  const media::VideoManifest* manifest_;
  double now_s_ = 0.0;
};

}  // namespace abr::sim
