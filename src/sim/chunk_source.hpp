#pragma once

#include <cstddef>
#include <cstdint>

#include "media/manifest.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::util {
class Rng;
}

namespace abr::sim {

/// Outcome of one chunk transfer (possibly spanning several attempts).
struct FetchOutcome {
  double duration_s = 0.0;   ///< wall (or virtual) time the transfer took,
                             ///< including failed attempts and backoff
  double kilobits = 0.0;     ///< payload size actually transferred
  bool failed = false;       ///< every attempt failed; kilobits is 0
  std::size_t attempts = 1;  ///< attempts consumed (>= 1)
  std::size_t origin = 0;    ///< origin that served (or last refused) the
                             ///< chunk; 0 for single-origin sources
  std::size_t faults = 0;    ///< injected faults / failed attempts hit by
                             ///< this fetch (delivery provenance)

  // Sub-chunk delivery (fetch_controlled only; fetch() leaves these zero).
  bool aborted = false;  ///< the mid-chunk abort monitor cancelled the
                         ///< transfer; delivered_kilobits holds the prefix
  double delivered_kilobits = 0.0;  ///< cumulative valid prefix of the chunk
                                    ///< (resume credit + bytes delivered by
                                    ///< this call), even when failed/aborted
  std::size_t resumes = 0;  ///< transfers issued with a nonzero range-resume
                            ///< offset instead of refetching from byte 0
};

/// Sub-chunk delivery controls for ChunkSource::fetch_controlled. The
/// defaults make the call behave exactly like fetch().
struct FetchControl {
  /// Valid prefix of the chunk already delivered (range-resume credit, in
  /// kilobits at the requested level): the source transfers only the
  /// remaining suffix. Only honoured when supports_range() is true.
  double resume_from_kilobits = 0.0;

  /// Deliver at most this fraction of the remaining payload, then return
  /// with the prefix intact — the virtual-time model of a truncated body
  /// whose bytes stay useful under range resume (the fault injector's
  /// partial-body kind). 1.0 = complete the transfer.
  double truncate_after_fraction = 1.0;

  /// Mid-chunk abort monitor (the sub-chunk deadline watch). When enabled,
  /// the source evaluates deterministic checkpoints every check_interval_s;
  /// once min_observation_s of transfer has elapsed it projects the
  /// remaining transfer time from the delivered-so-far rate and aborts when
  /// the projection implies a stall longer than max_stall_s beyond the
  /// playback cushion it was given.
  bool abort_enabled = false;
  double buffer_s = 0.0;           ///< playback cushion at transfer start
  double max_stall_s = 1.0;        ///< tolerated projected stall
  double min_observation_s = 1.0;  ///< monitor warm-up before any abort
  double check_interval_s = 0.25;  ///< checkpoint spacing
};

/// Transport retry semantics shared by the real-HTTP client and the
/// virtual-time fault injector: per-attempt deadline, capped exponential
/// backoff with jitter drawn from a seeded RNG (deterministic runs stay
/// deterministic), bounded attempt count.
struct RetryPolicy {
  std::size_t max_attempts = 4;
  double initial_backoff_s = 0.2;   ///< session seconds before attempt 2
  double backoff_multiplier = 2.0;
  double max_backoff_s = 5.0;       ///< cap on the exponential growth
  double jitter_fraction = 0.25;    ///< backoff scaled by 1 +/- this * u
  int request_timeout_ms = 10000;   ///< per-attempt socket deadline (wall
                                    ///< clock; real-network sources only)

  /// Backoff before the next attempt after `failed_attempts` (>= 1)
  /// consecutive failures, in session seconds. Jitter comes from `rng` so a
  /// seeded caller gets a reproducible schedule.
  double backoff_s(std::size_t failed_attempts, util::Rng& rng) const;
};

/// Where chunks come from and how time passes while they do.
///
/// Two implementations exist: TraceChunkSource advances a virtual clock
/// through a throughput trace (the simulation framework of Section 7.3), and
/// net::HttpChunkSource performs real HTTP transfers over a shaped loopback
/// connection (the emulation testbed of Section 7.2). PlayerSession runs the
/// identical buffer/QoE logic over either, which is what makes simulated and
/// emulated results directly comparable.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Transfers chunk `chunk` at ladder index `level`; blocks (in virtual or
  /// real time) until complete.
  virtual FetchOutcome fetch(std::size_t chunk, std::size_t level) = 0;

  /// Sub-chunk transfer: honours range-resume credit and the mid-chunk abort
  /// monitor described by `control`. The base implementation ignores
  /// `control` and forwards to fetch() — correct for sources without range
  /// support; the player only passes a non-trivial control when
  /// supports_range() is true.
  virtual FetchOutcome fetch_controlled(std::size_t chunk, std::size_t level,
                                        const FetchControl& control) {
    (void)control;
    return fetch(chunk, level);
  }

  /// True when fetch_controlled honours FetchControl::resume_from_kilobits
  /// (HTTP Range on the wire; suffix-only transfers in virtual time).
  virtual bool supports_range() const { return false; }

  /// Passes `seconds` of session time without transferring (buffer-full
  /// waits).
  virtual void wait(double seconds) = 0;

  /// Session clock, seconds since the source was created/reset.
  virtual double now() const = 0;

  /// Ground-truth trace when one exists (simulation); null on real networks.
  /// Oracle predictors require it.
  virtual const trace::ThroughputTrace* truth() const { return nullptr; }
};

/// Virtual-time source: transfer times follow Eq. (2) of the paper exactly —
/// the integral of the trace's C_t over the download interval.
class TraceChunkSource final : public ChunkSource {
 public:
  /// Both referents must outlive the source.
  TraceChunkSource(const trace::ThroughputTrace& trace,
                   const media::VideoManifest& manifest);

  FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  FetchOutcome fetch_controlled(std::size_t chunk, std::size_t level,
                                const FetchControl& control) override;
  bool supports_range() const override { return true; }
  void wait(double seconds) override;
  double now() const override { return now_s_; }
  const trace::ThroughputTrace* truth() const override { return trace_; }

 private:
  const trace::ThroughputTrace* trace_;
  const media::VideoManifest* manifest_;
  double now_s_ = 0.0;
};

}  // namespace abr::sim
