#pragma once

#include <cstddef>

#include "media/manifest.hpp"
#include "trace/throughput_trace.hpp"

namespace abr::sim {

/// Outcome of one chunk transfer.
struct FetchOutcome {
  double duration_s = 0.0;   ///< wall (or virtual) time the transfer took
  double kilobits = 0.0;     ///< payload size actually transferred
};

/// Where chunks come from and how time passes while they do.
///
/// Two implementations exist: TraceChunkSource advances a virtual clock
/// through a throughput trace (the simulation framework of Section 7.3), and
/// net::HttpChunkSource performs real HTTP transfers over a shaped loopback
/// connection (the emulation testbed of Section 7.2). PlayerSession runs the
/// identical buffer/QoE logic over either, which is what makes simulated and
/// emulated results directly comparable.
class ChunkSource {
 public:
  virtual ~ChunkSource() = default;

  /// Transfers chunk `chunk` at ladder index `level`; blocks (in virtual or
  /// real time) until complete.
  virtual FetchOutcome fetch(std::size_t chunk, std::size_t level) = 0;

  /// Passes `seconds` of session time without transferring (buffer-full
  /// waits).
  virtual void wait(double seconds) = 0;

  /// Session clock, seconds since the source was created/reset.
  virtual double now() const = 0;

  /// Ground-truth trace when one exists (simulation); null on real networks.
  /// Oracle predictors require it.
  virtual const trace::ThroughputTrace* truth() const { return nullptr; }
};

/// Virtual-time source: transfer times follow Eq. (2) of the paper exactly —
/// the integral of the trace's C_t over the download interval.
class TraceChunkSource final : public ChunkSource {
 public:
  /// Both referents must outlive the source.
  TraceChunkSource(const trace::ThroughputTrace& trace,
                   const media::VideoManifest& manifest);

  FetchOutcome fetch(std::size_t chunk, std::size_t level) override;
  void wait(double seconds) override;
  double now() const override { return now_s_; }
  const trace::ThroughputTrace* truth() const override { return trace_; }

 private:
  const trace::ThroughputTrace* trace_;
  const media::VideoManifest* manifest_;
  double now_s_ = 0.0;
};

}  // namespace abr::sim
