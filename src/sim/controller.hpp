#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "media/manifest.hpp"

namespace abr::sim {

/// Everything the player exposes to the bitrate controller at a chunk
/// boundary — the observed feedback signals of Eq. (12) of the paper:
/// buffer occupancy B_k, previous decisions, and throughput information.
struct AbrState {
  /// Index of the chunk about to be downloaded (0-based).
  std::size_t chunk_index = 0;

  /// Current buffer occupancy B_k, seconds of playable video.
  double buffer_s = 0.0;

  /// Ladder index of the previous chunk; meaningless when !has_prev.
  std::size_t prev_level = 0;
  bool has_prev = false;

  /// Measured average throughput of each completed chunk download, oldest
  /// first, kbps.
  std::span<const double> throughput_history_kbps;

  /// Predictor forecasts for the next chunks, kbps (length >= the
  /// controller's prediction_horizon(), clipped to remaining chunks).
  /// A forecast of 0 means "no information yet".
  std::span<const double> prediction_kbps;

  /// Session clock, seconds since the session began.
  double now_s = 0.0;

  /// Whether playback has started (false during the startup phase).
  bool playback_started = false;
};

/// What a controller can report about how its last decide() call was made,
/// consumed by the session journal. Kept flat and POD-ish so controllers can
/// refresh it per decision without allocation.
struct DecisionTelemetry {
  std::size_t nodes_expanded = 0;  ///< solver nodes behind the decision
  bool warm_start = false;         ///< solve seeded from the previous plan
  const char* path = "rule";       ///< "online" | "table" | "rule"
  double effective_forecast_kbps = 0.0;  ///< forecast after robustness
                                         ///< deflation (0 = none used)
  double error_window = 0.0;  ///< max abs fractional prediction error
};

/// A bitrate adaptation policy: the function f(.) of Eq. (12).
///
/// Implementations are deliberately stateful-but-resettable objects (FESTIVE
/// tracks switch history, RobustMPC tracks prediction errors), reused across
/// sessions via reset().
class BitrateController {
 public:
  virtual ~BitrateController() = default;

  /// Picks the ladder index for state.chunk_index.
  virtual std::size_t decide(const AbrState& state,
                             const media::VideoManifest& manifest) = 0;

  /// How many future chunks of prediction this controller wants (the MPC
  /// look-ahead horizon N; 1 for memoryless policies).
  virtual std::size_t prediction_horizon() const { return 1; }

  /// Clears cross-chunk state before a new session.
  virtual void reset() {}

  /// Telemetry for the most recent decide() call, or nullptr for controllers
  /// that do not track it (rule-based policies). The pointee is invalidated
  /// by the next decide()/reset().
  virtual const DecisionTelemetry* last_decision() const { return nullptr; }

  virtual std::string name() const = 0;
};

}  // namespace abr::sim
