#include "sim/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace_event.hpp"

namespace abr::sim {

namespace {

enum class Phase : std::uint8_t { kIdle, kDownloading, kWaiting, kDone };

/// (event time, player index): a pending join or buffer-full wait expiry.
/// Min-heap on time; same-tick events are re-sorted by index before
/// processing so the controller call order matches the reference engine's
/// ascending-index scan.
using Event = std::pair<double, std::uint32_t>;

}  // namespace

MultiPlayerResult simulate_shared_link_soa(
    const trace::ThroughputTrace& link, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const MultiPlayerConfig& config,
    std::span<BitrateController* const> controllers,
    std::span<predict::ThroughputPredictor* const> predictors) {
  if (controllers.empty() || controllers.size() != predictors.size()) {
    throw std::invalid_argument(
        "simulate_shared_link: need one controller and predictor per player");
  }
  if (config.session.startup_policy == StartupPolicy::kFixedDelay) {
    throw std::invalid_argument(
        "simulate_shared_link: fixed-delay startup is not supported");
  }
  if (config.time_step_s <= 0.0) {
    throw std::invalid_argument("simulate_shared_link: bad time step");
  }

  const std::size_t n = controllers.size();
  const double chunk_duration = manifest.chunk_duration_s();
  const double capacity = config.session.buffer_capacity_s;
  const std::size_t chunk_count = manifest.chunk_count();
  const double dt = config.time_step_s;

  // Hot per-player state: parallel contiguous vectors (the advance pass
  // touches only these).
  std::vector<Phase> phase(n, Phase::kIdle);
  std::vector<double> buffer_s(n, 0.0);
  std::vector<double> remaining_kb(n, 0.0);
  std::vector<double> stall_s(n, 0.0);
  std::vector<std::uint8_t> playing(n, 0);

  // Warm state: read on chunk boundaries only.
  std::vector<double> join_time_s(n);
  std::vector<double> chunk_kb(n, 0.0);
  std::vector<double> download_started_s(n, 0.0);
  std::vector<double> buffer_before_s(n, 0.0);
  std::vector<double> startup_delay_s(n, 0.0);
  std::vector<std::uint32_t> next_chunk(n, 0);
  std::vector<std::uint32_t> level(n, 0);
  std::vector<std::uint32_t> prev_level(n, 0);
  std::vector<std::uint8_t> has_prev(n, 0);
  std::vector<std::vector<double>> history(n);

  // Cold state: results, QoE accumulators, journal attribution.
  std::vector<SessionResult> session(n);
  std::vector<qoe::QoeModel::Accumulator> qoe_acc;
  qoe_acc.reserve(n);
  std::vector<double> journal_prev_quality(n, 0.0);
  std::vector<std::uint8_t> journal_has_prev(n, 0);
  std::vector<double> journal_qoe_cum(n, 0.0);
  std::vector<DecisionTelemetry> telemetry(n);

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  for (std::size_t i = 0; i < n; ++i) {
    controllers[i]->reset();
    qoe_acc.emplace_back(qoe);
    join_time_s[i] = static_cast<double>(i) * config.startup_stagger_s;
    events.emplace(join_time_s[i], static_cast<std::uint32_t>(i));
    // Every session downloads every chunk; reserving up front removes the
    // growth-copy chains from the hot completion path (no output change).
    session[i].chunks.reserve(chunk_count);
    history[i].reserve(chunk_count);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::TraceWriter* tracer =
      config.trace_writer != nullptr && config.trace_writer->enabled()
          ? config.trace_writer
          : nullptr;
  FleetSeries* fleet = config.fleet;
  obs::Journal* journal = config.journal;
  const qoe::QoeWeights& weights = qoe.weights();
  obs::Gauge& fleet_active_gauge = registry.gauge(obs::kFleetSessionsActive);
  obs::Histogram& step_latency =
      registry.histogram(obs::kFleetStepLatencyUs, "",
                         obs::exponential_buckets(1.0, 2.0, 20));
  const bool metrics_on = registry.enabled();
  // Per-player instruments are fetched only when the registry is live: a
  // million-session soak must not allocate two million no-op instruments.
  std::vector<obs::Counter*> chunk_counters(metrics_on ? n : 0);
  std::vector<obs::Counter*> rebuffer_counters(metrics_on ? n : 0);
  if (metrics_on) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string label = "player=\"" + std::to_string(i) + "\"";
      chunk_counters[i] = &registry.counter(obs::kChunksDownloadedTotal, label);
      rebuffer_counters[i] =
          &registry.counter(obs::kRebufferSecondsTotal, label);
    }
  }
  if (tracer != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      tracer->set_thread_name("player " + std::to_string(i),
                              static_cast<int>(i));
    }
  }

  // Starts the download of player `i`'s next chunk (runs the controller).
  // Identical arithmetic and call sequence to the reference engine.
  const auto begin_chunk = [&](std::size_t i, double now) {
    predict::PredictionInput input;
    input.history_kbps = history[i];
    input.now_s = now;
    input.chunk_duration_s = chunk_duration;
    input.truth = nullptr;  // the fair share is not the raw trace
    const std::size_t horizon = std::max<std::size_t>(
        1, std::min(controllers[i]->prediction_horizon(),
                    chunk_count - next_chunk[i]));
    const std::vector<double> predictions =
        predictors[i]->predict(input, horizon);

    AbrState state;
    state.chunk_index = next_chunk[i];
    state.buffer_s = buffer_s[i];
    state.prev_level = prev_level[i];
    state.has_prev = has_prev[i] != 0;
    state.throughput_history_kbps = history[i];
    state.prediction_kbps = predictions;
    state.now_s = now;
    state.playback_started = playing[i] != 0;
    const std::size_t chosen = controllers[i]->decide(state, manifest);
    if (chosen >= manifest.level_count()) {
      throw std::logic_error("shared-link controller returned bad level");
    }
    telemetry[i] = DecisionTelemetry{};
    if (const DecisionTelemetry* t = controllers[i]->last_decision()) {
      telemetry[i] = *t;
    }

    level[i] = static_cast<std::uint32_t>(chosen);
    chunk_kb[i] = manifest.chunk_kilobits(next_chunk[i], chosen);
    remaining_kb[i] = chunk_kb[i];
    download_started_s[i] = now;
    stall_s[i] = 0.0;
    buffer_before_s[i] = buffer_s[i];
    phase[i] = Phase::kDownloading;

    ChunkRecord record;
    record.index = next_chunk[i];
    record.level = chosen;
    record.bitrate_kbps = manifest.bitrate_kbps(chosen);
    record.size_kilobits = chunk_kb[i];
    record.start_s = now;
    record.buffer_before_s = buffer_s[i];
    record.predicted_kbps = predictions.empty() ? 0.0 : predictions.front();
    session[i].chunks.push_back(record);
  };

  double now = 0.0;
  double delivered_kb = 0.0;
  double busy_span_end = 0.0;
  std::size_t live = n;

  // Downloading players, ascending index (the advance pass order).
  std::vector<std::uint32_t> active_list;
  active_list.reserve(n);
  std::vector<std::uint32_t> due;
  std::vector<std::uint32_t> joined;

  while (live > 0) {
    const bool timing = metrics_on;
    const auto step_begin = timing ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};

    // 1. Phase transitions that happen at this instant. Only players with a
    // due event are touched; processing in index order matches the
    // reference scan.
    if (!events.empty() && events.top().first <= now + 1e-12) {
      due.clear();
      joined.clear();
      do {
        due.push_back(events.top().second);
        events.pop();
      } while (!events.empty() && events.top().first <= now + 1e-12);
      std::sort(due.begin(), due.end());
      for (const std::uint32_t i : due) {
        if (phase[i] == Phase::kIdle) {
          begin_chunk(i, now);
          joined.push_back(i);
        } else if (phase[i] == Phase::kWaiting) {
          if (next_chunk[i] < chunk_count) {
            begin_chunk(i, now);
            joined.push_back(i);
          } else {
            phase[i] = Phase::kDone;
            --live;
          }
        }
      }
      if (!joined.empty()) {
        const auto mid = static_cast<std::ptrdiff_t>(active_list.size());
        active_list.insert(active_list.end(), joined.begin(), joined.end());
        std::inplace_merge(active_list.begin(), active_list.begin() + mid,
                           active_list.end());
      }
    }

    // 2. Fair share for this step.
    const std::size_t active = active_list.size();
    fleet_active_gauge.set(static_cast<double>(active));
    if (active == 0) {
      // Idle tick: nobody downloads, nothing drains (waiting buffers were
      // pre-drained at append time). O(1) — skip straight to the clock.
      now += dt;
      if (now > 100.0 * manifest.duration_s() + 1000.0) {
        throw std::runtime_error(
            "simulate_shared_link: link cannot sustain video");
      }
      continue;
    }

    const double step_kb = link.kilobits_between(now, now + dt);
    const double share_kb = step_kb / static_cast<double>(active);
    delivered_kb += step_kb;
    busy_span_end = now + dt;
    if (fleet != nullptr) fleet->note_active(now, active);

    // 3. Advance every downloading player by dt — one pass over contiguous
    // state, compacting completed players out in place (order-preserving).
    std::size_t out = 0;
    for (std::size_t pos = 0; pos < active_list.size(); ++pos) {
      const std::uint32_t i = active_list[pos];
      if (playing[i] != 0) {
        const double drained = std::min(buffer_s[i], dt);
        stall_s[i] += dt - drained;
        buffer_s[i] -= drained;
      }
      remaining_kb[i] -= share_kb;
      if (remaining_kb[i] > 1e-9) {
        active_list[out++] = i;
        continue;
      }

      // Chunk complete.
      const double end = now + dt;
      const double duration = std::max(end - download_started_s[i], 1e-9);
      ChunkRecord& record = session[i].chunks.back();
      record.download_s = duration;
      record.throughput_kbps = chunk_kb[i] / duration;
      record.rebuffer_s = stall_s[i];

      buffer_s[i] += chunk_duration;
      if (playing[i] == 0) {
        switch (config.session.startup_policy) {
          case StartupPolicy::kFirstChunk:
            playing[i] = 1;
            startup_delay_s[i] = end - join_time_s[i];
            break;
          case StartupPolicy::kBufferThreshold:
            if (buffer_s[i] >= config.session.startup_buffer_threshold_s) {
              playing[i] = 1;
              startup_delay_s[i] = end - join_time_s[i];
            }
            break;
          case StartupPolicy::kFixedDelay:
            break;  // rejected above
        }
      }

      double wait_s = 0.0;
      if (buffer_s[i] > capacity) {
        wait_s = buffer_s[i] - capacity;
        buffer_s[i] = capacity;
      }
      record.wait_s = wait_s;
      record.buffer_after_s = buffer_s[i];

      if (metrics_on) {
        chunk_counters[i]->increment();
        rebuffer_counters[i]->increment(record.rebuffer_s);
      }
      if (tracer != nullptr) {
        const int tid = static_cast<int>(i);
        tracer->complete("download", "net", record.start_s, record.download_s,
                         tid,
                         {{"chunk", record.index},
                          {"level", record.level},
                          {"throughput_kbps", record.throughput_kbps}});
        if (record.rebuffer_s > 0.0) {
          tracer->complete("rebuffer", "playback", end - record.rebuffer_s,
                           record.rebuffer_s, tid, {{"chunk", record.index}});
        }
        tracer->counter("buffer_s p" + std::to_string(i), end, buffer_s[i]);
      }

      qoe_acc[i].add_chunk(record.bitrate_kbps, record.rebuffer_s);
      if (journal != nullptr || fleet != nullptr) {
        const double q = qoe.quality(record.bitrate_kbps);
        const double switch_penalty =
            journal_has_prev[i] != 0
                ? weights.lambda * std::abs(q - journal_prev_quality[i])
                : 0.0;
        const double rebuffer_charge =
            weights.mu * record.rebuffer_s +
            (record.rebuffer_s > 0.0 ? weights.mu_event : 0.0);
        const double qoe_chunk = q - switch_penalty - rebuffer_charge;
        journal_prev_quality[i] = q;
        journal_has_prev[i] = 1;
        journal_qoe_cum[i] += qoe_chunk;
        if (fleet != nullptr) {
          fleet->record_chunk(end, record, qoe_chunk);
        }
        if (journal != nullptr) {
          obs::ChunkJournalEntry entry;
          entry.session = "p" + std::to_string(i);
          entry.algorithm = controllers[i]->name();
          entry.chunk = record.index;
          entry.level = record.level;
          entry.t_s = record.start_s;
          entry.bitrate_kbps = record.bitrate_kbps;
          entry.download_s = record.download_s;
          entry.throughput_kbps = record.throughput_kbps;
          entry.buffer_before_s = record.buffer_before_s;
          entry.buffer_after_s = record.buffer_after_s;
          entry.rebuffer_s = record.rebuffer_s;
          entry.wait_s = record.wait_s;
          entry.qoe_utility = q;
          entry.qoe_switch_penalty = switch_penalty;
          entry.qoe_rebuffer_charge = rebuffer_charge;
          entry.qoe_chunk = qoe_chunk;
          entry.qoe_cumulative = journal_qoe_cum[i];
          entry.predicted_kbps = record.predicted_kbps;
          entry.effective_kbps = telemetry[i].effective_forecast_kbps;
          entry.error_window = telemetry[i].error_window;
          entry.nodes_expanded = telemetry[i].nodes_expanded;
          entry.warm_start = telemetry[i].warm_start;
          entry.solver_path = telemetry[i].path;
          entry.origin = record.origin;
          entry.attempts = record.attempts;
          entry.faults = record.faults;
          entry.degraded = record.degraded;
          entry.skipped = record.skipped;
          journal->chunk(entry);
        }
      }
      history[i].push_back(record.throughput_kbps);
      prev_level[i] = level[i];
      has_prev[i] = 1;
      ++next_chunk[i];

      if (wait_s > 0.0 || next_chunk[i] >= chunk_count) {
        if (next_chunk[i] >= chunk_count) {
          phase[i] = Phase::kDone;
          --live;
        } else {
          phase[i] = Phase::kWaiting;
          events.emplace(end + wait_s, i);
        }
      } else {
        begin_chunk(i, end);
        active_list[out++] = i;  // chained download: still active
      }
    }
    active_list.resize(out);

    now += dt;
    // Safety valve: a link far too slow for even the lowest bitrate would
    // otherwise spin forever.
    if (now > 100.0 * manifest.duration_s() + 1000.0) {
      throw std::runtime_error(
          "simulate_shared_link: link cannot sustain video");
    }
    if (timing) {
      step_latency.observe(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - step_begin)
                               .count());
    }
  }

  // Finalize per-player results (identical to the reference engine).
  MultiPlayerResult result;
  result.players.reserve(n);
  std::vector<double> average_bitrates;
  for (std::size_t i = 0; i < n; ++i) {
    qoe_acc[i].set_startup_delay(
        config.session.include_startup_in_qoe ? startup_delay_s[i] : 0.0);
    SessionResult& player = session[i];
    player.startup_delay_s = startup_delay_s[i];
    player.total_rebuffer_s = qoe_acc[i].total_rebuffer_s();
    player.qoe = qoe_acc[i].total();
    player.session_duration_s = now;

    double bitrate_sum = 0.0;
    double change_sum = 0.0;
    double wait_sum = 0.0;
    std::size_t stalled = 0;
    for (std::size_t k = 0; k < player.chunks.size(); ++k) {
      const ChunkRecord& r = player.chunks[k];
      bitrate_sum += r.bitrate_kbps;
      wait_sum += r.wait_s;
      if (r.rebuffer_s > 0.0) ++stalled;
      if (k > 0) {
        const double delta =
            std::abs(r.bitrate_kbps - player.chunks[k - 1].bitrate_kbps);
        change_sum += delta;
        if (delta > 0.0) ++player.switch_count;
      }
    }
    const auto chunks = static_cast<double>(player.chunks.size());
    player.average_bitrate_kbps = chunks > 0 ? bitrate_sum / chunks : 0.0;
    player.average_bitrate_change_kbps =
        player.chunks.size() > 1 ? change_sum / (chunks - 1.0) : 0.0;
    player.total_wait_s = wait_sum;
    player.rebuffer_chunk_fraction =
        chunks > 0 ? static_cast<double>(stalled) / chunks : 0.0;

    if (journal != nullptr) {
      obs::SessionJournalEntry entry;
      entry.session = "p" + std::to_string(i);
      entry.algorithm = controllers[i]->name();
      entry.chunks = player.chunks.size();
      entry.duration_s = player.session_duration_s;
      entry.startup_delay_s = player.startup_delay_s;
      entry.qoe = player.qoe;
      entry.qoe_utility = qoe_acc[i].total_quality();
      entry.qoe_switch_penalty =
          weights.lambda * qoe_acc[i].total_smoothness_penalty();
      entry.qoe_rebuffer_charge =
          weights.mu * qoe_acc[i].total_rebuffer_s() +
          weights.mu_event * static_cast<double>(qoe_acc[i].rebuffer_events());
      entry.qoe_startup_charge =
          config.session.include_startup_in_qoe
              ? weights.mu_startup * startup_delay_s[i]
              : 0.0;
      entry.average_bitrate_kbps = player.average_bitrate_kbps;
      entry.rebuffer_s = player.total_rebuffer_s;
      entry.switches = player.switch_count;
      entry.degraded_chunks = player.degraded_chunks;
      entry.skipped_chunks = player.skipped_chunks;
      for (const ChunkRecord& r : player.chunks) {
        entry.attempts += r.attempts;
        entry.faults += r.faults;
      }
      journal->session(entry);
    }

    average_bitrates.push_back(player.average_bitrate_kbps);
    result.players.push_back(std::move(player));
  }

  result.jain_fairness = jain_index(average_bitrates);
  const double offered_kb = link.kilobits_between(0.0, busy_span_end);
  result.link_utilization = offered_kb > 0.0 ? delivered_kb / offered_kb : 0.0;
  registry.gauge(obs::kMultiplayerJainFairness).set(result.jain_fairness);
  registry.gauge(obs::kMultiplayerLinkUtilization)
      .set(result.link_utilization);
  return result;
}

}  // namespace abr::sim
