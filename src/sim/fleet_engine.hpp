#pragma once

#include <span>

#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/multiplayer.hpp"

namespace abr::sim {

/// Struct-of-arrays fleet engine for the shared-link simulation.
///
/// Produces bit-identical MultiPlayerResult, journal, trace, and fleet
/// series output to simulate_shared_link (the reference engine) — same
/// controller/predictor call sequence, same floating-point accumulation —
/// but holds the per-player hot state (buffer level, playback position,
/// rung, bytes remaining, deadlines) in parallel contiguous vectors and
/// schedules joins and buffer-full waits on a binary heap:
///
///  - The per-tick advance is one pass over the *downloading* players'
///    contiguous state, not a scan of every player ever created.
///  - Ticks where nobody is downloading cost O(1) (a heap peek), not O(N);
///    waiting and finished players are never touched.
///
/// One box can therefore soak-test 1M+ concurrent sessions (bench/
/// fleet_bench drives exactly that). Tick wall time is observed into the
/// abr_fleet_step_latency_us histogram when the global registry is enabled.
MultiPlayerResult simulate_shared_link_soa(
    const trace::ThroughputTrace& link, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const MultiPlayerConfig& config,
    std::span<BitrateController* const> controllers,
    std::span<predict::ThroughputPredictor* const> predictors);

}  // namespace abr::sim
