#include "sim/fleet_series.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::sim {

FleetSeries::FleetSeries(FleetSeriesConfig config) : config_(config) {
  if (config_.bucket_s <= 0.0) {
    throw std::invalid_argument("FleetSeries: bucket_s must be positive");
  }
  if (config_.capacity == 0) {
    throw std::invalid_argument("FleetSeries: capacity must be >= 1");
  }
}

FleetSeries::Bucket& FleetSeries::bucket_at(double t_s) {
  const auto index =
      static_cast<std::size_t>(std::max(0.0, t_s) / config_.bucket_s);
  // Time is monotonic in the simulator, so the wanted bucket is the newest
  // (or a brand-new one); a stray out-of-order sample lands in the newest
  // bucket rather than resurrecting an evicted one.
  if (buckets_.empty() || buckets_.back().index < index) {
    Bucket bucket;
    bucket.index = index;
    buckets_.push_back(std::move(bucket));
    if (buckets_.size() > config_.capacity) {
      buckets_.pop_front();
      ++evicted_;
      obs::MetricsRegistry::global()
          .counter(obs::kFleetBucketsEvictedTotal)
          .increment();
    }
  }
  return buckets_.back();
}

void FleetSeries::record_chunk(double end_s, const ChunkRecord& record,
                               double qoe_chunk) {
  Bucket& bucket = bucket_at(end_s);
  bucket.qoe_samples.push_back(qoe_chunk);
  bucket.rebuffer_s += record.rebuffer_s;
  ++bucket.chunks;
  ++bucket.bitrate_chunks[static_cast<long>(std::lround(record.bitrate_kbps))];
}

void FleetSeries::note_active(double t_s, std::size_t active) {
  Bucket& bucket = bucket_at(t_s);
  bucket.peak_active = std::max(bucket.peak_active, active);
}

namespace {

/// Nearest-rank percentile over a sorted sample vector.
double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

}  // namespace

std::string FleetSeries::to_json() const {
  std::string out = "{";
  out += "\"bucket_s\":" + obs::json_number(config_.bucket_s);
  out +=
      ",\"chunk_duration_s\":" + obs::json_number(config_.chunk_duration_s);
  out += ",\"evicted\":" + std::to_string(evicted_);
  out += ",\"buckets\":[";
  bool first = true;
  for (const Bucket& bucket : buckets_) {
    if (!first) out += ',';
    first = false;
    std::vector<double> sorted = bucket.qoe_samples;
    std::sort(sorted.begin(), sorted.end());
    const double played =
        static_cast<double>(bucket.chunks) * config_.chunk_duration_s;
    const double denom = played + bucket.rebuffer_s;
    out += "{\"t0_s\":" +
           obs::json_number(static_cast<double>(bucket.index) *
                            config_.bucket_s);
    out += ",\"chunks\":" + std::to_string(bucket.chunks);
    out += ",\"sessions_active\":" + std::to_string(bucket.peak_active);
    out += ",\"qoe_p50\":" + obs::json_number(percentile_sorted(sorted, 0.50));
    out += ",\"qoe_p90\":" + obs::json_number(percentile_sorted(sorted, 0.90));
    out += ",\"qoe_p99\":" + obs::json_number(percentile_sorted(sorted, 0.99));
    out += ",\"rebuffer_s\":" + obs::json_number(bucket.rebuffer_s);
    out += ",\"rebuffer_ratio\":" +
           obs::json_number(denom > 0.0 ? bucket.rebuffer_s / denom : 0.0);
    out += ",\"bitrates\":[";
    bool first_rate = true;
    for (const auto& [kbps, chunks] : bucket.bitrate_chunks) {
      if (!first_rate) out += ',';
      first_rate = false;
      out += "{\"kbps\":" + std::to_string(kbps) +
             ",\"chunks\":" + std::to_string(chunks) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void FleetSeries::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("FleetSeries: cannot open " + path);
  }
  out << to_json() << '\n';
}

}  // namespace abr::sim
