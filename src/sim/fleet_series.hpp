#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/player.hpp"

namespace abr::sim {

/// Knobs for the fleet time-series aggregator.
struct FleetSeriesConfig {
  /// Width of one time bucket, virtual seconds.
  double bucket_s = 5.0;

  /// Ring capacity: once more than this many buckets exist, the oldest are
  /// evicted (counted in abr_fleet_buckets_evicted_total). A long soak keeps
  /// a bounded recent window instead of growing without limit.
  std::size_t capacity = 1024;

  /// Content seconds per chunk (the manifest's chunk duration); used for
  /// the per-bucket rebuffer ratio (stall / (stall + played)).
  double chunk_duration_s = 4.0;
};

/// Time-bucketed ring-buffer series over a fleet of concurrent sessions:
/// per-bucket QoE percentiles, rebuffer ratio, bitrate distribution, and
/// peak sessions active. Fed by sim::simulate_shared_link as chunks
/// complete, exported as FLEET_timeseries.json. All timestamps are virtual
/// simulation time and the JSON rendering is deterministic, so seeded runs
/// export byte-identical series. Not thread-safe (the shared-link simulator
/// is single-threaded).
class FleetSeries {
 public:
  explicit FleetSeries(FleetSeriesConfig config = {});

  /// Records one completed chunk: `end_s` is the virtual completion time,
  /// `qoe_chunk` the chunk's net Eq. (5) contribution.
  void record_chunk(double end_s, const ChunkRecord& record, double qoe_chunk);

  /// Records the number of sessions active at `t_s`; buckets keep the peak.
  void note_active(double t_s, std::size_t active);

  std::size_t bucket_count() const { return buckets_.size(); }
  std::size_t evicted_buckets() const { return evicted_; }
  const FleetSeriesConfig& config() const { return config_; }

  /// Deterministic single-line JSON:
  /// {"bucket_s":..,"chunk_duration_s":..,"evicted":..,"buckets":[..]}.
  std::string to_json() const;

  /// Writes to_json() + '\n' to `path`; throws std::runtime_error on
  /// failure.
  void save(const std::string& path) const;

 private:
  struct Bucket {
    std::size_t index = 0;  ///< floor(t / bucket_s)
    std::vector<double> qoe_samples;
    double rebuffer_s = 0.0;
    std::size_t chunks = 0;
    std::map<long, std::size_t> bitrate_chunks;  ///< kbps -> chunk count
    std::size_t peak_active = 0;
  };

  Bucket& bucket_at(double t_s);

  FleetSeriesConfig config_;
  std::deque<Bucket> buckets_;  ///< ordered by index (time is monotonic)
  std::size_t evicted_ = 0;
};

}  // namespace abr::sim
