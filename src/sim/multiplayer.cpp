#include "sim/multiplayer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace_event.hpp"

namespace abr::sim {

double jain_index(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

namespace {

/// Per-player simulation state.
struct Player {
  enum class Phase { kIdle, kDownloading, kWaiting, kDone };

  Phase phase = Phase::kIdle;
  double join_time_s = 0.0;

  std::size_t next_chunk = 0;
  std::size_t level = 0;
  double remaining_kb = 0.0;     ///< of the in-flight chunk
  double chunk_kb = 0.0;
  double download_started_s = 0.0;
  double wait_until_s = 0.0;

  double buffer_s = 0.0;
  bool playing = false;
  double startup_delay_s = 0.0;
  double stall_s = 0.0;          ///< stall accumulated for the current chunk
  double buffer_before_s = 0.0;  ///< B_k at the decision point

  std::size_t prev_level = 0;
  bool has_prev = false;
  std::vector<double> history_kbps;

  SessionResult result;
  qoe::QoeModel::Accumulator qoe_acc;

  // Journal attribution state (mirrors the Accumulator's smoothness memory
  // so per-chunk charges sum exactly to the session totals).
  double journal_prev_quality = 0.0;
  bool journal_has_prev = false;
  double journal_qoe_cum = 0.0;
  DecisionTelemetry telemetry;  ///< snapshot for the in-flight chunk

  explicit Player(const qoe::QoeModel& model) : qoe_acc(model) {}
};

}  // namespace

MultiPlayerResult simulate_shared_link(
    const trace::ThroughputTrace& link, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const MultiPlayerConfig& config,
    std::span<BitrateController* const> controllers,
    std::span<predict::ThroughputPredictor* const> predictors) {
  if (controllers.empty() || controllers.size() != predictors.size()) {
    throw std::invalid_argument(
        "simulate_shared_link: need one controller and predictor per player");
  }
  if (config.session.startup_policy == StartupPolicy::kFixedDelay) {
    throw std::invalid_argument(
        "simulate_shared_link: fixed-delay startup is not supported");
  }
  if (config.time_step_s <= 0.0) {
    throw std::invalid_argument("simulate_shared_link: bad time step");
  }

  const std::size_t n = controllers.size();
  const double chunk_duration = manifest.chunk_duration_s();
  const double capacity = config.session.buffer_capacity_s;
  const std::size_t chunk_count = manifest.chunk_count();
  const double dt = config.time_step_s;

  std::vector<Player> players;
  players.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    controllers[i]->reset();
    Player player(qoe);
    player.join_time_s = static_cast<double>(i) * config.startup_stagger_s;
    players.push_back(std::move(player));
  }

  // Per-player aggregation (labeled player="i") plus one trace track per
  // player when a writer is attached.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::TraceWriter* tracer =
      config.trace_writer != nullptr && config.trace_writer->enabled()
          ? config.trace_writer
          : nullptr;
  FleetSeries* fleet = config.fleet;
  obs::Journal* journal = config.journal;
  const qoe::QoeWeights& weights = qoe.weights();
  obs::Gauge& fleet_active_gauge = registry.gauge(obs::kFleetSessionsActive);
  std::vector<obs::Counter*> chunk_counters(n);
  std::vector<obs::Counter*> rebuffer_counters(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string label = "player=\"" + std::to_string(i) + "\"";
    chunk_counters[i] = &registry.counter(obs::kChunksDownloadedTotal, label);
    rebuffer_counters[i] =
        &registry.counter(obs::kRebufferSecondsTotal, label);
    if (tracer != nullptr) {
      tracer->set_thread_name("player " + std::to_string(i),
                              static_cast<int>(i));
    }
  }

  // Starts the download of `player`'s next chunk (runs the controller).
  const auto begin_chunk = [&](Player& player, std::size_t index, double now) {
    predict::PredictionInput input;
    input.history_kbps = player.history_kbps;
    input.now_s = now;
    input.chunk_duration_s = chunk_duration;
    input.truth = nullptr;  // the fair share is not the raw trace
    const std::size_t horizon = std::max<std::size_t>(
        1, std::min(controllers[index]->prediction_horizon(),
                    chunk_count - player.next_chunk));
    const std::vector<double> predictions =
        predictors[index]->predict(input, horizon);

    AbrState state;
    state.chunk_index = player.next_chunk;
    state.buffer_s = player.buffer_s;
    state.prev_level = player.prev_level;
    state.has_prev = player.has_prev;
    state.throughput_history_kbps = player.history_kbps;
    state.prediction_kbps = predictions;
    state.now_s = now;
    state.playback_started = player.playing;
    const std::size_t level = controllers[index]->decide(state, manifest);
    if (level >= manifest.level_count()) {
      throw std::logic_error("shared-link controller returned bad level");
    }
    player.telemetry = DecisionTelemetry{};
    if (const DecisionTelemetry* t = controllers[index]->last_decision()) {
      player.telemetry = *t;
    }

    player.level = level;
    player.chunk_kb = manifest.chunk_kilobits(player.next_chunk, level);
    player.remaining_kb = player.chunk_kb;
    player.download_started_s = now;
    player.stall_s = 0.0;
    player.buffer_before_s = player.buffer_s;
    player.phase = Player::Phase::kDownloading;

    ChunkRecord record;
    record.index = player.next_chunk;
    record.level = level;
    record.bitrate_kbps = manifest.bitrate_kbps(level);
    record.size_kilobits = player.chunk_kb;
    record.start_s = now;
    record.buffer_before_s = player.buffer_s;
    record.predicted_kbps = predictions.empty() ? 0.0 : predictions.front();
    player.result.chunks.push_back(record);
  };

  double now = 0.0;
  double delivered_kb = 0.0;
  double busy_span_end = 0.0;

  // Indices of players that are not yet done, ascending. Finished players
  // are compacted out (order-preserving) after each tick so a long-lived
  // straggler does not pay an O(N) scan over everyone who already finished.
  std::vector<std::size_t> live(n);
  for (std::size_t i = 0; i < n; ++i) live[i] = i;

  while (!live.empty()) {
    // 1. Phase transitions that happen at this instant.
    for (const std::size_t i : live) {
      Player& player = players[i];
      if (player.phase == Player::Phase::kIdle && now + 1e-12 >= player.join_time_s) {
        begin_chunk(player, i, now);
      } else if (player.phase == Player::Phase::kWaiting &&
                 now + 1e-12 >= player.wait_until_s) {
        if (player.next_chunk < chunk_count) {
          begin_chunk(player, i, now);
        } else {
          player.phase = Player::Phase::kDone;
        }
      }
    }

    // 2. Fair share for this step.
    std::size_t active = 0;
    for (const std::size_t i : live) {
      if (players[i].phase == Player::Phase::kDownloading) ++active;
    }

    const double step_kb = link.kilobits_between(now, now + dt);
    const double share_kb =
        active > 0 ? step_kb / static_cast<double>(active) : 0.0;
    if (active > 0) {
      delivered_kb += step_kb;
      busy_span_end = now + dt;
    }
    fleet_active_gauge.set(static_cast<double>(active));
    if (fleet != nullptr && active > 0) fleet->note_active(now, active);

    // 3. Advance every live player by dt.
    for (const std::size_t i : live) {
      Player& player = players[i];
      switch (player.phase) {
        case Player::Phase::kIdle:
        case Player::Phase::kDone:
          break;
        case Player::Phase::kWaiting:
          // The buffer-full wait already accounted for its drain when the
          // buffer was clamped to capacity at append time (same convention
          // as PlayerSession): the buffer sits at Bmax when the wait ends.
          break;
        case Player::Phase::kDownloading: {
          if (player.playing) {
            const double drained = std::min(player.buffer_s, dt);
            player.stall_s += dt - drained;
            player.buffer_s -= drained;
          }
          player.remaining_kb -= share_kb;
          if (player.remaining_kb <= 1e-9) {
            // Chunk complete.
            const double end = now + dt;
            const double duration =
                std::max(end - player.download_started_s, 1e-9);
            ChunkRecord& record = player.result.chunks.back();
            record.download_s = duration;
            record.throughput_kbps = player.chunk_kb / duration;
            record.rebuffer_s = player.stall_s;

            player.buffer_s += chunk_duration;
            if (!player.playing) {
              switch (config.session.startup_policy) {
                case StartupPolicy::kFirstChunk:
                  player.playing = true;
                  player.startup_delay_s = end - player.join_time_s;
                  break;
                case StartupPolicy::kBufferThreshold:
                  if (player.buffer_s >=
                      config.session.startup_buffer_threshold_s) {
                    player.playing = true;
                    player.startup_delay_s = end - player.join_time_s;
                  }
                  break;
                case StartupPolicy::kFixedDelay:
                  break;  // rejected above
              }
            }

            double wait_s = 0.0;
            if (player.buffer_s > capacity) {
              wait_s = player.buffer_s - capacity;
              player.buffer_s = capacity;
            }
            record.wait_s = wait_s;
            record.buffer_after_s = player.buffer_s;

            chunk_counters[i]->increment();
            rebuffer_counters[i]->increment(record.rebuffer_s);
            if (tracer != nullptr) {
              const int tid = static_cast<int>(i);
              tracer->complete("download", "net", record.start_s,
                               record.download_s, tid,
                               {{"chunk", record.index},
                                {"level", record.level},
                                {"throughput_kbps", record.throughput_kbps}});
              if (record.rebuffer_s > 0.0) {
                tracer->complete("rebuffer", "playback",
                                 end - record.rebuffer_s, record.rebuffer_s,
                                 tid, {{"chunk", record.index}});
              }
              tracer->counter("buffer_s p" + std::to_string(i), end,
                              player.buffer_s);
            }

            player.qoe_acc.add_chunk(record.bitrate_kbps, record.rebuffer_s);
            if (journal != nullptr || fleet != nullptr) {
              const double q = qoe.quality(record.bitrate_kbps);
              const double switch_penalty =
                  player.journal_has_prev
                      ? weights.lambda *
                            std::abs(q - player.journal_prev_quality)
                      : 0.0;
              const double rebuffer_charge =
                  weights.mu * record.rebuffer_s +
                  (record.rebuffer_s > 0.0 ? weights.mu_event : 0.0);
              const double qoe_chunk = q - switch_penalty - rebuffer_charge;
              player.journal_prev_quality = q;
              player.journal_has_prev = true;
              player.journal_qoe_cum += qoe_chunk;
              if (fleet != nullptr) {
                fleet->record_chunk(end, record, qoe_chunk);
              }
              if (journal != nullptr) {
                obs::ChunkJournalEntry entry;
                entry.session = "p" + std::to_string(i);
                entry.algorithm = controllers[i]->name();
                entry.chunk = record.index;
                entry.level = record.level;
                entry.t_s = record.start_s;
                entry.bitrate_kbps = record.bitrate_kbps;
                entry.download_s = record.download_s;
                entry.throughput_kbps = record.throughput_kbps;
                entry.buffer_before_s = record.buffer_before_s;
                entry.buffer_after_s = record.buffer_after_s;
                entry.rebuffer_s = record.rebuffer_s;
                entry.wait_s = record.wait_s;
                entry.qoe_utility = q;
                entry.qoe_switch_penalty = switch_penalty;
                entry.qoe_rebuffer_charge = rebuffer_charge;
                entry.qoe_chunk = qoe_chunk;
                entry.qoe_cumulative = player.journal_qoe_cum;
                entry.predicted_kbps = record.predicted_kbps;
                entry.effective_kbps =
                    player.telemetry.effective_forecast_kbps;
                entry.error_window = player.telemetry.error_window;
                entry.nodes_expanded = player.telemetry.nodes_expanded;
                entry.warm_start = player.telemetry.warm_start;
                entry.solver_path = player.telemetry.path;
                entry.origin = record.origin;
                entry.attempts = record.attempts;
                entry.faults = record.faults;
                entry.degraded = record.degraded;
                entry.skipped = record.skipped;
                journal->chunk(entry);
              }
            }
            player.history_kbps.push_back(record.throughput_kbps);
            player.prev_level = player.level;
            player.has_prev = true;
            ++player.next_chunk;

            if (wait_s > 0.0 || player.next_chunk >= chunk_count) {
              player.wait_until_s = end + wait_s;
              player.phase = player.next_chunk >= chunk_count
                                 ? Player::Phase::kDone
                                 : Player::Phase::kWaiting;
            } else {
              begin_chunk(player, i, end);
            }
          }
          break;
        }
      }
    }

    now += dt;
    live.erase(std::remove_if(live.begin(), live.end(),
                              [&](std::size_t i) {
                                return players[i].phase == Player::Phase::kDone;
                              }),
               live.end());
    // Safety valve: a link far too slow for even the lowest bitrate would
    // otherwise spin forever.
    if (now > 100.0 * manifest.duration_s() + 1000.0) {
      throw std::runtime_error("simulate_shared_link: link cannot sustain video");
    }
  }

  // Finalize per-player results.
  MultiPlayerResult result;
  result.players.reserve(n);
  std::vector<double> average_bitrates;
  for (std::size_t i = 0; i < n; ++i) {
    Player& player = players[i];
    player.qoe_acc.set_startup_delay(
        config.session.include_startup_in_qoe ? player.startup_delay_s : 0.0);
    SessionResult& session = player.result;
    session.startup_delay_s = player.startup_delay_s;
    session.total_rebuffer_s = player.qoe_acc.total_rebuffer_s();
    session.qoe = player.qoe_acc.total();
    session.session_duration_s = now;

    double bitrate_sum = 0.0;
    double change_sum = 0.0;
    double wait_sum = 0.0;
    std::size_t stalled = 0;
    for (std::size_t k = 0; k < session.chunks.size(); ++k) {
      const ChunkRecord& r = session.chunks[k];
      bitrate_sum += r.bitrate_kbps;
      wait_sum += r.wait_s;
      if (r.rebuffer_s > 0.0) ++stalled;
      if (k > 0) {
        const double delta =
            std::abs(r.bitrate_kbps - session.chunks[k - 1].bitrate_kbps);
        change_sum += delta;
        if (delta > 0.0) ++session.switch_count;
      }
    }
    const auto chunks = static_cast<double>(session.chunks.size());
    session.average_bitrate_kbps = chunks > 0 ? bitrate_sum / chunks : 0.0;
    session.average_bitrate_change_kbps =
        session.chunks.size() > 1 ? change_sum / (chunks - 1.0) : 0.0;
    session.total_wait_s = wait_sum;
    session.rebuffer_chunk_fraction =
        chunks > 0 ? static_cast<double>(stalled) / chunks : 0.0;

    if (journal != nullptr) {
      obs::SessionJournalEntry entry;
      entry.session = "p" + std::to_string(i);
      entry.algorithm = controllers[i]->name();
      entry.chunks = session.chunks.size();
      entry.duration_s = session.session_duration_s;
      entry.startup_delay_s = session.startup_delay_s;
      entry.qoe = session.qoe;
      entry.qoe_utility = player.qoe_acc.total_quality();
      entry.qoe_switch_penalty =
          weights.lambda * player.qoe_acc.total_smoothness_penalty();
      entry.qoe_rebuffer_charge =
          weights.mu * player.qoe_acc.total_rebuffer_s() +
          weights.mu_event *
              static_cast<double>(player.qoe_acc.rebuffer_events());
      entry.qoe_startup_charge = config.session.include_startup_in_qoe
                                     ? weights.mu_startup *
                                           player.startup_delay_s
                                     : 0.0;
      entry.average_bitrate_kbps = session.average_bitrate_kbps;
      entry.rebuffer_s = session.total_rebuffer_s;
      entry.switches = session.switch_count;
      entry.degraded_chunks = session.degraded_chunks;
      entry.skipped_chunks = session.skipped_chunks;
      for (const ChunkRecord& r : session.chunks) {
        entry.attempts += r.attempts;
        entry.faults += r.faults;
      }
      journal->session(entry);
    }

    average_bitrates.push_back(session.average_bitrate_kbps);
    result.players.push_back(std::move(session));
  }

  result.jain_fairness = jain_index(average_bitrates);
  const double offered_kb = link.kilobits_between(0.0, busy_span_end);
  result.link_utilization =
      offered_kb > 0.0 ? delivered_kb / offered_kb : 0.0;
  registry.gauge(obs::kMultiplayerJainFairness).set(result.jain_fairness);
  registry.gauge(obs::kMultiplayerLinkUtilization)
      .set(result.link_utilization);
  return result;
}

}  // namespace abr::sim
