#pragma once

#include <span>
#include <vector>

#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/fleet_series.hpp"
#include "sim/player.hpp"

namespace abr::obs {
class Journal;
class TraceWriter;
}

namespace abr::sim {

/// Configuration of a shared-bottleneck experiment.
struct MultiPlayerConfig {
  /// Per-player session settings. Only kFirstChunk and kBufferThreshold
  /// startup policies are supported here (kFixedDelay is a single-player
  /// sensitivity device).
  SessionConfig session;

  /// Player i begins downloading at i * startup_stagger_s, modeling viewers
  /// joining over time.
  double startup_stagger_s = 0.0;

  /// Simulation time step. Downloads complete within one step of their true
  /// finish time; 50 ms is far below the chunk timescale (seconds).
  double time_step_s = 0.05;

  /// Optional Chrome trace-event sink: each player's downloads, rebuffers,
  /// and buffer-level counter render on their own track (tid = player
  /// index). Per-player metrics (chunks, rebuffer seconds, labeled
  /// player="i") go to obs::MetricsRegistry::global() when it is enabled.
  obs::TraceWriter* trace_writer = nullptr;

  /// Optional fleet time-series aggregator: per-bucket QoE percentiles,
  /// rebuffer ratio, bitrate distribution, and sessions active, fed as
  /// chunks complete. Must outlive the call.
  FleetSeries* fleet = nullptr;

  /// Optional structured journal: one chunk record per download (session
  /// "p<i>") and one session record per player. Must outlive the call.
  obs::Journal* journal = nullptr;
};

/// Outcome of a shared-link simulation.
struct MultiPlayerResult {
  std::vector<SessionResult> players;

  /// Jain fairness index over the players' average bitrates, in
  /// (1/n, 1]; 1 = perfectly equal shares.
  double jain_fairness = 0.0;

  /// Fraction of the link's capacity delivered while at least one player
  /// was still downloading.
  double link_utilization = 0.0;
};

/// Simulates N players streaming the same video through one bottleneck
/// whose total capacity follows `link`. Concurrently active downloads split
/// the instantaneous capacity equally (the idealized TCP fair share) — the
/// multi-player interaction the paper defers to future work (Section 8) and
/// the setting FESTIVE [34] was designed for.
///
/// Dynamics per player replicate PlayerSession (Eqs. (1)-(4)); the only
/// difference is that each player's download rate is its fair share of the
/// link rather than the whole trace. Controllers therefore see the biased,
/// competition-dependent throughput samples that make this setting hard
/// (the "downward spiral" of Huang et al.).
///
/// controllers/predictors must each have exactly one entry per player and
/// outlive the call.
MultiPlayerResult simulate_shared_link(
    const trace::ThroughputTrace& link, const media::VideoManifest& manifest,
    const qoe::QoeModel& qoe, const MultiPlayerConfig& config,
    std::span<BitrateController* const> controllers,
    std::span<predict::ThroughputPredictor* const> predictors);

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 0 for empty input.
double jain_index(std::span<const double> values);

}  // namespace abr::sim
