#include "sim/player.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace_event.hpp"

namespace abr::sim {

PlayerSession::PlayerSession(const media::VideoManifest& manifest,
                             const qoe::QoeModel& qoe, SessionConfig config)
    : manifest_(&manifest), qoe_(&qoe), config_(config) {
  if (config_.buffer_capacity_s <= 0.0) {
    throw std::invalid_argument("SessionConfig: non-positive buffer capacity");
  }
  if (config_.startup_policy == StartupPolicy::kFixedDelay &&
      config_.fixed_startup_delay_s < 0.0) {
    throw std::invalid_argument("SessionConfig: negative fixed startup delay");
  }
  if (config_.startup_policy == StartupPolicy::kBufferThreshold &&
      config_.startup_buffer_threshold_s > config_.buffer_capacity_s) {
    throw std::invalid_argument(
        "SessionConfig: startup threshold above buffer capacity");
  }
}

SessionResult PlayerSession::run(ChunkSource& source,
                                 BitrateController& controller,
                                 predict::ThroughputPredictor& predictor) const {
  controller.reset();

  const media::VideoManifest& manifest = *manifest_;
  const double chunk_duration = manifest.chunk_duration_s();
  const double buffer_capacity = config_.buffer_capacity_s;
  const std::size_t chunk_count = manifest.chunk_count();

  SessionResult result;
  result.chunks.reserve(chunk_count);

  // Observability: metrics go to the global registry (a no-op unless it has
  // been enabled); the timeline goes to the optional per-session TraceWriter.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::TraceWriter* tracer =
      config_.trace_writer != nullptr && config_.trace_writer->enabled()
          ? config_.trace_writer
          : nullptr;
  const int track = config_.trace_track;
  const std::string buffer_counter_name =
      track == 0 ? "buffer_s" : "buffer_s p" + std::to_string(track);
  obs::Counter& chunks_total = registry.counter(obs::kChunksDownloadedTotal);
  obs::Counter& rebuffer_total = registry.counter(obs::kRebufferSecondsTotal);
  obs::Counter& wait_total = registry.counter(obs::kWaitSecondsTotal);
  obs::Counter& degraded_total = registry.counter(obs::kChunksDegradedTotal);
  obs::Counter& skipped_total = registry.counter(obs::kChunksSkippedTotal);
  obs::Counter& aborted_total = registry.counter(obs::kChunksAbortedTotal);
  obs::Counter& partial_total = registry.counter(obs::kChunksPartialTotal);
  obs::Counter& wasted_total = registry.counter(obs::kWastedKilobitsTotal);
  obs::Counter& resumes_total = registry.counter(obs::kRangeResumesTotal);
  obs::Counter& sessions_total = registry.counter(obs::kSessionsTotal);
  obs::Gauge& buffer_gauge = registry.gauge(obs::kBufferLevelSeconds);
  obs::Histogram& download_hist =
      registry.histogram(obs::kChunkDownloadSeconds, "",
                         obs::exponential_buckets(0.01, 2.0, 16));
  obs::Histogram& decide_hist = registry.histogram(
      obs::kDecideLatencyUs, "controller=\"" + controller.name() + "\"");
  // Skip the clock reads entirely when nobody is listening.
  const bool time_decisions = registry.enabled() || tracer != nullptr;
  bool playback_start_emitted = false;

  qoe::QoeModel::Accumulator qoe_acc(*qoe_);

  // Journal attribution state: mirrors the Accumulator's smoothness memory
  // so per-chunk charges sum exactly to the session totals.
  obs::Journal* journal = config_.journal;
  const qoe::QoeWeights& weights = qoe_->weights();
  const std::string algorithm_name = controller.name();
  double journal_prev_quality = 0.0;
  bool journal_has_prev = false;
  double journal_qoe_cum = 0.0;

  std::vector<double> history_kbps;
  history_kbps.reserve(chunk_count);

  double buffer_s = 0.0;
  bool playing = false;
  double startup_delay = 0.0;
  std::size_t prev_level = 0;
  bool has_prev = false;

  // Drains `drain_s` of playback from the buffer and returns the stall time
  // incurred (the part not covered by buffered video).
  const auto drain = [&buffer_s](double drain_s) {
    assert(drain_s >= 0.0);
    const double stall = std::max(0.0, drain_s - buffer_s);
    buffer_s = std::max(0.0, buffer_s - drain_s);
    return stall;
  };

  for (std::size_t k = 0; k < chunk_count; ++k) {
    const double now = source.now();

    // Fixed-delay startup: playback may begin while the player idles or
    // between downloads.
    if (!playing && config_.startup_policy == StartupPolicy::kFixedDelay &&
        now >= config_.fixed_startup_delay_s) {
      playing = true;
      startup_delay = config_.fixed_startup_delay_s;
      // Time already elapsed past Ts was play time.
      drain(now - config_.fixed_startup_delay_s);
    }

    // 1. Predict.
    predict::PredictionInput input;
    input.history_kbps = history_kbps;
    input.now_s = now;
    input.chunk_duration_s = chunk_duration;
    input.truth = source.truth();
    const std::size_t horizon =
        std::min(controller.prediction_horizon(), chunk_count - k);
    const std::vector<double> predictions =
        predictor.predict(input, std::max<std::size_t>(horizon, 1));

    // 2. Decide.
    AbrState state;
    state.chunk_index = k;
    state.buffer_s = buffer_s;
    state.prev_level = prev_level;
    state.has_prev = has_prev;
    state.throughput_history_kbps = history_kbps;
    state.prediction_kbps = predictions;
    state.now_s = now;
    state.playback_started = playing;
    // Runs controller.decide() with timing/trace instrumentation; shared by
    // the per-chunk decision and any mid-chunk re-decides.
    const auto timed_decide = [&](const AbrState& st) {
      std::size_t lvl = 0;
      if (time_decisions) {
        const auto t0 = std::chrono::steady_clock::now();
        lvl = controller.decide(st, manifest);
        const double decide_us = std::chrono::duration<double, std::micro>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count();
        decide_hist.observe(decide_us);
        if (tracer != nullptr) {
          tracer->complete("decide", "controller", st.now_s, decide_us * 1e-6,
                           track, {{"chunk", k}, {"level", lvl}});
        }
      } else {
        lvl = controller.decide(st, manifest);
      }
      if (lvl >= manifest.level_count()) {
        throw std::logic_error("controller '" + controller.name() +
                               "' returned an out-of-range ladder index");
      }
      return lvl;
    };
    std::size_t level = timed_decide(state);
    // Snapshot decision telemetry now — the pointee is invalidated by the
    // next decide()/reset().
    DecisionTelemetry decision_telemetry;
    if (const DecisionTelemetry* t = controller.last_decision()) {
      decision_telemetry = *t;
    }

    // 3. Download.
    ChunkRecord record;
    record.index = k;
    record.level = level;
    record.bitrate_kbps = manifest.bitrate_kbps(level);
    record.size_kilobits = manifest.chunk_kilobits(k, level);
    record.start_s = now;
    record.buffer_before_s = buffer_s;
    record.predicted_kbps = predictions.empty() ? 0.0 : predictions.front();

    const bool abort_active =
        config_.abort_policy.enabled && source.supports_range();
    FetchOutcome outcome;
    bool degraded = false;
    bool partial = false;
    double played_fraction = 1.0;
    if (!abort_active) {
      outcome = source.fetch(k, level);
      if (outcome.failed && config_.degrade_on_failure && level != 0) {
        // Graceful degradation: the chosen level failed every attempt, so
        // fall back to the lowest rung before giving up on the chunk.
        degraded = true;
        level = 0;
        record.level = 0;
        record.bitrate_kbps = manifest.bitrate_kbps(0);
        record.size_kilobits = manifest.chunk_kilobits(k, 0);
        FetchOutcome fallback = source.fetch(k, 0);
        fallback.duration_s += outcome.duration_s;
        fallback.attempts += outcome.attempts;
        fallback.faults += outcome.faults;
        outcome = fallback;
      }
    } else {
      // Sub-chunk delivery: the transfer runs under the deadline monitor.
      // On abort the controller re-decides at a strictly lower rung and the
      // next transfer range-resumes from the delivered prefix (prefixes are
      // assumed aligned across the ladder, so the credit is re-expressed as
      // the same fraction of the new rung's size — DESIGN §12). A failure
      // at the last rung with a delivered prefix becomes a partial chunk:
      // the prefix plays, only the missing suffix is charged as a stall.
      const double buffer_at_start = buffer_s;
      std::size_t cur_level = level;
      double fraction_done = 0.0;   // delivered fraction of the chunk
      double elapsed = 0.0;
      double transferred_kb = 0.0;  // every bit that flowed, waste included
      outcome.attempts = 0;
      for (;;) {
        const double size_kb = manifest.chunk_kilobits(k, cur_level);
        FetchControl control;
        control.resume_from_kilobits = fraction_done * size_kb;
        control.abort_enabled = playing && cur_level > 0;
        control.buffer_s = std::max(0.0, buffer_at_start - elapsed);
        control.max_stall_s = config_.abort_policy.max_stall_s;
        control.min_observation_s = config_.abort_policy.min_observation_s;
        control.check_interval_s = config_.abort_policy.check_interval_s;
        if (control.resume_from_kilobits > 0.0) {
          record.resumed_from_byte = static_cast<std::size_t>(
              std::llround(control.resume_from_kilobits * 125.0));
        }
        const FetchOutcome att = source.fetch_controlled(k, cur_level, control);
        elapsed += att.duration_s;
        transferred_kb += att.kilobits;
        outcome.attempts += att.attempts;
        outcome.faults += att.faults;
        outcome.origin = att.origin;
        record.resumes += att.resumes;
        fraction_done = size_kb > 0.0
                            ? std::min(att.delivered_kilobits / size_kb, 1.0)
                            : 1.0;
        if (att.aborted) {
          record.aborted = true;
          // Re-decide with the post-abort buffer; mid-chunk the throughput
          // history is unchanged, so the forecast vector is reused.
          AbrState restate = state;
          restate.buffer_s = std::max(0.0, buffer_at_start - elapsed);
          restate.now_s = source.now();
          const std::size_t decided = timed_decide(restate);
          const std::size_t next_level = std::min(decided, cur_level - 1);
          record.wasted_kilobits +=
              att.delivered_kilobits -
              fraction_done * manifest.chunk_kilobits(k, next_level);
          cur_level = next_level;
          continue;
        }
        if (att.failed) {
          if (config_.degrade_on_failure && cur_level != 0) {
            degraded = true;
            record.wasted_kilobits +=
                att.delivered_kilobits -
                fraction_done * manifest.chunk_kilobits(k, 0);
            cur_level = 0;
            continue;
          }
          outcome.failed = true;
          break;
        }
        break;  // delivered in full
      }
      outcome.duration_s = std::max(elapsed, 1e-9);
      outcome.kilobits = transferred_kb;
      level = cur_level;
      record.level = cur_level;
      record.bitrate_kbps = manifest.bitrate_kbps(cur_level);
      record.size_kilobits =
          fraction_done * manifest.chunk_kilobits(k, cur_level);
      if (outcome.failed && fraction_done > 0.0) {
        // Third degradation rung: play the delivered prefix.
        partial = true;
        played_fraction = fraction_done;
        outcome.failed = false;
      }
      if (record.aborted || partial) {
        // The re-decide (or the truncation) may have changed the solver
        // telemetry; snapshot the final state for the journal.
        if (const DecisionTelemetry* t = controller.last_decision()) {
          decision_telemetry = *t;
        }
      }
    }
    const bool skipped = outcome.failed;
    if (skipped) {
      record.bitrate_kbps = 0.0;
      record.size_kilobits = 0.0;
    }
    record.attempts = outcome.attempts;
    record.origin = outcome.origin;
    record.faults = outcome.faults;
    record.degraded = degraded;
    record.skipped = skipped;
    record.partial = partial;
    assert(outcome.duration_s > 0.0);
    record.download_s = outcome.duration_s;
    record.throughput_kbps =
        skipped ? 0.0 : outcome.kilobits / outcome.duration_s;

    // 4. Buffer dynamics during the download (Eq. (3)).
    double rebuffer_s = 0.0;
    if (playing) {
      rebuffer_s = drain(outcome.duration_s);
    } else if (config_.startup_policy == StartupPolicy::kFixedDelay &&
               source.now() > config_.fixed_startup_delay_s) {
      // Playback started mid-download.
      playing = true;
      startup_delay = config_.fixed_startup_delay_s;
      rebuffer_s = drain(source.now() - config_.fixed_startup_delay_s);
    }
    if (skipped) {
      // The chunk never arrived: the viewer loses its whole duration, which
      // Eq. (5) charges as a stall (skip-with-rebuffer accounting).
      rebuffer_s += chunk_duration;
    } else if (partial) {
      // Partial chunk: the delivered prefix plays; the missing suffix is a
      // stall Eq. (5) pays for.
      buffer_s += played_fraction * chunk_duration;
      rebuffer_s += (1.0 - played_fraction) * chunk_duration;
    } else {
      buffer_s += chunk_duration;
    }

    // 5. Startup transitions that trigger on chunk completion. A skipped
    // chunk delivers nothing, so it cannot start playback.
    if (!playing && !skipped) {
      switch (config_.startup_policy) {
        case StartupPolicy::kFirstChunk:
          playing = true;
          startup_delay = source.now();
          break;
        case StartupPolicy::kBufferThreshold:
          if (buffer_s >= config_.startup_buffer_threshold_s) {
            playing = true;
            startup_delay = source.now();
          }
          break;
        case StartupPolicy::kFixedDelay:
          break;  // handled by the clock checks above
      }
    }

    // 6. Buffer-full wait (Eq. (4)): drain the excess before the next
    // request. If playback has not begun (large fixed delay), idle until it
    // does, then drain.
    const double wait_start_s = source.now();
    double wait_s = 0.0;
    if (buffer_s > buffer_capacity) {
      if (!playing) {
        assert(config_.startup_policy == StartupPolicy::kFixedDelay);
        const double idle =
            std::max(0.0, config_.fixed_startup_delay_s - source.now());
        source.wait(idle);
        wait_s += idle;
        playing = true;
        startup_delay = config_.fixed_startup_delay_s;
      }
      const double excess = buffer_s - buffer_capacity;
      source.wait(excess);
      wait_s += excess;
      buffer_s = buffer_capacity;
    }

    record.rebuffer_s = rebuffer_s;
    record.wait_s = wait_s;
    record.buffer_after_s = buffer_s;
    result.chunks.push_back(record);

    chunks_total.increment();
    rebuffer_total.increment(rebuffer_s);
    wait_total.increment(wait_s);
    if (degraded) degraded_total.increment();
    if (skipped) skipped_total.increment();
    if (record.aborted) aborted_total.increment();
    if (partial) partial_total.increment();
    if (record.wasted_kilobits > 0.0)
      wasted_total.increment(record.wasted_kilobits);
    if (record.resumes > 0)
      resumes_total.increment(static_cast<double>(record.resumes));
    download_hist.observe(record.download_s);
    buffer_gauge.set(buffer_s);
    if (tracer != nullptr) {
      const double download_end_s = record.start_s + record.download_s;
      tracer->complete("download", "net", record.start_s, record.download_s,
                       track,
                       {{"chunk", k},
                        {"level", level},
                        {"bitrate_kbps", record.bitrate_kbps},
                        {"throughput_kbps", record.throughput_kbps}});
      if (rebuffer_s > 0.0) {
        // The stall occupies the tail of the download: the buffer ran dry
        // rebuffer_s before the chunk arrived.
        tracer->complete("rebuffer", "playback", download_end_s - rebuffer_s,
                         rebuffer_s, track, {{"chunk", k}});
      }
      if (wait_s > 0.0) {
        tracer->complete("wait", "playback", wait_start_s, wait_s, track,
                         {{"chunk", k}});
      }
      if (degraded) {
        tracer->instant("degraded", "net", record.start_s, track);
      }
      if (skipped) {
        tracer->instant("chunk_skipped", "net", record.start_s, track);
      }
      if (record.aborted) {
        tracer->instant("chunk_aborted", "net", record.start_s, track);
      }
      if (partial) {
        tracer->instant("chunk_partial", "net", record.start_s, track);
      }
      if (playing && !playback_start_emitted) {
        tracer->instant("playback_start", "playback", startup_delay, track);
        playback_start_emitted = true;
      }
      tracer->counter(buffer_counter_name, record.start_s,
                      record.buffer_before_s);
      tracer->counter(buffer_counter_name, source.now(), buffer_s);
    }

    qoe_acc.add_chunk(record.bitrate_kbps, rebuffer_s);
    if (journal != nullptr) {
      // Per-chunk Eq. (5) attribution with the exact Accumulator semantics:
      // skipped chunks contribute q(0), transitions through 0 count as
      // switches, and every stalled chunk pays the per-event charge.
      const double q = qoe_->quality(record.bitrate_kbps);
      const double switch_penalty =
          journal_has_prev ? weights.lambda * std::abs(q - journal_prev_quality)
                           : 0.0;
      const double rebuffer_charge =
          weights.mu * rebuffer_s + (rebuffer_s > 0.0 ? weights.mu_event : 0.0);
      const double qoe_chunk = q - switch_penalty - rebuffer_charge;
      journal_prev_quality = q;
      journal_has_prev = true;
      journal_qoe_cum += qoe_chunk;

      obs::ChunkJournalEntry entry;
      entry.session = config_.session_label;
      entry.algorithm = algorithm_name;
      entry.chunk = k;
      entry.level = level;
      entry.t_s = record.start_s;
      entry.bitrate_kbps = record.bitrate_kbps;
      entry.download_s = record.download_s;
      entry.throughput_kbps = record.throughput_kbps;
      entry.buffer_before_s = record.buffer_before_s;
      entry.buffer_after_s = record.buffer_after_s;
      entry.rebuffer_s = rebuffer_s;
      entry.wait_s = wait_s;
      entry.qoe_utility = q;
      entry.qoe_switch_penalty = switch_penalty;
      entry.qoe_rebuffer_charge = rebuffer_charge;
      entry.qoe_chunk = qoe_chunk;
      entry.qoe_cumulative = journal_qoe_cum;
      entry.predicted_kbps = record.predicted_kbps;
      entry.effective_kbps = decision_telemetry.effective_forecast_kbps;
      entry.error_window = decision_telemetry.error_window;
      entry.nodes_expanded = decision_telemetry.nodes_expanded;
      entry.warm_start = decision_telemetry.warm_start;
      entry.solver_path = decision_telemetry.path;
      entry.origin = record.origin;
      entry.attempts = record.attempts;
      entry.faults = record.faults;
      entry.degraded = degraded;
      entry.skipped = skipped;
      entry.aborted = record.aborted;
      entry.partial = partial;
      entry.wasted_kb = record.wasted_kilobits;
      entry.resumed_from_byte = record.resumed_from_byte;
      journal->chunk(entry);
    }
    if (!skipped) {
      // A skipped chunk yields no throughput sample and no played level:
      // predictors and controllers keep seeing the last real transfer.
      history_kbps.push_back(record.throughput_kbps);
      prev_level = level;
      has_prev = true;
    }
  }

  // A fixed startup delay later than the whole download still counts.
  if (!playing && config_.startup_policy == StartupPolicy::kFixedDelay) {
    startup_delay = config_.fixed_startup_delay_s;
  }

  sessions_total.increment();
  result.startup_delay_s = startup_delay;
  result.session_duration_s = source.now();
  if (config_.include_startup_in_qoe) {
    qoe_acc.set_startup_delay(startup_delay);
  }
  result.total_rebuffer_s = qoe_acc.total_rebuffer_s();
  result.qoe = qoe_acc.total();

  // Aggregates.
  double bitrate_sum = 0.0;
  double change_sum = 0.0;
  double wait_sum = 0.0;
  std::size_t stalled_chunks = 0;
  for (std::size_t k = 0; k < result.chunks.size(); ++k) {
    const ChunkRecord& r = result.chunks[k];
    bitrate_sum += r.bitrate_kbps;
    wait_sum += r.wait_s;
    if (r.rebuffer_s > 0.0) ++stalled_chunks;
    if (r.degraded) ++result.degraded_chunks;
    if (r.skipped) ++result.skipped_chunks;
    if (r.aborted) ++result.aborted_chunks;
    if (r.partial) ++result.partial_chunks;
    result.resume_count += r.resumes;
    result.wasted_kilobits += r.wasted_kilobits;
    result.total_attempts += r.attempts;
    if (k > 0) {
      const double delta =
          std::abs(r.bitrate_kbps - result.chunks[k - 1].bitrate_kbps);
      change_sum += delta;
      if (delta > 0.0) ++result.switch_count;
    }
  }
  const auto n = static_cast<double>(result.chunks.size());
  result.average_bitrate_kbps = n > 0 ? bitrate_sum / n : 0.0;
  result.average_bitrate_change_kbps =
      result.chunks.size() > 1 ? change_sum / (n - 1.0) : 0.0;
  result.total_wait_s = wait_sum;
  result.rebuffer_chunk_fraction =
      n > 0 ? static_cast<double>(stalled_chunks) / n : 0.0;

  if (journal != nullptr) {
    obs::SessionJournalEntry entry;
    entry.session = config_.session_label;
    entry.algorithm = algorithm_name;
    entry.chunks = result.chunks.size();
    entry.duration_s = result.session_duration_s;
    entry.startup_delay_s = result.startup_delay_s;
    entry.qoe = result.qoe;
    entry.qoe_utility = qoe_acc.total_quality();
    entry.qoe_switch_penalty =
        weights.lambda * qoe_acc.total_smoothness_penalty();
    entry.qoe_rebuffer_charge =
        weights.mu * qoe_acc.total_rebuffer_s() +
        weights.mu_event * static_cast<double>(qoe_acc.rebuffer_events());
    entry.qoe_startup_charge = config_.include_startup_in_qoe
                                   ? weights.mu_startup * startup_delay
                                   : 0.0;
    entry.average_bitrate_kbps = result.average_bitrate_kbps;
    entry.rebuffer_s = result.total_rebuffer_s;
    entry.switches = result.switch_count;
    entry.degraded_chunks = result.degraded_chunks;
    entry.skipped_chunks = result.skipped_chunks;
    entry.attempts = result.total_attempts;
    for (const ChunkRecord& r : result.chunks) entry.faults += r.faults;
    entry.aborted_chunks = result.aborted_chunks;
    entry.partial_chunks = result.partial_chunks;
    entry.resumes = result.resume_count;
    entry.wasted_kb = result.wasted_kilobits;
    journal->session(entry);
  }
  return result;
}

SessionResult simulate(const trace::ThroughputTrace& trace,
                       const media::VideoManifest& manifest,
                       const qoe::QoeModel& qoe, const SessionConfig& config,
                       BitrateController& controller,
                       predict::ThroughputPredictor& predictor) {
  TraceChunkSource source(trace, manifest);
  PlayerSession session(manifest, qoe, config);
  return session.run(source, controller, predictor);
}

}  // namespace abr::sim
