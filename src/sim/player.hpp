#pragma once

#include <vector>

#include "media/manifest.hpp"
#include "predict/predictor.hpp"
#include "qoe/qoe.hpp"
#include "sim/chunk_source.hpp"
#include "sim/controller.hpp"

namespace abr::obs {
class Journal;
class TraceWriter;
}

namespace abr::sim {

/// When playback is allowed to begin relative to the download process.
enum class StartupPolicy {
  /// Playback begins the moment the first chunk is fully downloaded. The
  /// startup delay Ts is then the first chunk's download time. This is the
  /// default for comparing algorithms (all see the same rule).
  kFirstChunk,
  /// Playback begins at a fixed time Ts regardless of buffer state; used by
  /// the Fig. 11d sensitivity sweep (which also excludes the startup QoE
  /// term).
  kFixedDelay,
  /// Playback begins once the buffer first reaches a threshold (classic
  /// dash.js behaviour with minBufferTime).
  kBufferThreshold,
};

/// Mid-chunk abort/re-decide policy (the sub-chunk delivery layer). When
/// enabled and the ChunkSource supports_range(), every in-flight transfer
/// runs under a deadline monitor: once the projected completion implies a
/// stall beyond max_stall_s the transfer is aborted, the wasted bytes are
/// charged honestly, and the controller re-decides at a strictly lower rung
/// resuming from the delivered byte offset. Sources without range support
/// ignore the policy entirely (the fetch path is byte-identical to a
/// disabled policy).
struct AbortPolicyConfig {
  bool enabled = false;
  double max_stall_s = 1.0;        ///< tolerated projected stall, seconds
  double min_observation_s = 1.0;  ///< monitor warm-up before any abort
  double check_interval_s = 0.25;  ///< deadline-monitor checkpoint spacing
};

/// Player-level knobs shared by simulation and network emulation.
struct SessionConfig {
  /// Bmax: playout buffer capacity, seconds (Section 7.1.1 uses 30 s).
  double buffer_capacity_s = 30.0;

  StartupPolicy startup_policy = StartupPolicy::kFirstChunk;
  double fixed_startup_delay_s = 0.0;      ///< for kFixedDelay
  double startup_buffer_threshold_s = 4.0; ///< for kBufferThreshold

  /// When false, the startup-delay term is dropped from the reported QoE
  /// (the Fig. 11d convention).
  bool include_startup_in_qoe = true;

  /// Optional Chrome trace-event sink: the session emits download /
  /// rebuffer / wait spans, decide() spans (wall-clock duration at the
  /// session timestamp), a buffer-level counter track, and playback-start
  /// instants. Session metrics additionally flow to
  /// obs::MetricsRegistry::global() whenever that registry is enabled.
  obs::TraceWriter* trace_writer = nullptr;

  /// Trace-event thread id for this session's spans; multi-session
  /// timelines give each player its own track.
  int trace_track = 0;

  /// Optional structured session journal: one JSONL record per chunk
  /// decision (full Eq. (5) attribution, predictor/solver state, delivery
  /// provenance) plus one per finished session. All timestamps are virtual
  /// session time, so seeded runs journal byte-identically.
  obs::Journal* journal = nullptr;

  /// Session id stamped on journal records ("s0", "p3", ...).
  std::string session_label = "s0";

  /// Failure handling when a ChunkSource reports an exhausted transfer
  /// (FetchOutcome::failed). When true, the player falls back to the lowest
  /// ladder rung for that chunk; if even that fails, the chunk is skipped
  /// and its full duration is charged as rebuffering, so QoE (Eq. 5) pays
  /// for the gap honestly. When false, a failed chunk skips immediately.
  bool degrade_on_failure = true;

  /// Sub-chunk delivery: mid-chunk abort/re-decide and partial-chunk
  /// degradation. Inert unless enabled AND the source supports_range().
  AbortPolicyConfig abort_policy;
};

/// Per-chunk log entry, mirroring the logging our dash.js modification
/// records (Section 6): player state, decisions, and outcomes.
struct ChunkRecord {
  std::size_t index = 0;
  std::size_t level = 0;
  double bitrate_kbps = 0.0;
  double size_kilobits = 0.0;
  double start_s = 0.0;            ///< time the download began
  double download_s = 0.0;         ///< transfer duration
  double throughput_kbps = 0.0;    ///< measured: size / duration
  double predicted_kbps = 0.0;     ///< forecast for this chunk (0 if none)
  double buffer_before_s = 0.0;    ///< B_k
  double buffer_after_s = 0.0;     ///< buffer after append and any wait
  double rebuffer_s = 0.0;         ///< stall incurred during this download
  double wait_s = 0.0;             ///< buffer-full wait after this chunk

  std::size_t attempts = 1;        ///< transfer attempts across all levels
  std::size_t origin = 0;          ///< origin that served the chunk (0 for
                                   ///< single-origin sources)
  std::size_t faults = 0;          ///< injected faults / failed attempts
                                   ///< encountered while fetching
  bool degraded = false;           ///< fell back to the lowest rung
  bool skipped = false;            ///< never delivered; duration charged as
                                   ///< rebuffering, bitrate recorded as 0

  // Sub-chunk delivery provenance (non-zero only with an abort policy).
  bool aborted = false;            ///< at least one in-flight transfer was
                                   ///< cancelled by the deadline monitor
  bool partial = false;            ///< only a prefix was played; the missing
                                   ///< suffix was charged as rebuffering
  double wasted_kilobits = 0.0;    ///< delivered bytes discarded by aborts /
                                   ///< level switches (Eq. 5 pays for them
                                   ///< via the elapsed download time)
  std::size_t resumes = 0;         ///< transfers issued with a range-resume
                                   ///< offset instead of refetching from 0
  std::size_t resumed_from_byte = 0;  ///< byte offset of the last resume
                                      ///< (0 when the chunk never resumed)
};

/// Complete outcome of one streaming session.
struct SessionResult {
  std::vector<ChunkRecord> chunks;
  double startup_delay_s = 0.0;
  double total_rebuffer_s = 0.0;
  double total_wait_s = 0.0;
  double session_duration_s = 0.0;  ///< clock time until last chunk appended
  double qoe = 0.0;                 ///< Eq. (5) under the session's QoE model

  // Derived aggregates (the Fig. 9/10 panels).
  double average_bitrate_kbps = 0.0;
  double average_bitrate_change_kbps = 0.0;  ///< mean |R_{k+1} - R_k|
  std::size_t switch_count = 0;

  /// Fraction of chunks with any rebuffering.
  double rebuffer_chunk_fraction = 0.0;

  // Failure handling (non-zero only under fault injection / real networks).
  std::size_t degraded_chunks = 0;  ///< chunks forced to the lowest rung
  std::size_t skipped_chunks = 0;   ///< chunks never delivered
  std::size_t total_attempts = 0;   ///< transfer attempts across the session

  // Sub-chunk delivery aggregates (non-zero only with an abort policy).
  std::size_t aborted_chunks = 0;   ///< chunks with >= 1 monitor abort
  std::size_t partial_chunks = 0;   ///< chunks played as a prefix only
  std::size_t resume_count = 0;     ///< range-resumed transfers
  double wasted_kilobits = 0.0;     ///< bytes downloaded but never played
};

/// The reference player: downloads chunks sequentially, makes one bitrate
/// decision per chunk boundary, and evolves the buffer exactly per
/// Eqs. (1)-(4) of the paper. Chunk transfers and the passage of time are
/// delegated to a ChunkSource, so the same player drives both the
/// virtual-time simulator and the real-network emulation.
class PlayerSession {
 public:
  /// All referents must outlive the session object.
  PlayerSession(const media::VideoManifest& manifest, const qoe::QoeModel& qoe,
                SessionConfig config);

  /// Streams the whole video once. The controller is reset() first.
  SessionResult run(ChunkSource& source, BitrateController& controller,
                    predict::ThroughputPredictor& predictor) const;

 private:
  const media::VideoManifest* manifest_;
  const qoe::QoeModel* qoe_;
  SessionConfig config_;
};

/// Convenience wrapper: simulate `controller` on `trace` (virtual time).
SessionResult simulate(const trace::ThroughputTrace& trace,
                       const media::VideoManifest& manifest,
                       const qoe::QoeModel& qoe, const SessionConfig& config,
                       BitrateController& controller,
                       predict::ThroughputPredictor& predictor);

}  // namespace abr::sim
