#include "testing/fault_plan.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/checked_parse.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace abr::testing {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kLatencySpike: return "latency_spike";
    case FaultKind::kStall: return "stall";
    case FaultKind::kPartialBody: return "partial_body";
    case FaultKind::kReset: return "reset";
    case FaultKind::kHttpError: return "http_error";
  }
  return "unknown";
}

double FaultPlan::total_rate() const {
  return latency_rate + stall_rate + partial_rate + reset_rate +
         http_error_rate;
}

void FaultPlan::validate() const {
  const auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("FaultPlan: ") + what);
  };
  for (const double rate : {latency_rate, stall_rate, partial_rate, reset_rate,
                            http_error_rate}) {
    require(rate >= 0.0 && rate <= 1.0, "rates must be in [0, 1]");
  }
  require(total_rate() <= 1.0 + 1e-12, "rates must sum to at most 1");
  require(latency_min_s > 0.0 && latency_min_s <= latency_max_s,
          "latency range must satisfy 0 < min <= max");
  require(stall_min_s > 0.0 && stall_min_s <= stall_max_s,
          "stall range must satisfy 0 < min <= max");
  require(http_status >= 500 && http_status <= 599,
          "http_status must be a 5xx code");
  require(error_response_s > 0.0, "error_response_s must be positive");
  require(reset_delay_s > 0.0, "reset_delay_s must be positive");
}

FaultDecision FaultPlan::decide(std::size_t chunk, std::size_t attempt) const {
  FaultDecision decision;
  if (attempt >= max_faulty_attempts) return decision;

  // One independent, reproducible stream per (chunk, attempt): the Rng's
  // splitmix seeding decorrelates the nearby keys.
  util::Rng rng(seed ^ (static_cast<std::uint64_t>(chunk) *
                            0xBF58476D1CE4E5B9ULL +
                        (static_cast<std::uint64_t>(attempt) + 1) *
                            0x94D049BB133111EBULL));
  double u = rng.uniform();
  if (u < latency_rate) {
    decision.kind = FaultKind::kLatencySpike;
    decision.latency_s = rng.uniform(latency_min_s, latency_max_s);
    return decision;
  }
  u -= latency_rate;
  if (u < stall_rate) {
    decision.kind = FaultKind::kStall;
    decision.stall_s = rng.uniform(stall_min_s, stall_max_s);
    decision.body_fraction = rng.uniform(0.1, 0.9);
    return decision;
  }
  u -= stall_rate;
  if (u < partial_rate) {
    decision.kind = FaultKind::kPartialBody;
    decision.body_fraction = rng.uniform(0.1, 0.9);
    return decision;
  }
  u -= partial_rate;
  if (u < reset_rate) {
    decision.kind = FaultKind::kReset;
    return decision;
  }
  u -= reset_rate;
  if (u < http_error_rate) {
    decision.kind = FaultKind::kHttpError;
    return decision;
  }
  return decision;
}

std::string FaultPlan::to_json() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"latency_rate\": " << latency_rate << ",\n"
      << "  \"stall_rate\": " << stall_rate << ",\n"
      << "  \"partial_rate\": " << partial_rate << ",\n"
      << "  \"reset_rate\": " << reset_rate << ",\n"
      << "  \"http_error_rate\": " << http_error_rate << ",\n"
      << "  \"latency_min_s\": " << latency_min_s << ",\n"
      << "  \"latency_max_s\": " << latency_max_s << ",\n"
      << "  \"stall_min_s\": " << stall_min_s << ",\n"
      << "  \"stall_max_s\": " << stall_max_s << ",\n"
      << "  \"http_status\": " << http_status << ",\n"
      << "  \"error_response_s\": " << error_response_s << ",\n"
      << "  \"reset_delay_s\": " << reset_delay_s << ",\n"
      << "  \"max_faulty_attempts\": " << max_faulty_attempts << "\n"
      << "}\n";
  return out.str();
}

namespace {

/// Minimal parser for the flat {"key": number, ...} subset FaultPlan uses.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  /// Calls visit(key, value) for every pair; throws on malformed input.
  template <typename Visitor>
  void parse(Visitor&& visit) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      skip_ws();
      if (pos_ != text_.size()) fail("trailing garbage after object");
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      const double value = parse_number();
      visit(key, value);
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        skip_ws();
        if (pos_ != text_.size()) fail("trailing garbage after object");
        return;
      }
      fail("expected ',' or '}'");
    }
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument(std::string("FaultPlan JSON: ") + what);
  }
  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') out.push_back(text_[pos_++]);
    ++pos_;
    return out;
  }
  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    const std::string_view token = text_.substr(start, pos_ - start);
    // Strict JSON grammar + overflow-checked parse: "NaN", "inf", "1e999",
    // and stray signs all land on the same malformed-input path.
    double value = 0.0;
    if (!util::is_json_number(token) || !util::parse_double(token, value)) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

FaultPlan FaultPlan::from_json(std::string_view json) {
  FaultPlan plan;
  FlatJsonParser parser(json);
  // Integer fields go through the checked double->integer conversions: a
  // fractional, negative, or out-of-range value is malformed input, not a
  // silent truncation (the bare static_cast is UB outside the target range).
  const auto out_of_range = [](const std::string& key) -> std::invalid_argument {
    return std::invalid_argument("FaultPlan JSON: value out of range for '" +
                                 key + "'");
  };
  parser.parse([&plan, &out_of_range](const std::string& key, double value) {
    if (key == "seed") {
      if (!util::u64_from_double(value, plan.seed)) throw out_of_range(key);
    }
    else if (key == "latency_rate") plan.latency_rate = value;
    else if (key == "stall_rate") plan.stall_rate = value;
    else if (key == "partial_rate") plan.partial_rate = value;
    else if (key == "reset_rate") plan.reset_rate = value;
    else if (key == "http_error_rate") plan.http_error_rate = value;
    else if (key == "latency_min_s") plan.latency_min_s = value;
    else if (key == "latency_max_s") plan.latency_max_s = value;
    else if (key == "stall_min_s") plan.stall_min_s = value;
    else if (key == "stall_max_s") plan.stall_max_s = value;
    else if (key == "http_status") {
      if (!util::int_from_double(value, plan.http_status))
        throw out_of_range(key);
    }
    else if (key == "error_response_s") plan.error_response_s = value;
    else if (key == "reset_delay_s") plan.reset_delay_s = value;
    else if (key == "max_faulty_attempts") {
      if (!util::size_from_double(value, plan.max_faulty_attempts))
        throw out_of_range(key);
    }
    else
      throw std::invalid_argument("FaultPlan JSON: unknown key '" + key + "'");
  });
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FaultPlan: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

}  // namespace abr::testing
