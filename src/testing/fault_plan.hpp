#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace abr::testing {

/// The transport pathologies the fault framework can inject. Each maps to a
/// concrete behaviour on both the real-HTTP path (ChunkServer +
/// HttpChunkSource) and the virtual-time path (FaultySource), so every
/// benchmark scenario can be rerun under failure either way.
enum class FaultKind {
  kNone,
  kLatencySpike,  ///< first-byte delay before the response
  kStall,         ///< mid-body pause; the transfer then completes
  kPartialBody,   ///< body truncated mid-transfer, connection closed
  kReset,         ///< connection torn down before the response
  kHttpError,     ///< well-formed HTTP error response (5xx)
};

const char* fault_kind_name(FaultKind kind);

/// What happens to one request attempt. Produced by FaultPlan::decide.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  double latency_s = 0.0;      ///< kLatencySpike: extra delay, session seconds
  double stall_s = 0.0;        ///< kStall: pause duration, session seconds
  double body_fraction = 0.5;  ///< kStall/kPartialBody: where in the body
};

/// A deterministic, seeded fault schedule.
///
/// The decision for a request is a pure function of (seed, chunk index,
/// attempt number): no global state, no wall clock. Two runs of the same
/// plan against the same deterministic client therefore inject the same
/// faults at the same points, which is what makes `abrsim --faults` produce
/// bit-identical chunk logs across runs.
///
/// Rates are per-attempt probabilities evaluated in the order latency,
/// stall, partial, reset, http_error; at most one fault fires per attempt.
/// Attempts numbered >= max_faulty_attempts are never faulted, so a client
/// with enough retry budget always makes progress (no livelock by
/// construction).
struct FaultPlan {
  std::uint64_t seed = 1;

  double latency_rate = 0.0;
  double stall_rate = 0.0;
  double partial_rate = 0.0;
  double reset_rate = 0.0;
  double http_error_rate = 0.0;

  double latency_min_s = 0.2;
  double latency_max_s = 2.0;
  double stall_min_s = 0.5;
  double stall_max_s = 3.0;

  int http_status = 503;          ///< status used by kHttpError (5xx)
  double error_response_s = 0.1;  ///< virtual-time cost of a 5xx round trip
  double reset_delay_s = 0.2;     ///< virtual-time cost of a reset attempt

  /// Attempts >= this value are never faulted (progress guarantee). Raise it
  /// past the client's retry budget to create chunks that fail outright and
  /// exercise degradation/skip.
  std::size_t max_faulty_attempts = 2;

  /// Sum of the five rates (the per-attempt fault probability).
  double total_rate() const;

  /// Throws std::invalid_argument on out-of-range fields (negative rates,
  /// sum > 1, inverted magnitude ranges, non-5xx status, ...).
  void validate() const;

  /// The (deterministic) fate of attempt `attempt` at chunk `chunk`.
  FaultDecision decide(std::size_t chunk, std::size_t attempt) const;

  /// Flat JSON object with every field, parseable by from_json.
  std::string to_json() const;

  /// Parses a flat JSON object of numbers, e.g.
  ///   {"seed": 42, "reset_rate": 0.1, "stall_rate": 0.1, "stall_max_s": 2}
  /// Unlisted fields keep their defaults; unknown keys throw
  /// std::invalid_argument. The result is validate()d.
  static FaultPlan from_json(std::string_view json);

  /// from_json over a file's contents; throws std::runtime_error if the
  /// file cannot be read.
  static FaultPlan load(const std::string& path);
};

}  // namespace abr::testing
