#include "testing/faulty_source.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::testing {

FaultySource::FaultySource(sim::ChunkSource& inner, FaultPlan plan,
                           sim::RetryPolicy retry)
    : inner_(&inner),
      plan_(plan),
      retry_(retry),
      jitter_rng_(plan.seed ^ 0xA5A5A5A5A5A5A5A5ULL) {
  plan_.validate();
}

sim::FetchOutcome FaultySource::fetch(std::size_t chunk, std::size_t level) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);

  std::size_t& used = attempts_used_[chunk];
  const double start_s = inner_->now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;

  for (std::size_t local = 0; local < retry_.max_attempts; ++local) {
    const std::size_t attempt = used++;
    ++outcome.attempts;
    const FaultDecision decision = plan_.decide(chunk, attempt);
    if (decision.kind != FaultKind::kNone) {
      ++faults_injected_;
      ++outcome.faults;
      registry
          .counter(obs::kFaultsInjectedTotal,
                   obs::fault_kind_label(fault_kind_name(decision.kind)))
          .increment();
    }

    bool delivered = false;
    switch (decision.kind) {
      case FaultKind::kNone: {
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kLatencySpike: {
        inner_->wait(decision.latency_s);
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kStall: {
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        inner_->wait(decision.stall_s);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kPartialBody:
        // The bytes flowed (time elapses), then the connection died and the
        // truncated body is discarded.
        inner_->fetch(chunk, level);
        break;
      case FaultKind::kReset:
        inner_->wait(plan_.reset_delay_s);
        break;
      case FaultKind::kHttpError:
        inner_->wait(plan_.error_response_s);
        break;
    }

    if (delivered) {
      outcome.duration_s = std::max(inner_->now() - start_s, 1e-9);
      return outcome;
    }
    failures_total.increment();
    if (local + 1 < retry_.max_attempts) {
      ++retries_;
      retries_total.increment();
      inner_->wait(retry_.backoff_s(local + 1, jitter_rng_));
    }
  }

  outcome.failed = true;
  outcome.kilobits = 0.0;
  outcome.duration_s = std::max(inner_->now() - start_s, 1e-9);
  return outcome;
}

sim::FetchOutcome FaultySource::fetch_controlled(
    std::size_t chunk, std::size_t level, const sim::FetchControl& control) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);

  std::size_t& used = attempts_used_[chunk];
  const double start_s = inner_->now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;

  // Valid prefix accumulated so far; grows when a partial body keeps its
  // bytes under range resume, and every inner transfer resumes from it.
  double resume_kb = control.resume_from_kilobits;

  const auto finish = [&](const sim::FetchOutcome& inner, bool failed) {
    outcome.aborted = inner.aborted;
    outcome.failed = failed;
    outcome.delivered_kilobits =
        failed ? resume_kb : inner.delivered_kilobits;
    outcome.kilobits = std::max(
        0.0, outcome.delivered_kilobits - control.resume_from_kilobits);
    outcome.duration_s = std::max(inner_->now() - start_s, 1e-9);
    return outcome;
  };

  for (std::size_t local = 0; local < retry_.max_attempts; ++local) {
    const std::size_t attempt = used++;
    ++outcome.attempts;
    const FaultDecision decision = plan_.decide(chunk, attempt);
    if (decision.kind != FaultKind::kNone) {
      ++faults_injected_;
      ++outcome.faults;
      registry
          .counter(obs::kFaultsInjectedTotal,
                   obs::fault_kind_label(fault_kind_name(decision.kind)))
          .increment();
    }

    sim::FetchControl inner_control = control;
    inner_control.resume_from_kilobits = resume_kb;

    switch (decision.kind) {
      case FaultKind::kNone: {
        const sim::FetchOutcome inner =
            inner_->fetch_controlled(chunk, level, inner_control);
        outcome.resumes += inner.resumes;
        return finish(inner, false);
      }
      case FaultKind::kLatencySpike: {
        inner_->wait(decision.latency_s);
        const sim::FetchOutcome inner =
            inner_->fetch_controlled(chunk, level, inner_control);
        outcome.resumes += inner.resumes;
        return finish(inner, false);
      }
      case FaultKind::kStall: {
        const sim::FetchOutcome inner =
            inner_->fetch_controlled(chunk, level, inner_control);
        outcome.resumes += inner.resumes;
        // An aborted transfer tears the connection down before the stall
        // tail would have been ridden out.
        if (!inner.aborted) inner_->wait(decision.stall_s);
        return finish(inner, false);
      }
      case FaultKind::kPartialBody: {
        // Only a prefix of the remaining payload flows before the
        // connection dies — but under range resume that prefix stays
        // useful, so it becomes resume credit for the next attempt.
        inner_control.truncate_after_fraction = decision.body_fraction;
        const sim::FetchOutcome inner =
            inner_->fetch_controlled(chunk, level, inner_control);
        outcome.resumes += inner.resumes;
        resume_kb = inner.delivered_kilobits;
        if (inner.aborted) return finish(inner, false);
        break;
      }
      case FaultKind::kReset:
        inner_->wait(plan_.reset_delay_s);
        break;
      case FaultKind::kHttpError:
        inner_->wait(plan_.error_response_s);
        break;
    }

    failures_total.increment();
    if (local + 1 < retry_.max_attempts) {
      ++retries_;
      retries_total.increment();
      inner_->wait(retry_.backoff_s(local + 1, jitter_rng_));
    }
  }

  sim::FetchOutcome exhausted;
  exhausted.delivered_kilobits = resume_kb;
  return finish(exhausted, true);
}

}  // namespace abr::testing
