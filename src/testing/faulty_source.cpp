#include "testing/faulty_source.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/names.hpp"

namespace abr::testing {

FaultySource::FaultySource(sim::ChunkSource& inner, FaultPlan plan,
                           sim::RetryPolicy retry)
    : inner_(&inner),
      plan_(plan),
      retry_(retry),
      jitter_rng_(plan.seed ^ 0xA5A5A5A5A5A5A5A5ULL) {
  plan_.validate();
}

sim::FetchOutcome FaultySource::fetch(std::size_t chunk, std::size_t level) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Counter& retries_total = registry.counter(obs::kFetchRetriesTotal);
  obs::Counter& failures_total =
      registry.counter(obs::kFetchAttemptFailuresTotal);

  std::size_t& used = attempts_used_[chunk];
  const double start_s = inner_->now();
  sim::FetchOutcome outcome;
  outcome.attempts = 0;

  for (std::size_t local = 0; local < retry_.max_attempts; ++local) {
    const std::size_t attempt = used++;
    ++outcome.attempts;
    const FaultDecision decision = plan_.decide(chunk, attempt);
    if (decision.kind != FaultKind::kNone) {
      ++faults_injected_;
      ++outcome.faults;
      registry
          .counter(obs::kFaultsInjectedTotal,
                   obs::fault_kind_label(fault_kind_name(decision.kind)))
          .increment();
    }

    bool delivered = false;
    switch (decision.kind) {
      case FaultKind::kNone: {
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kLatencySpike: {
        inner_->wait(decision.latency_s);
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kStall: {
        const sim::FetchOutcome inner = inner_->fetch(chunk, level);
        inner_->wait(decision.stall_s);
        outcome.kilobits = inner.kilobits;
        delivered = true;
        break;
      }
      case FaultKind::kPartialBody:
        // The bytes flowed (time elapses), then the connection died and the
        // truncated body is discarded.
        inner_->fetch(chunk, level);
        break;
      case FaultKind::kReset:
        inner_->wait(plan_.reset_delay_s);
        break;
      case FaultKind::kHttpError:
        inner_->wait(plan_.error_response_s);
        break;
    }

    if (delivered) {
      outcome.duration_s = std::max(inner_->now() - start_s, 1e-9);
      return outcome;
    }
    failures_total.increment();
    if (local + 1 < retry_.max_attempts) {
      ++retries_;
      retries_total.increment();
      inner_->wait(retry_.backoff_s(local + 1, jitter_rng_));
    }
  }

  outcome.failed = true;
  outcome.kilobits = 0.0;
  outcome.duration_s = std::max(inner_->now() - start_s, 1e-9);
  return outcome;
}

}  // namespace abr::testing
