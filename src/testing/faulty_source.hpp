#pragma once

#include <cstddef>
#include <unordered_map>

#include "sim/chunk_source.hpp"
#include "testing/fault_plan.hpp"
#include "util/rng.hpp"

namespace abr::testing {

/// Wraps any sim::ChunkSource and applies a FaultPlan to it, emulating the
/// client-side retry loop in the source's own timebase (virtual seconds for
/// TraceChunkSource). This is how `abrsim --faults` reruns a pure simulation
/// under failure with bit-identical results across runs: everything —
/// fault schedule, backoff jitter, elapsed time — is derived from seeds.
///
/// Per attempt, in source time:
///  - latency spike: wait(latency_s), then the transfer completes;
///  - stall: the transfer completes, then wait(stall_s) (mid-body placement
///    is irrelevant once time is virtual);
///  - partial body: the full transfer time elapses (bytes flowed), then the
///    attempt is discarded as truncated;
///  - reset: wait(reset_delay_s), attempt fails;
///  - HTTP 5xx: wait(error_response_s), attempt fails.
/// Failed attempts are separated by the RetryPolicy's backoff. After
/// max_attempts failures the returned outcome has failed = true and the
/// player's degradation path takes over.
///
/// Attempt numbers are counted per chunk across fetch() calls, so a
/// degraded re-fetch at the lowest level continues the same schedule the
/// server-side injector would see.
class FaultySource final : public sim::ChunkSource {
 public:
  /// The inner source must outlive this object. The plan is validate()d.
  FaultySource(sim::ChunkSource& inner, FaultPlan plan,
               sim::RetryPolicy retry = {});

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override;

  /// Sub-chunk variant: same schedule, attempt numbering, and backoff
  /// stream as fetch(), but faults compose with range resume — a partial
  /// body keeps its prefix as resume credit instead of being discarded, a
  /// mid-body stall that the abort monitor cancels never serves its tail,
  /// and an inner abort surfaces immediately with the delivered prefix.
  sim::FetchOutcome fetch_controlled(std::size_t chunk, std::size_t level,
                                     const sim::FetchControl& control) override;
  bool supports_range() const override { return inner_->supports_range(); }
  void wait(double seconds) override { inner_->wait(seconds); }
  double now() const override { return inner_->now(); }
  const trace::ThroughputTrace* truth() const override {
    return inner_->truth();
  }

  std::size_t faults_injected() const { return faults_injected_; }
  std::size_t retries() const { return retries_; }

 private:
  sim::ChunkSource* inner_;
  FaultPlan plan_;
  sim::RetryPolicy retry_;
  util::Rng jitter_rng_;
  std::unordered_map<std::size_t, std::size_t> attempts_used_;
  std::size_t faults_injected_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace abr::testing
