#include "testing/invariant_checker.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <sstream>

namespace abr::testing {

namespace {

class Collector {
 public:
  explicit Collector(InvariantReport& report) : report_(&report) {}

  // Appends a violation like "chunk 3: rebuffer_s: got 1.25, want 0.5".
  template <typename Got, typename Want>
  void mismatch(std::size_t chunk, const char* what, Got got, Want want) {
    std::ostringstream os;
    os << "chunk " << chunk << ": " << what << ": got " << got << ", want "
       << want;
    report_->violations.push_back(os.str());
  }

  template <typename Got, typename Want>
  void mismatch(const char* what, Got got, Want want) {
    std::ostringstream os;
    os << what << ": got " << got << ", want " << want;
    report_->violations.push_back(os.str());
  }

  void note(std::size_t chunk, const std::string& what) {
    std::ostringstream os;
    os << "chunk " << chunk << ": " << what;
    report_->violations.push_back(os.str());
  }

  bool near(double got, double want, double tol) const {
    return std::abs(got - want) <= tol;
  }

  void expect_near(std::size_t chunk, const char* what, double got,
                   double want, double tol) {
    if (!near(got, want, tol)) mismatch(chunk, what, got, want);
  }

  void expect_near(const char* what, double got, double want, double tol) {
    if (!near(got, want, tol)) mismatch(what, got, want);
  }

 private:
  InvariantReport* report_;
};

}  // namespace

std::string InvariantReport::to_string() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += '\n';
    out += v;
  }
  return out;
}

InvariantReport InvariantChecker::check_buffer_dynamics(
    const sim::SessionResult& result) const {
  InvariantReport report;
  Collector check(report);
  const double duration = options_.chunk_duration_s;
  const double capacity = options_.buffer_capacity_s;
  const double tol = options_.tolerance;

  double buffer_s = 0.0;
  bool playing = false;
  double startup_s = 0.0;
  bool started = false;
  double rebuffer_sum = 0.0;
  double wait_sum = 0.0;
  double clock_s = 0.0;

  for (std::size_t k = 0; k < result.chunks.size(); ++k) {
    const sim::ChunkRecord& r = result.chunks[k];
    if (!options_.allow_failures &&
        (r.skipped || r.partial || r.degraded || r.aborted)) {
      check.note(k, "failure-path flags set in a fault-free session");
    }
    if (options_.check_time_continuity) {
      check.expect_near(k, "start_s", r.start_s, clock_s, tol);
    }
    check.expect_near(k, "buffer_before_s", r.buffer_before_s, buffer_s, tol);
    if (r.download_s <= 0.0) {
      check.note(k, "download_s is not positive");
    }

    // Eq. (3): the buffer drains (and may stall) while the chunk downloads.
    double stall = 0.0;
    if (playing) {
      stall = std::max(0.0, r.download_s - buffer_s);
      buffer_s = std::max(0.0, buffer_s - r.download_s);
    }

    // Append. A skipped chunk delivers nothing and charges its duration as a
    // stall; a partial chunk appends only the played prefix and charges the
    // missing suffix. The prefix length is recovered from the recorded
    // rebuffer (appended = duration - suffix charge), which the consistency
    // checks below pin down.
    if (r.skipped) {
      check.expect_near(k, "rebuffer_s (skipped chunk)", r.rebuffer_s,
                        stall + duration, tol);
    } else if (r.partial) {
      const double appended = duration - (r.rebuffer_s - stall);
      if (appended < -tol || appended > duration + tol) {
        check.note(k, "partial-chunk rebuffer outside [stall, stall + "
                      "chunk_duration]");
      }
      buffer_s += std::clamp(appended, 0.0, duration);
    } else {
      check.expect_near(k, "rebuffer_s", r.rebuffer_s, stall, tol);
      buffer_s += duration;
    }

    // Startup (kFirstChunk): the first delivered chunk starts playback at
    // its completion time.
    if (!playing && !r.skipped) {
      playing = true;
      startup_s = r.start_s + r.download_s;
      started = true;
    }

    // Eq. (4): drain the excess over capacity before the next request.
    const double wait = std::max(0.0, buffer_s - capacity);
    buffer_s = std::min(buffer_s, capacity);
    check.expect_near(k, "wait_s", r.wait_s, wait, tol);
    check.expect_near(k, "buffer_after_s", r.buffer_after_s, buffer_s, tol);
    if (buffer_s < -tol || buffer_s > capacity + tol) {
      check.note(k, "buffer left [0, capacity]");
    }
    if (r.rebuffer_s < -tol) check.note(k, "negative rebuffer_s");
    if (r.wait_s < -tol) check.note(k, "negative wait_s");

    rebuffer_sum += r.rebuffer_s;
    wait_sum += r.wait_s;
    clock_s = r.start_s + r.download_s + r.wait_s;
  }

  check.expect_near("total_rebuffer_s", result.total_rebuffer_s, rebuffer_sum,
                    tol * std::max<double>(1, result.chunks.size()));
  check.expect_near("total_wait_s", result.total_wait_s, wait_sum,
                    tol * std::max<double>(1, result.chunks.size()));
  if (started) {
    check.expect_near("startup_delay_s", result.startup_delay_s, startup_s,
                      tol);
  }
  if (options_.check_time_continuity && !result.chunks.empty()) {
    check.expect_near("session_duration_s", result.session_duration_s,
                      clock_s, tol);
  }
  return report;
}

InvariantReport InvariantChecker::check_qoe_conservation(
    const sim::SessionResult& result, const qoe::QoeModel& model) const {
  InvariantReport report;
  Collector check(report);

  std::vector<double> bitrates;
  std::vector<double> rebuffers;
  bitrates.reserve(result.chunks.size());
  rebuffers.reserve(result.chunks.size());
  for (const sim::ChunkRecord& r : result.chunks) {
    bitrates.push_back(r.bitrate_kbps);
    rebuffers.push_back(r.rebuffer_s);
  }
  const double startup =
      options_.include_startup_in_qoe ? result.startup_delay_s : 0.0;
  const double expected = model.session_qoe(bitrates, rebuffers, startup);
  check.expect_near("qoe (Eq. 5 conservation)", result.qoe, expected,
                    options_.qoe_tolerance);
  return report;
}

InvariantReport InvariantChecker::check_aggregates(
    const sim::SessionResult& result) const {
  InvariantReport report;
  Collector check(report);
  const double tol = options_.tolerance;

  double bitrate_sum = 0.0;
  double change_sum = 0.0;
  double wasted = 0.0;
  std::size_t stalled = 0, switches = 0, degraded = 0, skipped = 0;
  std::size_t aborted = 0, partial = 0, resumes = 0, attempts = 0;
  for (std::size_t k = 0; k < result.chunks.size(); ++k) {
    const sim::ChunkRecord& r = result.chunks[k];
    bitrate_sum += r.bitrate_kbps;
    if (r.rebuffer_s > 0.0) ++stalled;
    if (r.degraded) ++degraded;
    if (r.skipped) ++skipped;
    if (r.aborted) ++aborted;
    if (r.partial) ++partial;
    resumes += r.resumes;
    attempts += r.attempts;
    wasted += r.wasted_kilobits;
    if (k > 0) {
      const double delta =
          std::abs(r.bitrate_kbps - result.chunks[k - 1].bitrate_kbps);
      change_sum += delta;
      if (delta > 0.0) ++switches;
    }
  }
  const auto n = static_cast<double>(result.chunks.size());
  check.expect_near("average_bitrate_kbps", result.average_bitrate_kbps,
                    n > 0 ? bitrate_sum / n : 0.0, tol * std::max(1.0, n));
  check.expect_near("average_bitrate_change_kbps",
                    result.average_bitrate_change_kbps,
                    n > 1 ? change_sum / (n - 1.0) : 0.0,
                    tol * std::max(1.0, n));
  check.expect_near("rebuffer_chunk_fraction", result.rebuffer_chunk_fraction,
                    n > 0 ? static_cast<double>(stalled) / n : 0.0, tol);
  check.expect_near("wasted_kilobits", result.wasted_kilobits, wasted,
                    tol * std::max(1.0, n));
  if (result.switch_count != switches) {
    check.mismatch("switch_count", result.switch_count, switches);
  }
  if (result.degraded_chunks != degraded) {
    check.mismatch("degraded_chunks", result.degraded_chunks, degraded);
  }
  if (result.skipped_chunks != skipped) {
    check.mismatch("skipped_chunks", result.skipped_chunks, skipped);
  }
  if (result.aborted_chunks != aborted) {
    check.mismatch("aborted_chunks", result.aborted_chunks, aborted);
  }
  if (result.partial_chunks != partial) {
    check.mismatch("partial_chunks", result.partial_chunks, partial);
  }
  if (result.resume_count != resumes) {
    check.mismatch("resume_count", result.resume_count, resumes);
  }
  if (result.total_attempts != attempts) {
    check.mismatch("total_attempts", result.total_attempts, attempts);
  }
  return report;
}

InvariantReport InvariantChecker::check_all(const sim::SessionResult& result,
                                            const qoe::QoeModel& model) const {
  InvariantReport report = check_buffer_dynamics(result);
  InvariantReport qoe = check_qoe_conservation(result, model);
  InvariantReport agg = check_aggregates(result);
  report.violations.insert(report.violations.end(), qoe.violations.begin(),
                           qoe.violations.end());
  report.violations.insert(report.violations.end(), agg.violations.begin(),
                           agg.violations.end());
  return report;
}

}  // namespace abr::testing
