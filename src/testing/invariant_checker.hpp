#pragma once

#include <string>
#include <vector>

#include "qoe/qoe.hpp"
#include "sim/player.hpp"

namespace abr::testing {

/// Knobs for the replay below. The defaults match the paper's Section 7.1.1
/// setup (4 s chunks, 30 s buffer) and the strict property_test profile.
struct InvariantOptions {
  double chunk_duration_s = 4.0;
  double buffer_capacity_s = 30.0;

  /// Mirrors SessionConfig::include_startup_in_qoe for the Eq. (5) check.
  bool include_startup_in_qoe = true;

  /// When false, any skipped/partial/degraded/aborted chunk is itself a
  /// violation (the fault-free property_test profile). When true the replay
  /// models the failure paths: a skipped chunk appends nothing and charges
  /// its full duration as rebuffering; a partial chunk appends the played
  /// prefix and charges the missing suffix.
  bool allow_failures = true;

  /// Checks start_s continuity: chunk k+1 starts exactly when chunk k's
  /// download + buffer-full wait ended. Holds for every sequential
  /// single-session source (virtual-time sim, FaultySource wrappers).
  bool check_time_continuity = true;

  double tolerance = 1e-9;      ///< absolute, for buffer/time quantities
  double qoe_tolerance = 1e-6;  ///< absolute, for the Eq. (5) conservation
};

/// Outcome of a replay: empty `violations` means every invariant held.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  /// Newline-joined violations (empty string when ok).
  std::string to_string() const;
};

/// Replays a finished SessionResult against the paper's buffer-dynamics
/// equations and the Eq. (5) QoE definition, independently of the player
/// that produced it. Used by tests/property_test.cpp and the session-level
/// fuzz harness, so the invariants live in exactly one place.
///
/// Supports StartupPolicy::kFirstChunk sessions (playback begins when the
/// first non-skipped chunk lands) — the policy every current caller uses.
///
/// Invariants checked:
///  - Eq. (1)-(3): buffer_before/buffer_after/rebuffer_s of every chunk
///    match a from-scratch replay of download-drain + append (including the
///    skip / partial-prefix failure paths);
///  - Eq. (4): wait_s equals the excess over capacity, and the buffer never
///    leaves [0, capacity];
///  - startup: startup_delay_s is the completion time of the first played
///    chunk;
///  - Eq. (5): result.qoe equals QoeModel::session_qoe over the per-chunk
///    bitrate/rebuffer vectors (QoE attribution conservation);
///  - aggregates: every derived counter/average in SessionResult matches a
///    recomputation from the chunk log.
class InvariantChecker {
 public:
  explicit InvariantChecker(InvariantOptions options) : options_(options) {}

  /// Eq. (1)-(4) replay.
  InvariantReport check_buffer_dynamics(const sim::SessionResult& result) const;

  /// Eq. (5) conservation under `model`.
  InvariantReport check_qoe_conservation(const sim::SessionResult& result,
                                         const qoe::QoeModel& model) const;

  /// Derived aggregates vs the chunk log.
  InvariantReport check_aggregates(const sim::SessionResult& result) const;

  /// All of the above, violations concatenated.
  InvariantReport check_all(const sim::SessionResult& result,
                            const qoe::QoeModel& model) const;

  const InvariantOptions& options() const { return options_; }

 private:
  InvariantOptions options_;
};

}  // namespace abr::testing
