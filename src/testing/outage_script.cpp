#include "testing/outage_script.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "util/checked_parse.hpp"
#include "util/strings.hpp"

namespace abr::testing {

void OutageScript::validate() const {
  for (const OutageWindow& window : windows) {
    if (window.down_s < 0.0) {
      throw std::invalid_argument("OutageScript: negative down_s");
    }
    if (window.up_s <= window.down_s) {
      throw std::invalid_argument("OutageScript: window must end after it starts");
    }
  }
}

bool OutageScript::down(std::size_t origin, double now_s) const {
  for (const OutageWindow& window : windows) {
    if (window.origin != origin) continue;
    if (now_s >= window.down_s && now_s < window.up_s) return true;
  }
  return false;
}

double OutageScript::last_recovery_s() const {
  double latest = 0.0;
  for (const OutageWindow& window : windows) {
    if (window.up_s > latest) latest = window.up_s;
  }
  return latest;
}

OutageWindow OutageScript::parse_kill_spec(std::string_view spec) {
  OutageWindow window;
  window.up_s = std::numeric_limits<double>::infinity();  // "never restarts"
  bool has_at = false;
  for (const std::string_view part : util::split(spec, ',')) {
    const std::size_t equals = part.find('=');
    if (equals == std::string_view::npos) {
      throw std::invalid_argument("kill spec: expected key=value, got '" +
                                  std::string(part) + "'");
    }
    const std::string_view key = util::trim(part.substr(0, equals));
    const std::string value(util::trim(part.substr(equals + 1)));
    if (value.empty()) {
      throw std::invalid_argument("kill spec: empty value for '" +
                                  std::string(key) + "'");
    }
    // Overflow-checked parse: "1e999", "nan", and "inf" are all malformed
    // (strtod would accept them, and the origin cast below would be UB on a
    // huge value).
    double number = 0.0;
    if (!util::parse_finite_double(value, number)) {
      throw std::invalid_argument("kill spec: bad number '" + value + "'");
    }
    if (key == "at") {
      window.down_s = number;
      has_at = true;
    } else if (key == "restart") {
      window.up_s = number;
    } else if (key == "origin") {
      if (!util::size_from_double(number, window.origin)) {
        throw std::invalid_argument("kill spec: bad origin index '" + value +
                                    "'");
      }
    } else {
      throw std::invalid_argument("kill spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  if (!has_at) {
    throw std::invalid_argument("kill spec: missing 'at=' (kill time)");
  }
  return window;
}

}  // namespace abr::testing
