#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace abr::testing {

/// One origin-down interval in session time: the origin refuses connections
/// (or, for a live ChunkServer, is stopped and later restarted) during
/// [down_s, up_s).
struct OutageWindow {
  std::size_t origin = 0;
  double down_s = 0.0;
  double up_s = 0.0;
};

/// A deterministic origin-outage schedule — the chaos counterpart of
/// FaultPlan. FaultPlan perturbs individual request attempts; OutageScript
/// takes whole origins down for intervals of session time. Session time is
/// virtual in `abrsim --origins` runs (what makes two runs bit-identical)
/// and trace time for a live multi-origin emulation (where the harness
/// stops/starts real ChunkServers on the same schedule).
struct OutageScript {
  std::vector<OutageWindow> windows;

  /// Throws std::invalid_argument on inverted or negative windows.
  void validate() const;

  /// True when `origin` is inside any of its down windows at time `now_s`.
  bool down(std::size_t origin, double now_s) const;

  /// Latest up_s across all windows (0 when empty): after this instant every
  /// origin is back for good.
  double last_recovery_s() const;

  /// Parses the abrsim `--kill-origin` spec "at=T[,restart=U][,origin=K]"
  /// (restart defaults to "never", origin to 0). Throws
  /// std::invalid_argument on unknown keys or malformed numbers.
  static OutageWindow parse_kill_spec(std::string_view spec);
};

}  // namespace abr::testing
