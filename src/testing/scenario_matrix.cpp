#include "testing/scenario_matrix.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "media/quality.hpp"
#include "net/origin_sim.hpp"
#include "obs/journal.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "testing/faulty_source.hpp"
#include "util/parallel.hpp"

namespace abr::testing {

namespace {

/// Forwards to an inner controller while summing the deterministic solver
/// effort (DecisionTelemetry::nodes_expanded) and decide() calls of a cell.
/// reset() forwards without clearing the counters: they accumulate across
/// the cell's sessions.
class CountingController final : public sim::BitrateController {
 public:
  explicit CountingController(sim::BitrateController& inner)
      : inner_(&inner) {}

  std::size_t decide(const sim::AbrState& state,
                     const media::VideoManifest& manifest) override {
    const std::size_t level = inner_->decide(state, manifest);
    ++decide_calls;
    if (const sim::DecisionTelemetry* telemetry = inner_->last_decision()) {
      solver_nodes += telemetry->nodes_expanded;
    }
    return level;
  }
  std::size_t prediction_horizon() const override {
    return inner_->prediction_horizon();
  }
  void reset() override { inner_->reset(); }
  std::string name() const override { return inner_->name(); }
  const sim::DecisionTelemetry* last_decision() const override {
    return inner_->last_decision();
  }

  std::size_t decide_calls = 0;
  std::size_t solver_nodes = 0;

 private:
  sim::BitrateController* inner_;
};

void fnv_absorb(std::uint64_t& hash, std::uint64_t value) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffULL;
    hash *= kPrime;
  }
}

struct CellTotals {
  double qoe = 0.0;
  double bitrate_kbps = 0.0;
  double rebuffer_s = 0.0;
  double video_s = 0.0;
  double switches = 0.0;
  std::size_t degraded = 0;
  std::size_t skipped = 0;
  std::size_t attempts = 0;
  std::size_t aborted = 0;
  std::size_t partial = 0;
  double wasted_kb = 0.0;
};

}  // namespace

const char* scenario_kind_name(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kClean: return "clean";
    case ScenarioKind::kFaultStorm: return "faults";
    case ScenarioKind::kOutage: return "outage";
    case ScenarioKind::kRangeChaos: return "range-chaos";
  }
  return "?";
}

Scenario Scenario::clean() { return Scenario{}; }

Scenario Scenario::fault_storm(std::uint64_t seed) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kFaultStorm;
  scenario.name = "faults";
  scenario.faults.seed = seed;
  scenario.faults.latency_rate = 0.05;
  scenario.faults.stall_rate = 0.05;
  scenario.faults.partial_rate = 0.03;
  scenario.faults.reset_rate = 0.03;
  scenario.faults.http_error_rate = 0.04;
  scenario.faults.validate();
  return scenario;
}

Scenario Scenario::range_chaos(std::uint64_t seed) {
  Scenario scenario = fault_storm(seed);
  scenario.kind = ScenarioKind::kRangeChaos;
  scenario.name = "range-chaos";
  return scenario;
}

Scenario Scenario::outage(double down_s, double up_s, std::size_t origins) {
  Scenario scenario;
  scenario.kind = ScenarioKind::kOutage;
  scenario.name = "outage";
  scenario.origins = origins;
  scenario.outages.windows.push_back(OutageWindow{0, down_s, up_s});
  scenario.outages.validate();
  return scenario;
}

MatrixConfig MatrixConfig::smoke() {
  MatrixConfig config;
  config.families = {
      TraceFamily{trace::DatasetKind::kFcc, 2, 320.0, 20150817},
      TraceFamily{trace::DatasetKind::kHsdpa, 2, 320.0, 20150817},
  };
  config.scenarios = {Scenario::clean(), Scenario::fault_storm(42),
                      Scenario::outage(40.0, 80.0), Scenario::range_chaos(42)};
  return config;
}

MatrixConfig MatrixConfig::full() {
  MatrixConfig config = smoke();
  config.families = {
      TraceFamily{trace::DatasetKind::kFcc, 20, 320.0, 20150817},
      TraceFamily{trace::DatasetKind::kHsdpa, 20, 320.0, 20150817},
      TraceFamily{trace::DatasetKind::kMarkov, 20, 320.0, 20150817},
  };
  return config;
}

TournamentReport run_tournament(const MatrixConfig& config) {
  std::vector<core::Algorithm> algorithms = config.algorithms;
  if (algorithms.empty()) algorithms = core::registered_algorithms();
  if (config.families.empty()) {
    throw std::invalid_argument("run_tournament: no trace families");
  }
  if (config.scenarios.empty()) {
    throw std::invalid_argument("run_tournament: no scenarios");
  }

  const media::VideoManifest manifest = media::VideoManifest::envivio_default();
  const qoe::QoeModel qoe(media::QualityFunction::identity(),
                          qoe::preset_weights(config.preference));

  // Shared inputs, generated once: every algorithm competes on identical
  // traces, and the FastMPC table build is hoisted out of the cell sweep.
  std::vector<std::vector<trace::ThroughputTrace>> datasets;
  datasets.reserve(config.families.size());
  for (const TraceFamily& family : config.families) {
    datasets.push_back(trace::make_dataset(family.kind, family.count,
                                           family.duration_s, family.seed));
  }
  core::AlgorithmOptions options;
  options.buffer_capacity_s = config.buffer_capacity_s;
  options.mpc_horizon = config.mpc_horizon;
  if (std::find(algorithms.begin(), algorithms.end(),
                core::Algorithm::kFastMpc) != algorithms.end()) {
    options.fastmpc_table =
        core::default_fastmpc_table(manifest, qoe, config.buffer_capacity_s);
  }

  const std::size_t family_count = config.families.size();
  const std::size_t scenario_count = config.scenarios.size();
  const std::size_t cell_count =
      algorithms.size() * family_count * scenario_count;
  std::vector<CellResult> cells(cell_count);

  util::parallel_for(
      cell_count,
      [&](std::size_t index) {
        const std::size_t a = index / (family_count * scenario_count);
        const std::size_t f = (index / scenario_count) % family_count;
        const std::size_t s = index % scenario_count;
        const Scenario& scenario = config.scenarios[s];
        const std::vector<trace::ThroughputTrace>& traces = datasets[f];

        core::AlgorithmInstance instance =
            core::make_algorithm(algorithms[a], manifest, qoe, options);
        CountingController counting(*instance.controller);

        sim::SessionConfig session;
        session.buffer_capacity_s = config.buffer_capacity_s;
        session.abort_policy.enabled =
            scenario.kind == ScenarioKind::kRangeChaos;
        const sim::PlayerSession player(manifest, qoe, session);

        CellResult& cell = cells[index];
        cell.algorithm = core::algorithm_name(algorithms[a]);
        cell.family = trace::dataset_name(config.families[f].kind);
        cell.scenario = scenario.name;
        cell.decision_hash = 14695981039346656037ULL;  // FNV-1a offset basis

        CellTotals totals;
        for (std::size_t t = 0; t < traces.size(); ++t) {
          sim::TraceChunkSource base(traces[t], manifest);
          std::unique_ptr<FaultySource> faulty;
          std::unique_ptr<net::SimulatedOriginSource> chaotic;
          sim::ChunkSource* source = &base;
          switch (scenario.kind) {
            case ScenarioKind::kClean:
              break;
            case ScenarioKind::kRangeChaos:
            case ScenarioKind::kFaultStorm: {
              FaultPlan plan = scenario.faults;
              // Distinct-but-derived schedule per session.
              plan.seed = scenario.faults.seed + 1000003ULL * t;
              faulty = std::make_unique<FaultySource>(base, plan);
              source = faulty.get();
              break;
            }
            case ScenarioKind::kOutage: {
              net::SimulatedOriginOptions origin_options;
              origin_options.origins = scenario.origins;
              origin_options.seed = scenario.origin_seed + t;
              chaotic = std::make_unique<net::SimulatedOriginSource>(
                  traces[t], manifest, scenario.outages, origin_options);
              source = chaotic.get();
              break;
            }
          }
          const sim::SessionResult result =
              player.run(*source, counting, *instance.predictor);

          totals.qoe += result.qoe;
          totals.bitrate_kbps += result.average_bitrate_kbps;
          totals.rebuffer_s += result.total_rebuffer_s;
          totals.video_s += manifest.duration_s();
          totals.switches += static_cast<double>(result.switch_count);
          totals.degraded += result.degraded_chunks;
          totals.skipped += result.skipped_chunks;
          totals.attempts += result.total_attempts;
          totals.aborted += result.aborted_chunks;
          totals.partial += result.partial_chunks;
          totals.wasted_kb += result.wasted_kilobits;
          for (const sim::ChunkRecord& chunk : result.chunks) {
            fnv_absorb(cell.decision_hash, chunk.index);
            fnv_absorb(cell.decision_hash, chunk.level);
            fnv_absorb(cell.decision_hash, chunk.skipped ? 1 : 0);
          }
        }

        const double n = static_cast<double>(traces.size());
        cell.sessions = traces.size();
        cell.mean_qoe = totals.qoe / n;
        cell.mean_bitrate_kbps = totals.bitrate_kbps / n;
        cell.mean_rebuffer_s = totals.rebuffer_s / n;
        cell.rebuffer_ratio =
            totals.video_s > 0.0 ? totals.rebuffer_s / totals.video_s : 0.0;
        cell.mean_switches = totals.switches / n;
        cell.degraded_chunks = totals.degraded;
        cell.skipped_chunks = totals.skipped;
        cell.total_attempts = totals.attempts;
        cell.decide_calls = counting.decide_calls;
        cell.solver_nodes = counting.solver_nodes;
        cell.abort_enabled = scenario.kind == ScenarioKind::kRangeChaos;
        cell.aborted_chunks = totals.aborted;
        cell.partial_chunks = totals.partial;
        cell.wasted_kilobits = totals.wasted_kb;
      },
      config.threads);

  // Per-algorithm ranking across the whole matrix.
  TournamentReport report;
  report.cells = std::move(cells);
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    AlgorithmRank rank;
    rank.algorithm = core::algorithm_name(algorithms[a]);
    double qoe_sum = 0.0, bitrate_sum = 0.0, switches_sum = 0.0;
    double rebuffer_sum = 0.0, video_sum = 0.0;
    for (std::size_t f = 0; f < family_count; ++f) {
      for (std::size_t s = 0; s < scenario_count; ++s) {
        const CellResult& cell =
            report.cells[(a * family_count + f) * scenario_count + s];
        const double n = static_cast<double>(cell.sessions);
        rank.sessions += cell.sessions;
        qoe_sum += cell.mean_qoe * n;
        bitrate_sum += cell.mean_bitrate_kbps * n;
        switches_sum += cell.mean_switches * n;
        rebuffer_sum += cell.mean_rebuffer_s * n;
        video_sum += manifest.duration_s() * n;
        rank.solver_nodes += cell.solver_nodes;
      }
    }
    const double n = static_cast<double>(rank.sessions);
    rank.mean_qoe = qoe_sum / n;
    rank.mean_bitrate_kbps = bitrate_sum / n;
    rank.mean_switches = switches_sum / n;
    rank.mean_rebuffer_ratio = video_sum > 0.0 ? rebuffer_sum / video_sum : 0.0;
    report.ranking.push_back(std::move(rank));
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const AlgorithmRank& a, const AlgorithmRank& b) {
              if (a.mean_qoe != b.mean_qoe) return a.mean_qoe > b.mean_qoe;
              return a.algorithm < b.algorithm;
            });
  return report;
}

namespace {

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf);
}

}  // namespace

std::string TournamentReport::to_json() const {
  std::string out = "{\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out += "    {\"algorithm\": \"" + obs::json_escape(c.algorithm) +
           "\", \"family\": \"" + obs::json_escape(c.family) +
           "\", \"scenario\": \"" + obs::json_escape(c.scenario) +
           "\", \"sessions\": " + std::to_string(c.sessions) +
           ", \"mean_qoe\": " + obs::json_number(c.mean_qoe) +
           ", \"mean_bitrate_kbps\": " + obs::json_number(c.mean_bitrate_kbps) +
           ", \"mean_rebuffer_s\": " + obs::json_number(c.mean_rebuffer_s) +
           ", \"rebuffer_ratio\": " + obs::json_number(c.rebuffer_ratio) +
           ", \"mean_switches\": " + obs::json_number(c.mean_switches) +
           ", \"degraded_chunks\": " + std::to_string(c.degraded_chunks) +
           ", \"skipped_chunks\": " + std::to_string(c.skipped_chunks) +
           ", \"total_attempts\": " + std::to_string(c.total_attempts) +
           ", \"decide_calls\": " + std::to_string(c.decide_calls) +
           ", \"solver_nodes\": " + std::to_string(c.solver_nodes) +
           ", \"decision_hash\": \"" + hex64(c.decision_hash) + "\"";
    if (c.abort_enabled) {
      // Sub-chunk attribution is emitted only for abort-enabled cells so
      // that every pre-existing baseline line stays byte-identical.
      out += ", \"aborted_chunks\": " + std::to_string(c.aborted_chunks) +
             ", \"partial_chunks\": " + std::to_string(c.partial_chunks) +
             ", \"wasted_kilobits\": " + obs::json_number(c.wasted_kilobits);
    }
    out += "}";
    out += i + 1 < cells.size() ? ",\n" : "\n";
  }
  out += "  ],\n  \"ranking\": [\n";
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const AlgorithmRank& r = ranking[i];
    out += "    {\"algorithm\": \"" + obs::json_escape(r.algorithm) +
           "\", \"sessions\": " + std::to_string(r.sessions) +
           ", \"mean_qoe\": " + obs::json_number(r.mean_qoe) +
           ", \"mean_rebuffer_ratio\": " +
           obs::json_number(r.mean_rebuffer_ratio) +
           ", \"mean_bitrate_kbps\": " + obs::json_number(r.mean_bitrate_kbps) +
           ", \"mean_switches\": " + obs::json_number(r.mean_switches) +
           ", \"solver_nodes\": " + std::to_string(r.solver_nodes) + "}";
    out += i + 1 < ranking.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string TournamentReport::to_table() const {
  std::string out;
  char line[256];
  out += "# tournament ranking (mean over every cell; solver effort in "
         "nodes/evaluations)\n";
  std::snprintf(line, sizeof line, "%-4s %-12s %12s %14s %12s %10s %14s\n",
                "rank", "algorithm", "mean_qoe", "rebuf_ratio", "avg_kbps",
                "switches", "solver_nodes");
  out += line;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    const AlgorithmRank& r = ranking[i];
    std::snprintf(line, sizeof line,
                  "%-4zu %-12s %12.2f %14.5f %12.1f %10.2f %14zu\n", i + 1,
                  r.algorithm.c_str(), r.mean_qoe, r.mean_rebuffer_ratio,
                  r.mean_bitrate_kbps, r.mean_switches, r.solver_nodes);
    out += line;
  }
  out += "\n# cells\n";
  std::snprintf(line, sizeof line, "%-12s %-10s %-8s %12s %14s %10s %10s\n",
                "algorithm", "family", "scenario", "mean_qoe", "rebuf_ratio",
                "degraded", "skipped");
  out += line;
  for (const CellResult& c : cells) {
    std::snprintf(line, sizeof line,
                  "%-12s %-10s %-8s %12.2f %14.5f %10zu %10zu\n",
                  c.algorithm.c_str(), c.family.c_str(), c.scenario.c_str(),
                  c.mean_qoe, c.rebuffer_ratio, c.degraded_chunks,
                  c.skipped_chunks);
    out += line;
  }
  return out;
}

}  // namespace abr::testing
