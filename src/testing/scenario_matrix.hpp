#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithms.hpp"
#include "qoe/qoe.hpp"
#include "testing/fault_plan.hpp"
#include "testing/outage_script.hpp"
#include "trace/generators.hpp"

namespace abr::testing {

/// Delivery condition applied to every session of a tournament cell.
enum class ScenarioKind {
  kClean,       ///< plain TraceChunkSource (Eq. 2 virtual time)
  kFaultStorm,  ///< FaultPlan injected through FaultySource
  kOutage,      ///< OutageScript origin kills through SimulatedOriginSource
  kRangeChaos,  ///< the fault storm with sub-chunk abort/resume enabled
};

const char* scenario_kind_name(ScenarioKind kind);

/// One column of the scenario axis. The per-session fault-plan seed is
/// derived from `faults.seed` and the trace index, so every cell is a pure
/// function of the matrix configuration.
struct Scenario {
  ScenarioKind kind = ScenarioKind::kClean;
  std::string name = "clean";
  FaultPlan faults;            ///< used when kind == kFaultStorm
  OutageScript outages;        ///< used when kind == kOutage
  std::size_t origins = 2;     ///< used when kind == kOutage
  std::uint64_t origin_seed = 0x5eedULL;  ///< breaker/backoff jitter seed

  static Scenario clean();
  /// The default storm: every fault kind at a few percent per attempt.
  static Scenario fault_storm(std::uint64_t seed);
  /// Origin 0 down during [down_s, up_s) with a failover pool of `origins`.
  static Scenario outage(double down_s, double up_s, std::size_t origins = 2);
  /// The same storm as fault_storm(seed), but sessions run with the
  /// sub-chunk abort policy enabled: in-flight transfers that project a
  /// stall are aborted mid-body and resumed at a lower rung (HTTP Range
  /// semantics). Same seed => directly comparable against "faults" cells.
  static Scenario range_chaos(std::uint64_t seed);
};

/// One row group of the trace axis: a seeded synthetic dataset family.
struct TraceFamily {
  trace::DatasetKind kind = trace::DatasetKind::kFcc;
  std::size_t count = 4;       ///< traces (= sessions) per cell
  double duration_s = 320.0;
  std::uint64_t seed = 20150817;
};

/// The full tournament specification. Everything that affects results lives
/// here, and every field is deterministic — two run_tournament calls with
/// equal configs produce byte-identical reports.
struct MatrixConfig {
  /// Competing policies; empty means core::registered_algorithms().
  std::vector<core::Algorithm> algorithms;
  std::vector<TraceFamily> families;
  std::vector<Scenario> scenarios;
  qoe::QoePreference preference = qoe::QoePreference::kBalanced;
  double buffer_capacity_s = 30.0;
  std::size_t mpc_horizon = 5;
  /// Worker threads for the cell sweep (util::parallel_for); 0 = hardware
  /// concurrency. Thread count never changes results, only wall time.
  std::size_t threads = 0;

  /// The CI matrix: every registered algorithm x {fcc, hsdpa} x all three
  /// scenario kinds, 2 traces per cell.
  static MatrixConfig smoke();
  /// The EXPERIMENTS.md matrix: all three trace families, more traces.
  static MatrixConfig full();
};

/// Aggregates of one (algorithm, family, scenario) cell over its sessions.
/// Only deterministic quantities: solver effort is counted in nodes (search
/// nodes or DP evaluations), never wall time, so the JSON report is
/// byte-identical across runs and machines of the same build.
struct CellResult {
  std::string algorithm;
  std::string family;
  std::string scenario;
  std::size_t sessions = 0;
  double mean_qoe = 0.0;
  double mean_bitrate_kbps = 0.0;
  double mean_rebuffer_s = 0.0;
  /// Total rebuffer time / total video duration across the cell's sessions.
  double rebuffer_ratio = 0.0;
  double mean_switches = 0.0;
  std::size_t degraded_chunks = 0;
  std::size_t skipped_chunks = 0;
  std::size_t total_attempts = 0;
  std::size_t decide_calls = 0;
  std::size_t solver_nodes = 0;
  /// FNV-1a over every (chunk index, level, skipped) decision of the cell —
  /// pins the entire decision surface in one number.
  std::uint64_t decision_hash = 0;
  /// Sub-chunk delivery attribution; populated (and emitted in the JSON)
  /// only for abort-enabled scenarios so that pre-existing baseline cell
  /// lines stay byte-identical.
  bool abort_enabled = false;
  std::size_t aborted_chunks = 0;
  std::size_t partial_chunks = 0;
  double wasted_kilobits = 0.0;
};

/// Per-algorithm aggregate across every cell (all algorithms see identical
/// traces and scenarios, so straight means are comparable).
struct AlgorithmRank {
  std::string algorithm;
  std::size_t sessions = 0;
  double mean_qoe = 0.0;
  double mean_rebuffer_ratio = 0.0;
  double mean_bitrate_kbps = 0.0;
  double mean_switches = 0.0;
  std::size_t solver_nodes = 0;
};

struct TournamentReport {
  /// Enumeration order: algorithm-major, then family, then scenario.
  std::vector<CellResult> cells;
  /// Sorted by mean QoE descending (ties by name for determinism).
  std::vector<AlgorithmRank> ranking;

  /// Deterministic JSON document (obs::json_number rendering): the
  /// BENCH_tournament.json payload. Byte-identical across runs.
  std::string to_json() const;
  /// Ranked text table (the tools/abrreport idiom) for terminals and docs.
  std::string to_table() const;
};

/// Runs the whole matrix, cells in parallel, sessions within a cell
/// sequential. Throws if the config has no algorithms after defaulting, no
/// families, or no scenarios; exceptions from any cell propagate.
TournamentReport run_tournament(const MatrixConfig& config);

}  // namespace abr::testing
