#include "trace/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace abr::trace {

ThroughputTrace FccLikeConfig::generate(util::Rng& rng, double duration_s,
                                        std::string name) const {
  assert(duration_s > 0.0);
  const double session_mean = rng.uniform(mean_lo_kbps, mean_hi_kbps);

  std::vector<TraceSegment> segments;
  const auto n = static_cast<std::size_t>(std::ceil(duration_s / interval_s));
  segments.reserve(n);

  double epoch_mean = session_mean;
  double epoch_remaining_s = rng.exponential(epoch_mean_s);
  double jitter = 0.0;  // AR(1) multiplicative deviation
  const double innovation =
      relative_jitter * std::sqrt(1.0 - ar_coefficient * ar_coefficient);

  for (std::size_t i = 0; i < n; ++i) {
    if (epoch_remaining_s <= 0.0) {
      // Level shift: a new concatenated measurement set with a related mean.
      epoch_mean = session_mean *
                   rng.uniform(1.0 - level_shift_range, 1.0 + level_shift_range);
      epoch_remaining_s = rng.exponential(epoch_mean_s);
    }
    jitter = ar_coefficient * jitter + rng.gaussian(0.0, innovation);
    const double rate =
        std::max(min_rate_kbps, epoch_mean * (1.0 + jitter));
    segments.push_back({interval_s, rate});
    epoch_remaining_s -= interval_s;
  }
  return ThroughputTrace(std::move(segments), std::move(name));
}

ThroughputTrace HsdpaLikeConfig::generate(util::Rng& rng, double duration_s,
                                          std::string name) const {
  assert(duration_s > 0.0);
  const double session_mean = rng.uniform(mean_lo_kbps, mean_hi_kbps);
  const double log_mean = std::log(session_mean);

  std::vector<TraceSegment> segments;
  const auto n = static_cast<std::size_t>(std::ceil(duration_s / interval_s));
  segments.reserve(n);

  // Stationary log-AR(1): start from the stationary distribution so traces
  // have no warm-up artifact.
  const double stationary_sigma =
      log_sigma / std::sqrt(1.0 - ar_coefficient * ar_coefficient);
  double log_deviation = rng.gaussian(0.0, stationary_sigma);
  double fade_remaining_s = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    if (fade_remaining_s <= 0.0 && rng.uniform() < fade_probability) {
      fade_remaining_s = rng.exponential(fade_mean_duration_s);
    }
    double rate;
    if (fade_remaining_s > 0.0) {
      rate = std::max(min_rate_kbps,
                      fade_rate_kbps * rng.uniform(0.5, 1.5));
      fade_remaining_s -= interval_s;
    } else {
      log_deviation =
          ar_coefficient * log_deviation + rng.gaussian(0.0, log_sigma);
      rate = std::exp(log_mean + log_deviation);
    }
    rate = std::clamp(rate, min_rate_kbps, max_rate_kbps);
    segments.push_back({interval_s, rate});
  }
  return ThroughputTrace(std::move(segments), std::move(name));
}

ThroughputTrace MarkovConfig::generate(util::Rng& rng, double duration_s,
                                       std::string name) const {
  assert(duration_s > 0.0);
  const std::size_t n_states = state_mean_kbps.size();
  if (n_states == 0 || state_stddev_kbps.size() != n_states) {
    throw std::invalid_argument("MarkovConfig: bad state parameters");
  }
  if (!transition_matrix.empty() &&
      transition_matrix.size() != n_states * n_states) {
    throw std::invalid_argument("MarkovConfig: bad transition matrix size");
  }

  auto transition_row = [&](std::size_t state) {
    std::vector<double> row(n_states);
    if (!transition_matrix.empty()) {
      for (std::size_t j = 0; j < n_states; ++j) {
        row[j] = transition_matrix[state * n_states + j];
      }
    } else if (n_states == 1) {
      row[0] = 1.0;
    } else {
      const double off = (1.0 - stay_probability) /
                         static_cast<double>(n_states - 1);
      for (std::size_t j = 0; j < n_states; ++j) {
        row[j] = (j == state) ? stay_probability : off;
      }
    }
    return row;
  };

  std::vector<TraceSegment> segments;
  const auto n = static_cast<std::size_t>(std::ceil(duration_s / interval_s));
  segments.reserve(n);

  auto state = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(n_states) - 1));
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = std::max(
        min_rate_kbps,
        rng.gaussian(state_mean_kbps[state], state_stddev_kbps[state]));
    segments.push_back({interval_s, rate});
    const auto row = transition_row(state);
    state = rng.weighted_index(row.data(), row.size());
  }
  return ThroughputTrace(std::move(segments), std::move(name));
}

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kFcc:
      return "FCC";
    case DatasetKind::kHsdpa:
      return "HSDPA";
    case DatasetKind::kMarkov:
      return "Synthetic";
  }
  return "?";
}

std::vector<ThroughputTrace> make_dataset(DatasetKind kind, std::size_t count,
                                          double duration_s,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ThroughputTrace> traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng trace_rng = rng.split();
    const std::string name =
        std::string(dataset_name(kind)) + "-" + std::to_string(i);
    switch (kind) {
      case DatasetKind::kFcc:
        traces.push_back(FccLikeConfig{}.generate(trace_rng, duration_s, name));
        break;
      case DatasetKind::kHsdpa:
        traces.push_back(HsdpaLikeConfig{}.generate(trace_rng, duration_s, name));
        break;
      case DatasetKind::kMarkov:
        traces.push_back(MarkovConfig{}.generate(trace_rng, duration_s, name));
        break;
    }
  }
  return traces;
}

}  // namespace abr::trace
