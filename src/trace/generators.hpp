#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/throughput_trace.hpp"
#include "util/rng.hpp"

namespace abr::trace {

/// Synthetic stand-in for the FCC "Measuring Broadband America" dataset used
/// in the paper (Section 7.1.1). Properties reproduced:
///  - 5-second interval averages (the FCC reporting granularity);
///  - session means spread over (mean_lo, mean_hi) kbps — the paper filters
///    sessions to 0-3 Mbps;
///  - low short-term variability (fixed-line broadband), so the harmonic-mean
///    predictor achieves <~5 % average error;
///  - occasional level shifts, modeling the paper's concatenation of separate
///    measurement sets into video-length traces.
struct FccLikeConfig {
  double interval_s = 5.0;
  double mean_lo_kbps = 300.0;
  double mean_hi_kbps = 3000.0;
  double relative_jitter = 0.06;    ///< per-interval AR(1) noise amplitude
  double ar_coefficient = 0.6;      ///< jitter persistence
  double epoch_mean_s = 90.0;       ///< mean epoch length between level shifts
  double level_shift_range = 0.25;  ///< epoch mean multiplier in [1-r, 1+r]
  double min_rate_kbps = 80.0;

  ThroughputTrace generate(util::Rng& rng, double duration_s,
                           std::string name = {}) const;
};

/// Synthetic stand-in for the Telenor 3G/HSDPA mobility dataset. Properties
/// reproduced from the paper's characterization (Fig. 7 and Section 7.2):
///  - 1-second samples;
///  - high variability (stddev comparable to the mean);
///  - heavy-tailed prediction error, with the harmonic-mean predictor
///    over-estimating >20 % of the time and worst-case errors near 40 %;
///  - short deep fades (driving under bridges / handovers) that produce the
///    rebuffering events that separate RobustMPC from FastMPC.
struct HsdpaLikeConfig {
  double interval_s = 1.0;
  double mean_lo_kbps = 250.0;
  double mean_hi_kbps = 2500.0;
  double log_sigma = 0.40;          ///< innovation stddev of log-rate AR(1)
  double ar_coefficient = 0.94;     ///< log-rate persistence
  double fade_probability = 0.010;  ///< per-second chance a fade starts
  double fade_mean_duration_s = 3.0;
  double fade_rate_kbps = 60.0;
  double min_rate_kbps = 30.0;
  double max_rate_kbps = 9000.0;

  ThroughputTrace generate(util::Rng& rng, double duration_s,
                           std::string name = {}) const;
};

/// The paper's own synthetic model (Section 7.1.1): a hidden Markov state
/// S_t models the number of users sharing a bottleneck; given S_t = s the
/// throughput is Gaussian with mean m_s and variance sigma_s^2.
struct MarkovConfig {
  double interval_s = 1.0;
  /// Per-state mean throughput, kbps. Defaults model 1-4 users sharing a
  /// ~4.2 Mbps bottleneck.
  std::vector<double> state_mean_kbps = {4200.0, 2100.0, 1400.0, 1050.0};
  /// Per-state throughput stddev, kbps.
  std::vector<double> state_stddev_kbps = {300.0, 250.0, 200.0, 150.0};
  /// Probability of staying in the current state each interval; the rest is
  /// spread uniformly across the other states.
  double stay_probability = 0.9;
  /// Optional full transition matrix (row-major, n x n). If non-empty it
  /// overrides stay_probability.
  std::vector<double> transition_matrix;
  double min_rate_kbps = 50.0;

  ThroughputTrace generate(util::Rng& rng, double duration_s,
                           std::string name = {}) const;
};

/// Which of the three evaluation datasets to synthesize.
enum class DatasetKind { kFcc, kHsdpa, kMarkov };

const char* dataset_name(DatasetKind kind);

/// Generates `count` traces of `duration_s` seconds for the given dataset,
/// deterministically from `seed`. This is the entry point every bench uses,
/// so that all experiments see identical datasets for a given seed.
std::vector<ThroughputTrace> make_dataset(DatasetKind kind, std::size_t count,
                                          double duration_s,
                                          std::uint64_t seed);

}  // namespace abr::trace
