#include "trace/throughput_trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace abr::trace {

ThroughputTrace::ThroughputTrace(std::vector<TraceSegment> segments,
                                 std::string name)
    : segments_(std::move(segments)), name_(std::move(name)) {
  if (segments_.empty()) {
    throw std::invalid_argument("ThroughputTrace: no segments");
  }
  cum_time_.reserve(segments_.size());
  cum_kb_.reserve(segments_.size());
  double t = 0.0;
  double kb = 0.0;
  for (const TraceSegment& seg : segments_) {
    if (!(seg.duration_s > 0.0)) {
      throw std::invalid_argument("ThroughputTrace: non-positive duration");
    }
    if (seg.rate_kbps < 0.0) {
      throw std::invalid_argument("ThroughputTrace: negative rate");
    }
    cum_time_.push_back(t);
    cum_kb_.push_back(kb);
    t += seg.duration_s;
    kb += seg.duration_s * seg.rate_kbps;
  }
  period_s_ = t;
  total_kb_ = kb;
  if (!(total_kb_ > 0.0)) {
    throw std::invalid_argument("ThroughputTrace: zero total capacity");
  }
}

ThroughputTrace ThroughputTrace::constant(double rate_kbps, double duration_s,
                                          std::string name) {
  return ThroughputTrace({{duration_s, rate_kbps}}, std::move(name));
}

double ThroughputTrace::rate_at(double t) const {
  assert(t >= 0.0);
  double phase = std::fmod(t, period_s_);
  if (phase < 0.0) phase += period_s_;
  // Last segment whose start is <= phase.
  const auto it = std::upper_bound(cum_time_.begin(), cum_time_.end(), phase);
  const auto index = static_cast<std::size_t>(it - cum_time_.begin()) - 1;
  return segments_[index].rate_kbps;
}

double ThroughputTrace::kilobits_before(double u) const {
  assert(u >= 0.0 && u <= period_s_ + 1e-9);
  u = std::min(u, period_s_);
  const auto it = std::upper_bound(cum_time_.begin(), cum_time_.end(), u);
  const auto index = static_cast<std::size_t>(it - cum_time_.begin()) - 1;
  return cum_kb_[index] + (u - cum_time_[index]) * segments_[index].rate_kbps;
}

double ThroughputTrace::time_for_kilobits(double kb) const {
  assert(kb >= 0.0 && kb <= total_kb_ + 1e-9);
  kb = std::min(kb, total_kb_);
  // Last segment whose cumulative start is <= kb. Zero-rate segments have
  // equal consecutive cum_kb_ entries; upper_bound lands after them, which
  // correctly skips across dead air.
  const auto it = std::upper_bound(cum_kb_.begin(), cum_kb_.end(), kb);
  const auto index = static_cast<std::size_t>(it - cum_kb_.begin()) - 1;
  const TraceSegment& seg = segments_[index];
  if (seg.rate_kbps <= 0.0) {
    // kb falls exactly on the boundary of a zero-rate segment; the transfer
    // completes at its start.
    return cum_time_[index];
  }
  return cum_time_[index] + (kb - cum_kb_[index]) / seg.rate_kbps;
}

double ThroughputTrace::kilobits_between(double t0, double t1) const {
  assert(t1 >= t0 && t0 >= 0.0);
  const double full_cycles = std::floor(t1 / period_s_) - std::floor(t0 / period_s_);
  const double phase0 = t0 - std::floor(t0 / period_s_) * period_s_;
  const double phase1 = t1 - std::floor(t1 / period_s_) * period_s_;
  return full_cycles * total_kb_ + kilobits_before(phase1) - kilobits_before(phase0);
}

double ThroughputTrace::transfer_end_time(double kilobits, double start_s) const {
  assert(kilobits >= 0.0 && start_s >= 0.0);
  if (kilobits == 0.0) return start_s;
  const double cycle_start = std::floor(start_s / period_s_) * period_s_;
  const double phase = start_s - cycle_start;
  double remaining = kilobits;
  double base = cycle_start;

  const double tail_kb = total_kb_ - kilobits_before(phase);
  if (remaining <= tail_kb) {
    return base + time_for_kilobits(kilobits_before(phase) + remaining);
  }
  remaining -= tail_kb;
  base += period_s_;
  const double cycles = std::floor(remaining / total_kb_);
  base += cycles * period_s_;
  remaining -= cycles * total_kb_;
  return base + time_for_kilobits(remaining);
}

double ThroughputTrace::mean_kbps() const { return total_kb_ / period_s_; }

std::vector<double> ThroughputTrace::sample(double interval_s) const {
  assert(interval_s > 0.0);
  std::vector<double> samples;
  const auto n = static_cast<std::size_t>(std::ceil(period_s_ / interval_s));
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t0 = static_cast<double>(i) * interval_s;
    const double t1 = std::min(t0 + interval_s, period_s_);
    if (t1 <= t0) break;
    samples.push_back(kilobits_between(t0, t1) / (t1 - t0));
  }
  return samples;
}

double ThroughputTrace::stddev_kbps() const {
  const auto samples = sample(1.0);
  return util::stddev(samples);
}

ThroughputTrace ThroughputTrace::scaled(double factor) const {
  assert(factor > 0.0);
  std::vector<TraceSegment> scaled_segments = segments_;
  for (TraceSegment& seg : scaled_segments) seg.rate_kbps *= factor;
  return ThroughputTrace(std::move(scaled_segments), name_);
}

}  // namespace abr::trace
