#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace abr::trace {

/// One piecewise-constant throughput interval.
struct TraceSegment {
  double duration_s = 0.0;  ///< must be > 0
  double rate_kbps = 0.0;   ///< must be >= 0

  friend bool operator==(const TraceSegment&, const TraceSegment&) = default;
};

/// A network throughput trace C_t: piecewise-constant rate over time.
///
/// This is the model behind both the paper's measured datasets (FCC reports
/// 5-second interval averages, HSDPA 1-second samples) and its synthetic
/// dataset. The trace conceptually repeats: queries past the end wrap around,
/// matching the paper's methodology of concatenating measurement sets "to
/// match the length of the video".
///
/// The two workhorse operations are the integral of C_t (how many kilobits a
/// link delivers in [t0, t1]) and its inverse (when a transfer of a given
/// size finishes, Eq. (2) of the paper). Both are O(log n) via prefix sums.
class ThroughputTrace {
 public:
  ThroughputTrace() = default;

  /// Builds a trace from segments. Throws std::invalid_argument if empty,
  /// if any duration is non-positive, if any rate is negative, or if the
  /// total capacity of one period is zero (a transfer could never finish).
  explicit ThroughputTrace(std::vector<TraceSegment> segments,
                           std::string name = {});

  /// Convenience: a single-rate trace.
  static ThroughputTrace constant(double rate_kbps, double duration_s,
                                  std::string name = {});

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<TraceSegment>& segments() const { return segments_; }

  /// Duration of one period of the trace, seconds.
  double period_s() const { return period_s_; }

  /// Instantaneous rate at absolute time t >= 0 (wraps around the period).
  double rate_at(double t) const;

  /// Kilobits delivered in [t0, t1], t1 >= t0 >= 0.
  double kilobits_between(double t0, double t1) const;

  /// Absolute time at which a transfer of `kilobits` starting at `start_s`
  /// completes. Requires kilobits >= 0.
  double transfer_end_time(double kilobits, double start_s) const;

  /// Average rate over one period, kbps.
  double mean_kbps() const;

  /// Samples the rate every `interval_s` seconds across one period
  /// (interval-averaged, not point-sampled). Used for the Fig. 7 dataset
  /// characteristic CDFs.
  std::vector<double> sample(double interval_s) const;

  /// Standard deviation of 1-second interval averages over one period.
  double stddev_kbps() const;

  /// Returns a copy scaled by `factor` (>0) in rate. Used for sensitivity
  /// sweeps that stress the same temporal pattern at different capacities.
  ThroughputTrace scaled(double factor) const;

 private:
  /// Kilobits delivered in [0, u] within one period; u in [0, period].
  double kilobits_before(double u) const;
  /// Time u in [0, period] such that kilobits_before(u) == kb.
  double time_for_kilobits(double kb) const;

  std::vector<TraceSegment> segments_;
  std::vector<double> cum_time_;  ///< cum_time_[i] = start time of segment i
  std::vector<double> cum_kb_;    ///< cum_kb_[i] = kilobits before segment i
  double period_s_ = 0.0;
  double total_kb_ = 0.0;
  std::string name_;
};

}  // namespace abr::trace
