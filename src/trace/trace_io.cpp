#include "trace/trace_io.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace abr::trace {

std::string to_csv(const ThroughputTrace& trace) {
  std::ostringstream out;
  out << "duration_s,rate_kbps\n";
  out.setf(std::ios::fixed);
  out.precision(6);
  for (const TraceSegment& seg : trace.segments()) {
    out << seg.duration_s << ',' << seg.rate_kbps << '\n';
  }
  return out.str();
}

ThroughputTrace from_csv(std::string_view text, std::string name) {
  const util::CsvTable table = util::CsvTable::parse(text, /*has_header=*/true);
  if (table.column_count() != 2) {
    throw std::invalid_argument("trace CSV: expected 2 columns");
  }
  std::vector<TraceSegment> segments;
  segments.reserve(table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    segments.push_back({table.number(r, 0), table.number(r, 1)});
  }
  return ThroughputTrace(std::move(segments), std::move(name));
}

void save_csv(const ThroughputTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  out << to_csv(trace);
  if (!out) throw std::runtime_error("trace: write failed for " + path);
}

ThroughputTrace load_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_csv(buffer.str(), std::filesystem::path(path).stem().string());
}

void save_dataset(const std::vector<ThroughputTrace>& traces,
                  const std::string& directory, const std::string& prefix) {
  std::filesystem::create_directories(directory);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::string path =
        directory + "/" + prefix + "-" + std::to_string(i) + ".csv";
    save_csv(traces[i], path);
  }
}

std::vector<ThroughputTrace> load_dataset(const std::string& directory) {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<ThroughputTrace> traces;
  traces.reserve(paths.size());
  for (const auto& path : paths) traces.push_back(load_csv(path.string()));
  return traces;
}

}  // namespace abr::trace
