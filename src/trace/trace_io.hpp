#pragma once

#include <string>
#include <vector>

#include "trace/throughput_trace.hpp"

namespace abr::trace {

/// Serializes a trace as CSV with header "duration_s,rate_kbps".
std::string to_csv(const ThroughputTrace& trace);

/// Parses the CSV format written by to_csv. Throws std::invalid_argument on
/// malformed input.
ThroughputTrace from_csv(std::string_view text, std::string name = {});

/// Writes a trace to a file. Throws std::runtime_error on I/O failure.
void save_csv(const ThroughputTrace& trace, const std::string& path);

/// Reads a trace from a file written by save_csv.
ThroughputTrace load_csv(const std::string& path);

/// Saves every trace in `traces` as `<directory>/<prefix>-<index>.csv`.
/// Creates the directory if needed.
void save_dataset(const std::vector<ThroughputTrace>& traces,
                  const std::string& directory, const std::string& prefix);

/// Loads every `*.csv` in a directory (sorted by filename).
std::vector<ThroughputTrace> load_dataset(const std::string& directory);

}  // namespace abr::trace
