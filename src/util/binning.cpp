#include "util/binning.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace abr::util {

LinearBinner::LinearBinner(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), width_((hi - lo) / static_cast<double>(bins)) {
  assert(hi > lo);
  assert(bins > 0);
}

std::size_t LinearBinner::bin(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return bins_ - 1;
  const auto index = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(index, bins_ - 1);
}

double LinearBinner::center(std::size_t index) const {
  assert(index < bins_);
  return lo_ + (static_cast<double>(index) + 0.5) * width_;
}

double LinearBinner::lower_edge(std::size_t index) const {
  assert(index < bins_);
  return lo_ + static_cast<double>(index) * width_;
}

LogBinner::LogBinner(double lo, double hi, std::size_t bins)
    : log_lo_(std::log(lo)),
      log_hi_(std::log(hi)),
      lo_(lo),
      hi_(hi),
      bins_(bins),
      log_width_((log_hi_ - log_lo_) / static_cast<double>(bins)) {
  assert(lo > 0.0);
  assert(hi > lo);
  assert(bins > 0);
}

std::size_t LogBinner::bin(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return bins_ - 1;
  const auto index =
      static_cast<std::size_t>((std::log(value) - log_lo_) / log_width_);
  return std::min(index, bins_ - 1);
}

double LogBinner::center(std::size_t index) const {
  assert(index < bins_);
  return std::exp(log_lo_ + (static_cast<double>(index) + 0.5) * log_width_);
}

double LogBinner::lower_edge(std::size_t index) const {
  assert(index < bins_);
  return std::exp(log_lo_ + static_cast<double>(index) * log_width_);
}

}  // namespace abr::util
