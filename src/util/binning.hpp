#pragma once

#include <cstddef>

namespace abr::util {

/// Uniform (linear) binning of a closed interval [lo, hi] into `bins` bins.
///
/// FastMPC discretizes the buffer-level dimension linearly (Section 5.2):
/// buffer occupancy is bounded by Bmax and QoE is roughly linear in it.
/// Values outside the interval clamp to the first / last bin so that online
/// lookups never fail.
class LinearBinner {
 public:
  LinearBinner(double lo, double hi, std::size_t bins);

  std::size_t bins() const { return bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bin index for `value`, clamped to [0, bins-1].
  std::size_t bin(double value) const;

  /// Representative (center) value of bin `index`.
  double center(std::size_t index) const;

  /// Lower edge of bin `index`.
  double lower_edge(std::size_t index) const;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  double width_;
};

/// Geometric (log-uniform) binning of [lo, hi], lo > 0.
///
/// Throughput spans orders of magnitude (tens of kbps to tens of Mbps) and
/// bitrate decisions are sensitive to *relative* throughput error, so the
/// FastMPC throughput dimension uses log-spaced bins: constant relative
/// resolution with far fewer bins than a linear grid of equal worst-case
/// relative error.
class LogBinner {
 public:
  LogBinner(double lo, double hi, std::size_t bins);

  std::size_t bins() const { return bins_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Bin index for `value`, clamped to [0, bins-1].
  std::size_t bin(double value) const;

  /// Representative (geometric center) value of bin `index`.
  double center(std::size_t index) const;

  /// Lower edge of bin `index`.
  double lower_edge(std::size_t index) const;

 private:
  double log_lo_;
  double log_hi_;
  double lo_;
  double hi_;
  std::size_t bins_;
  double log_width_;
};

}  // namespace abr::util
