#include "util/checked_parse.hpp"

#include <charconv>
#include <cmath>
#include <cstddef>
#include <limits>

#include "util/strings.hpp"

namespace abr::util {

namespace {

// 2^64 and 2^63 are exactly representable as doubles; the half-open upper
// bound avoids the classic `value <= UINT64_MAX` trap (UINT64_MAX rounds up
// to 2^64 as a double, so that comparison admits an out-of-range value).
constexpr double kTwo64 = 18446744073709551616.0;
constexpr double kTwo63 = 9223372036854775808.0;

bool is_integral_finite(double value) {
  return std::isfinite(value) && std::floor(value) == value;
}

}  // namespace

bool u64_from_double(double value, std::uint64_t& out) {
  if (!is_integral_finite(value) || value < 0.0 || value >= kTwo64) {
    return false;
  }
  out = static_cast<std::uint64_t>(value);
  return true;
}

bool size_from_double(double value, std::size_t& out) {
  std::uint64_t wide = 0;
  if (!u64_from_double(value, wide) ||
      wide > std::numeric_limits<std::size_t>::max()) {
    return false;
  }
  out = static_cast<std::size_t>(wide);
  return true;
}

bool int_from_double(double value, int& out) {
  if (!is_integral_finite(value) || value < -kTwo63 || value >= kTwo63) {
    return false;
  }
  const auto wide = static_cast<std::int64_t>(value);
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return false;
  }
  out = static_cast<int>(wide);
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return false;
  out = value;
  return true;
}

bool parse_finite_double(std::string_view text, double& out) {
  double value = 0.0;
  if (!parse_double(text, value) || !std::isfinite(value)) return false;
  out = value;
  return true;
}

bool is_json_number(std::string_view text) {
  std::size_t i = 0;
  const std::size_t n = text.size();
  if (i < n && text[i] == '-') ++i;
  // Integer part: "0" or nonzero digit followed by digits.
  if (i >= n || text[i] < '0' || text[i] > '9') return false;
  if (text[i] == '0') {
    ++i;
  } else {
    while (i < n && text[i] >= '0' && text[i] <= '9') ++i;
  }
  if (i < n && text[i] == '.') {
    ++i;
    if (i >= n || text[i] < '0' || text[i] > '9') return false;
    while (i < n && text[i] >= '0' && text[i] <= '9') ++i;
  }
  if (i < n && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
    if (i >= n || text[i] < '0' || text[i] > '9') return false;
    while (i < n && text[i] >= '0' && text[i] <= '9') ++i;
  }
  return i == n;
}

}  // namespace abr::util
