#pragma once

#include <cstdint>
#include <string_view>

namespace abr::util {

/// Checked conversions between doubles and the integer types the flat-JSON
/// parsers deserialize into. Every JSON number arrives as a double; casting
/// it to an integer type without a range check is undefined behaviour when
/// the value is NaN, infinite, or outside the destination range
/// (`static_cast<uint64_t>(1e300)` is UB, not saturation). These helpers
/// reject NaN/Inf, fractional values, and anything outside the destination
/// range, so callers can route bad numbers down the same malformed-input
/// path as a syntax error.

/// Converts `value` to uint64_t. Returns false (leaving `out` untouched)
/// unless `value` is finite, integral, and in [0, 2^64).
bool u64_from_double(double value, std::uint64_t& out);

/// Converts `value` to size_t. Returns false unless `value` is finite,
/// integral, and in [0, SIZE_MAX].
bool size_from_double(double value, std::size_t& out);

/// Converts `value` to int. Returns false unless `value` is finite,
/// integral, and in [INT_MIN, INT_MAX].
bool int_from_double(double value, int& out);

/// Parses a non-negative integer out of `text` into uint64_t; returns false
/// on malformed input, trailing garbage, or overflow (std::from_chars under
/// the hood — never wraps, never throws).
bool parse_u64(std::string_view text, std::uint64_t& out);

/// Parses a finite double; returns false on malformed input, trailing
/// garbage, overflow, or the "nan"/"inf" spellings plain parse_double (via
/// std::from_chars) accepts.
bool parse_finite_double(std::string_view text, double& out);

/// True if `text` matches the strict JSON number grammar
/// (`-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`). Rejects the
/// NaN/Inf/hex spellings that strtod-family parsers accept.
bool is_json_number(std::string_view text);

}  // namespace abr::util
