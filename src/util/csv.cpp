#include "util/csv.hpp"

#include <cassert>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace abr::util {

CsvTable CsvTable::parse(std::string_view text, bool has_header) {
  CsvTable table;
  std::size_t line_number = 0;
  std::size_t start = 0;
  bool saw_header = false;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (trim(line).empty()) continue;

    const auto fields = split(line, ',');
    std::vector<std::string> row;
    row.reserve(fields.size());
    for (const auto field : fields) row.emplace_back(trim(field));

    if (has_header && !saw_header) {
      table.header_ = std::move(row);
      table.columns_ = table.header_.size();
      saw_header = true;
      continue;
    }
    if (table.columns_ == 0) {
      table.columns_ = row.size();
    } else if (row.size() != table.columns_) {
      throw std::invalid_argument("CSV: ragged row at line " +
                                  std::to_string(line_number));
    }
    table.rows_.push_back(std::move(row));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path, bool has_header) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("CSV: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), has_header);
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

double CsvTable::number(std::size_t row, std::size_t col) const {
  double value = 0.0;
  const std::string& text = cell(row, col);
  if (!parse_double(text, value)) {
    throw std::invalid_argument("CSV: not a number: '" + text + "'");
  }
  return value;
}

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CSV: no column named '" + std::string(name) + "'");
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  assert(!fields.empty());
  if (first_) {
    columns_ = fields.size();
    first_ = false;
  }
  assert(fields.size() == columns_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << fields[i];
  }
  out_ << '\n';
}

}  // namespace abr::util
