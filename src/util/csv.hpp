#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abr::util {

/// A parsed CSV document: optional header row plus numeric-or-string cells.
///
/// Throughput trace files (FCC / HSDPA exports and our own dataset dumps)
/// are plain CSV; this is a minimal strict reader (no quoting — trace files
/// never need it) that reports the offending line on error.
class CsvTable {
 public:
  /// Parses CSV text. If `has_header` the first row becomes the header.
  /// Throws std::invalid_argument with a line number on ragged rows.
  static CsvTable parse(std::string_view text, bool has_header);

  /// Reads and parses a file. Throws std::runtime_error if unreadable.
  static CsvTable load(const std::string& path, bool has_header);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return columns_; }

  const std::string& cell(std::size_t row, std::size_t col) const;

  /// Numeric view of a cell; throws std::invalid_argument if not a number.
  double number(std::size_t row, std::size_t col) const;

  /// Index of a header column by name; throws std::out_of_range if absent.
  std::size_t column_index(std::string_view name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::size_t columns_ = 0;
};

/// Streaming CSV writer with fixed column count enforcement.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row; all rows must have the same number of fields as the
  /// first row written (asserted).
  void row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  std::size_t columns_ = 0;
  bool first_ = true;
};

}  // namespace abr::util
