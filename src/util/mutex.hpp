#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace abr::util {

/// std::mutex with Clang thread-safety annotations. Use together with
/// ABR_GUARDED_BY / ABR_REQUIRES so the Clang CI leg proves the lock
/// discipline instead of TSan hoping to catch a violation at runtime.
/// Zero-overhead: the wrapper is exactly a std::mutex at runtime.
class ABR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ABR_ACQUIRE() { mutex_.lock(); }
  void unlock() ABR_RELEASE() { mutex_.unlock(); }
  bool try_lock() ABR_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped lock for Mutex (the std::lock_guard counterpart the analysis can
/// see). Acquires in the constructor, releases in the destructor.
class ABR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ABR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() ABR_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable that waits on a util::Mutex. Waits take the Mutex
/// itself (it satisfies BasicLockable), so callers keep a MutexLock in scope
/// and the analysis can check ABR_REQUIRES on every wait:
///
///   MutexLock lock(mutex_);
///   cv_.wait(mutex_, [&] { return ready_; });
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mutex) ABR_REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) ABR_REQUIRES(mutex) {
    cv_.wait(mutex, std::move(predicate));
  }

  /// Returns the predicate's value at wakeup (false = timed out).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mutex, const std::chrono::duration<Rep, Period>& rel,
                Predicate predicate) ABR_REQUIRES(mutex) {
    return cv_.wait_for(mutex, rel, std::move(predicate));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace abr::util
