#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace abr::util {

/// Runs fn(i) for i in [0, count) across up to `threads` worker threads
/// (0 = hardware concurrency). Blocks until all complete. fn must be safe to
/// call concurrently for distinct i; indices are block-partitioned so
/// per-index work should be roughly uniform.
///
/// If any fn(i) throws, the first exception caught is rethrown on the
/// calling thread after all workers have joined (an exception escaping a
/// std::thread would std::terminate the process). Once a worker has failed,
/// the remaining workers stop picking up new indices, so some indices may
/// never run.
///
/// Used by the benches to fan out independent trace simulations and by the
/// FastMPC table build.
template <typename Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t threads = 0) {
  if (count == 0) return;
  std::size_t worker_count =
      threads > 0 ? threads : std::thread::hardware_concurrency();
  if (worker_count == 0) worker_count = 1;
  worker_count = worker_count < count ? worker_count : count;

  if (worker_count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  Mutex error_mutex;

  const std::size_t per_worker = (count + worker_count - 1) / worker_count;
  std::vector<std::thread> workers;
  workers.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w) {
    const std::size_t first = w * per_worker;
    if (first >= count) break;
    const std::size_t last = first + per_worker < count ? first + per_worker : count;
    workers.emplace_back([&fn, &failed, &first_error, &error_mutex, first,
                          last] {
      for (std::size_t i = first; i < last; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          const MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace abr::util
