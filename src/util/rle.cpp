#include "util/rle.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace abr::util {

std::vector<RleRun> rle_encode(std::span<const std::uint8_t> data) {
  std::vector<RleRun> runs;
  for (const std::uint8_t byte : data) {
    if (!runs.empty() && runs.back().value == byte &&
        runs.back().length < std::numeric_limits<std::uint32_t>::max()) {
      ++runs.back().length;
    } else {
      runs.push_back({byte, 1});
    }
  }
  return runs;
}

std::vector<std::uint8_t> rle_decode(std::span<const RleRun> runs) {
  std::vector<std::uint8_t> data;
  std::size_t total = 0;
  for (const RleRun& run : runs) total += run.length;
  data.reserve(total);
  for (const RleRun& run : runs) {
    data.insert(data.end(), run.length, run.value);
  }
  return data;
}

RleSequence::RleSequence(std::vector<RleRun> runs) : runs_(std::move(runs)) {
  rebuild_prefix();
}

RleSequence RleSequence::from_raw(std::span<const std::uint8_t> data) {
  return RleSequence(rle_encode(data));
}

void RleSequence::rebuild_prefix() {
  prefix_.resize(runs_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    prefix_[i] = total;
    total += runs_[i].length;
  }
  total_ = total;
}

std::uint8_t RleSequence::at(std::size_t i) const {
  assert(i < total_);
  // Last run whose starting offset is <= i.
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(),
                                   static_cast<std::uint64_t>(i));
  const auto run_index = static_cast<std::size_t>(it - prefix_.begin()) - 1;
  return runs_[run_index].value;
}

std::size_t RleSequence::size() const { return static_cast<std::size_t>(total_); }

std::size_t RleSequence::binary_size_bytes() const {
  return 8 + runs_.size() * 5;
}

namespace {

std::size_t decimal_digits(std::uint64_t v) {
  std::size_t digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

}  // namespace

std::size_t RleSequence::javascript_text_size_bytes() const {
  // "value,length," per run: digits plus two separators.
  std::size_t bytes = 0;
  for (const RleRun& run : runs_) {
    bytes += decimal_digits(run.value) + decimal_digits(run.length) + 2;
  }
  return bytes;
}

std::size_t RleSequence::javascript_full_table_size_bytes() const {
  // "value," per element.
  std::size_t bytes = 0;
  for (const RleRun& run : runs_) {
    bytes += (decimal_digits(run.value) + 1) * run.length;
  }
  return bytes;
}

std::string RleSequence::serialize() const {
  std::string out;
  out.reserve(binary_size_bytes());
  const std::uint64_t count = runs_.size();
  char header[8];
  std::memcpy(header, &count, 8);
  out.append(header, 8);
  for (const RleRun& run : runs_) {
    out.push_back(static_cast<char>(run.value));
    char len[4];
    std::memcpy(len, &run.length, 4);
    out.append(len, 4);
  }
  return out;
}

RleSequence RleSequence::deserialize(std::string_view bytes) {
  if (bytes.size() < 8) {
    throw std::invalid_argument("RleSequence: truncated header");
  }
  std::uint64_t count = 0;
  std::memcpy(&count, bytes.data(), 8);
  if (bytes.size() != 8 + count * 5) {
    throw std::invalid_argument("RleSequence: size mismatch");
  }
  std::vector<RleRun> runs;
  runs.reserve(count);
  const char* cursor = bytes.data() + 8;
  for (std::uint64_t i = 0; i < count; ++i) {
    RleRun run;
    run.value = static_cast<std::uint8_t>(*cursor++);
    std::memcpy(&run.length, cursor, 4);
    cursor += 4;
    if (run.length == 0) {
      throw std::invalid_argument("RleSequence: zero-length run");
    }
    runs.push_back(run);
  }
  return RleSequence(std::move(runs));
}

}  // namespace abr::util
