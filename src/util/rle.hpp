#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace abr::util {

/// One run of identical symbols: `length` copies of `value`.
struct RleRun {
  std::uint8_t value = 0;
  std::uint32_t length = 0;

  friend bool operator==(const RleRun&, const RleRun&) = default;
};

/// Lossless run-length encoding of a byte sequence.
///
/// This is the compression scheme Section 5.2 of the paper applies to the
/// FastMPC decision table: optimal decisions for adjacent scenarios are
/// usually identical, so the flattened table is dominated by long runs.
std::vector<RleRun> rle_encode(std::span<const std::uint8_t> data);

/// Inverse of rle_encode.
std::vector<std::uint8_t> rle_decode(std::span<const RleRun> runs);

/// Random access into an RLE-compressed sequence without decompressing:
/// precomputes run prefix sums and answers `at(i)` by binary search, which is
/// exactly how the online FastMPC lookup retrieves decisions (Section 5.2).
class RleSequence {
 public:
  RleSequence() = default;
  explicit RleSequence(std::vector<RleRun> runs);

  /// Builds directly from raw data (encode + index).
  static RleSequence from_raw(std::span<const std::uint8_t> data);

  /// Element at flat index `i`. Requires i < size(). O(log #runs).
  std::uint8_t at(std::size_t i) const;

  std::size_t size() const;
  std::size_t run_count() const { return runs_.size(); }
  const std::vector<RleRun>& runs() const { return runs_; }

  /// Bytes needed to store the runs in our binary format
  /// (1-byte value + 4-byte length per run, plus an 8-byte count header).
  std::size_t binary_size_bytes() const;

  /// Size of the sequence rendered as JavaScript source text
  /// ("v,l,v,l,..." decimal pairs), modeling the paper's Table 1
  /// "extra JavaScript code size / run length coding" column.
  std::size_t javascript_text_size_bytes() const;

  /// Size of the *uncompressed* table rendered as JavaScript source text
  /// ("v,v,v,..."), modeling Table 1's "full table" column.
  std::size_t javascript_full_table_size_bytes() const;

  /// Serializes to the binary format described above.
  std::string serialize() const;
  /// Parses the binary format; throws std::invalid_argument on malformed
  /// input (truncated, bad header, zero-length run).
  static RleSequence deserialize(std::string_view bytes);

  friend bool operator==(const RleSequence& a, const RleSequence& b) {
    return a.runs_ == b.runs_;
  }

 private:
  void rebuild_prefix();

  std::vector<RleRun> runs_;
  std::vector<std::uint64_t> prefix_;  // prefix_[i] = elements before run i
  std::uint64_t total_ = 0;
};

}  // namespace abr::util
