#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace abr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % range;
  std::uint64_t value = (*this)();
  while (value >= limit) value = (*this)();
  return lo + static_cast<std::int64_t>(value % range);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; avoid log(0) by excluding 0 from u1.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::size_t Rng::weighted_index(const double* weights, std::size_t weights_size) {
  assert(weights_size > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < weights_size; ++i) {
    assert(weights[i] >= 0.0);
    total += weights[i];
  }
  assert(total > 0.0);
  const double target = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights_size; ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights_size - 1;  // numeric edge: target == total
}

Rng Rng::split() {
  return Rng((*this)());
}

}  // namespace abr::util
