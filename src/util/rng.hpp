#pragma once

#include <array>
#include <cstdint>

namespace abr::util {

/// Deterministic, fast pseudo-random number generator (xoshiro256**).
///
/// We deliberately avoid std::mt19937 for two reasons: (1) xoshiro256** is
/// several times faster, which matters when generating thousands of
/// second-granularity throughput traces, and (2) its state is tiny and the
/// algorithm is fixed, so seeded experiment runs are reproducible across
/// standard-library implementations (std::*_distribution is not portable).
///
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator via splitmix64 so that nearby seeds produce
  /// uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second variate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Samples an index in [0, weights_size) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  std::size_t weighted_index(const double* weights, std::size_t weights_size);

  /// Creates an independent generator for a subtask (jump-free stream split
  /// via re-seeding from this stream).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace abr::util
