#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace abr::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {}

void Cdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Cdf::finalize() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  finalize();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::fraction_at_or_below(double x) const {
  if (samples_.empty()) return 0.0;
  finalize();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::min() const {
  assert(!samples_.empty());
  finalize();
  return samples_.front();
}

double Cdf::max() const {
  assert(!samples_.empty());
  finalize();
  return samples_.back();
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::curve(double lo, double hi,
                                                  std::size_t points) const {
  assert(points >= 2);
  std::vector<std::pair<double, double>> result;
  result.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    result.emplace_back(x, fraction_at_or_below(x));
  }
  return result;
}

std::string Cdf::summary() const {
  std::ostringstream out;
  if (samples_.empty()) {
    out << "(empty)";
    return out.str();
  }
  out.setf(std::ios::fixed);
  out.precision(2);
  out << "p10=" << percentile(10) << " p25=" << percentile(25)
      << " p50=" << percentile(50) << " p75=" << percentile(75)
      << " p90=" << percentile(90) << " mean=" << mean() << " n=" << count();
  return out.str();
}

double harmonic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double reciprocal_sum = 0.0;
  for (const double v : values) {
    assert(v > 0.0);
    reciprocal_sum += 1.0 / v;
  }
  return static_cast<double>(values.size()) / reciprocal_sum;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double m2 = 0.0;
  for (const double v : values) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values.size()));
}

}  // namespace abr::util
