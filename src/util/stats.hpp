#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace abr::util {

/// Single-pass accumulator for mean / variance / min / max (Welford).
///
/// Used pervasively for per-session metric aggregation; numerically stable
/// for the long throughput series produced by the trace generators.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Population variance. Returns 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Sum of all samples added so far.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical distribution over a sample set: percentiles and CDF queries.
///
/// The paper reports results almost exclusively as CDFs (Figs. 7-10) and
/// medians; this class is the single place those are computed.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);
  /// Sorts pending samples; called lazily by the query methods.
  void finalize() const;

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Value at percentile p in [0, 100]; linear interpolation between ranks.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  /// Fraction of samples <= x, in [0, 1].
  double fraction_at_or_below(double x) const;
  double min() const;
  double max() const;
  double mean() const;

  /// Evaluates the CDF at `points` evenly spaced values spanning
  /// [lo, hi]; returns (x, F(x)) pairs. Used by the figure benches to print
  /// the same curves the paper plots.
  std::vector<std::pair<double, double>> curve(double lo, double hi,
                                               std::size_t points) const;

  /// Renders a fixed-width table of percentiles (p10/p25/p50/p75/p90) for
  /// human-readable bench output.
  std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Harmonic mean of the values; values must be positive. Returns 0 for an
/// empty span. This is the throughput estimator used by RB / FESTIVE / MPC
/// (Section 7.1.2 of the paper): it is robust to single-chunk outliers.
double harmonic_mean(std::span<const double> values);

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> values);

/// Population standard deviation; returns 0 for fewer than 2 values.
double stddev(std::span<const double> values);

}  // namespace abr::util
