#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace abr::util {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      break;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view text, double& out) {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_size(std::string_view text, std::size_t& out) {
  text = trim(text);
  if (text.empty()) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace abr::util
