#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace abr::util {

/// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII equality, for HTTP header-name comparison.
bool iequals(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a double; returns false on malformed or trailing-garbage input.
bool parse_double(std::string_view text, double& out);

/// Parses a non-negative integer; returns false on malformed input or
/// overflow.
bool parse_size(std::string_view text, std::size_t& out);

/// Lowercases an ASCII string.
std::string to_lower(std::string_view text);

/// Formats a double with fixed precision (helper for table printing).
std::string format_fixed(double value, int precision);

}  // namespace abr::util
