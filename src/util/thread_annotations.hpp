#pragma once

// Clang thread-safety analysis attributes (-Wthread-safety), spelled with an
// ABR_ prefix so the codebase reads uniformly. On compilers without the
// analysis (gcc, msvc) every macro expands to nothing, so annotated code
// builds everywhere and the analysis runs on the Clang CI leg.
//
// Usage pattern (see util/mutex.hpp for the annotated lock types):
//
//   class Table {
//    public:
//     void insert(int key) ABR_EXCLUDES(mutex_);
//    private:
//     void grow_locked() ABR_REQUIRES(mutex_);
//     mutable util::Mutex mutex_;
//     std::map<int, int> entries_ ABR_GUARDED_BY(mutex_);
//   };
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define ABR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ABR_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability (a mutex).
#define ABR_CAPABILITY(x) ABR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define ABR_SCOPED_CAPABILITY ABR_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be touched while holding the given mutex.
#define ABR_GUARDED_BY(x) ABR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define ABR_PT_GUARDED_BY(x) ABR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define ABR_ACQUIRE(...) ABR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define ABR_RELEASE(...) ABR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquire; first argument is the success return value.
#define ABR_TRY_ACQUIRE(...) \
  ABR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must already hold the given mutex(es). The convention throughout
/// this codebase is that such helpers carry a `_locked` name suffix.
#define ABR_REQUIRES(...) \
  ABR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the given mutex(es); the function takes them itself.
/// Catches self-deadlock on non-recursive locks at compile time.
#define ABR_EXCLUDES(...) ABR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ABR_RETURN_CAPABILITY(x) ABR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define ABR_NO_THREAD_SAFETY_ANALYSIS \
  ABR_THREAD_ANNOTATION(no_thread_safety_analysis)
