#include "util/xml.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace abr::util {

const std::string* XmlElement::attribute(std::string_view attr_name) const {
  for (const auto& [name_, value] : attributes) {
    if (name_ == attr_name) return &value;
  }
  return nullptr;
}

const XmlElement* XmlElement::child(std::string_view tag) const {
  for (const auto& c : children) {
    if (c->name == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::children_named(
    std::string_view tag) const {
  std::vector<const XmlElement*> result;
  for (const auto& c : children) {
    if (c->name == tag) result.push_back(c.get());
  }
  return result;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string XmlElement::serialize(int indent) const {
  std::ostringstream out;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << '<' << name;
  for (const auto& [attr, value] : attributes) {
    out << ' ' << attr << "=\"" << xml_escape(value) << '"';
  }
  if (children.empty() && text.empty()) {
    out << "/>\n";
    return out.str();
  }
  out << '>';
  if (!text.empty()) out << xml_escape(text);
  if (!children.empty()) {
    out << '\n';
    for (const auto& c : children) out << c->serialize(indent + 1);
    out << pad;
  }
  out << "</" << name << ">\n";
  return out.str();
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  std::unique_ptr<XmlElement> parse_document() {
    skip_prolog();
    auto root = parse_element();
    skip_whitespace_and_comments();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("XML parse error at offset " +
                                std::to_string(pos_) + ": " + message);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }

  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void skip_whitespace() {
    while (!eof() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void skip_comment() {
    // Called after "<!--" has been consumed.
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_whitespace_and_comments() {
    while (true) {
      skip_whitespace();
      if (consume("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (consume("<?xml")) {
      const std::size_t end = text_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_whitespace_and_comments();
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    std::size_t i = 0;
    while (i < raw.size()) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out.push_back('&');
      else if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else fail("unknown entity '" + std::string(entity) + "'");
      i = semi + 1;
    }
    return out;
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
    ++pos_;
    const std::size_t start = pos_;
    while (!eof() && text_[pos_] != quote) ++pos_;
    if (eof()) fail("unterminated attribute value");
    const std::string value = decode_entities(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  std::unique_ptr<XmlElement> parse_element() {
    if (!consume("<")) fail("expected '<'");
    auto element = std::make_unique<XmlElement>();
    element->name = parse_name();

    while (true) {
      skip_whitespace();
      if (consume("/>")) return element;
      if (consume(">")) break;
      const std::string attr = parse_name();
      skip_whitespace();
      if (!consume("=")) fail("expected '=' after attribute name");
      skip_whitespace();
      element->attributes.emplace_back(attr, parse_attribute_value());
    }

    // Content: text, children, comments, then closing tag.
    while (true) {
      const std::size_t text_start = pos_;
      while (!eof() && text_[pos_] != '<') ++pos_;
      if (eof()) fail("unterminated element <" + element->name + ">");
      if (pos_ > text_start) {
        const std::string chunk =
            decode_entities(text_.substr(text_start, pos_ - text_start));
        // Keep only non-whitespace character data.
        const std::string_view trimmed = trim_view(chunk);
        if (!trimmed.empty()) element->text.append(trimmed);
      }
      if (consume("<!--")) {
        skip_comment();
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != element->name) {
          fail("mismatched closing tag </" + closing + "> for <" +
               element->name + ">");
        }
        skip_whitespace();
        if (!consume(">")) fail("expected '>' in closing tag");
        return element;
      }
      element->children.push_back(parse_element());
    }
  }

  static std::string_view trim_view(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlElement> xml_parse(std::string_view text) {
  return XmlParser(text).parse_document();
}

}  // namespace abr::util
