#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace abr::util {

/// Minimal XML element tree.
///
/// Supports the subset needed for DASH MPD manifests: nested elements,
/// attributes, text content, comments, and XML declarations. Not supported
/// (and rejected where ambiguous): DTDs, CDATA, processing instructions
/// other than the declaration, and entity definitions beyond the five
/// predefined ones.
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;  ///< concatenated character data directly inside this tag

  /// First attribute value by name, or nullptr.
  const std::string* attribute(std::string_view attr_name) const;

  /// First child element by tag name, or nullptr.
  const XmlElement* child(std::string_view tag) const;

  /// All child elements with the given tag name.
  std::vector<const XmlElement*> children_named(std::string_view tag) const;

  /// Serializes this element (recursively) with 2-space indentation.
  std::string serialize(int indent = 0) const;
};

/// Parses an XML document and returns its root element.
/// Throws std::invalid_argument with a byte offset on malformed input.
std::unique_ptr<XmlElement> xml_parse(std::string_view text);

/// Escapes &, <, >, ", ' for use in attribute values / text.
std::string xml_escape(std::string_view text);

}  // namespace abr::util
