// A bench harness with a relative project include: bench/ is scanned for
// include hygiene even though the determinism rules do not apply there.
#include "../src/core/wall_clock.hpp"

int bench_main() { return 0; }
