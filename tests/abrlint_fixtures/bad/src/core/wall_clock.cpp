#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fx::core {

// line 8: steady_clock in a deterministic layer.
long long bad_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// line 13: time() call.
long long bad_epoch() { return ::time(nullptr); }

// line 16: rand() call.
int bad_random() { return std::rand(); }

}  // namespace fx::core
