#include <cstdlib>
#include <string>

int parse_count(const char* text) {
  return std::atoi(text);
}

long parse_offset(const std::string& text) {
  return std::stol(text);
}
