#include <string>

namespace fx::net {

// line 6: raw metric literal instead of a names.hpp constant.
std::string family() { return "abr_raw_total"; }

}  // namespace fx::net
