#include "obs/names.hpp"

namespace fx::net {

const char* used() { return fx::obs::kUsedTotal; }

}  // namespace fx::net
