#pragma once

namespace fx::obs {

inline constexpr char kUsedTotal[] = "abr_used_total";

// kGhostTotal is referenced nowhere and documented nowhere: both
// metric-unused and metric-undocumented must fire on the line below.
inline constexpr char kGhostTotal[] = "abr_ghost_total";

}  // namespace fx::obs
