// line 4: missing #pragma once (this comment hides nothing: the first
// directive below is an include).
#include "../core/wall_clock.hpp"
#include <core/algorithms.hpp>
#include "qoe/missing_header.hpp"

namespace fx::qoe {

int nothing();

}  // namespace fx::qoe
