#include <random>

#include "util/rng.hpp"

namespace fx::sim {

// line 8: std engine (and default-constructed at that).
std::mt19937 engine;

// line 11: nondeterministic seed source.
std::random_device entropy;

// line 14: util::Rng seeded from an inline literal.
fx::util::Rng magic_seeded(12345);

}  // namespace fx::sim
