// Relative include: tools/ is scanned for include hygiene like src/.
#include "../../src/obs/names.hpp"

int bad_report() { return 0; }
