// Wall-clock reads are fine in bench/ (it is outside the deterministic
// layers); sibling includes resolve next to the file.
#include "timer.hpp"

#include <chrono>

namespace fx::bench {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fx::bench
