#pragma once

namespace fx::bench {

double now_seconds();

}  // namespace fx::bench
