// A deterministic-layer file that does everything right: no wall clock, a
// named seed, the metric name via its constant. The identifiers below also
// pin down the boundary rules: transfer_end_time( and reset_trace_clock(
// must NOT count as time()/clock() calls.
#include "obs/names.hpp"
#include "util/rng.hpp"

namespace fx::core {

double transfer_end_time(double kilobits);
void reset_trace_clock();

inline constexpr unsigned long long kTraceSeed = 0x5eedULL;

const char* metric_name() { return fx::obs::kGoodTotal; }

double simulate() {
  fx::util::Rng rng(kTraceSeed);
  reset_trace_clock();
  // Comments may mention std::mt19937 or steady_clock freely.
  return transfer_end_time(static_cast<double>(rng()));
}

}  // namespace fx::core
