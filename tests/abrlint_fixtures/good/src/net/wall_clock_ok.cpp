// net/ is NOT a deterministic layer: real transports may read the real
// clock. This file must produce no wall-clock violation.
#include <chrono>

namespace fx::net {

long long now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fx::net
