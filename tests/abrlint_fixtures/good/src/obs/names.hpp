#pragma once

namespace fx::obs {

inline constexpr char kGoodTotal[] = "abr_good_total";

}  // namespace fx::obs
