#pragma once

namespace fx::util {

class Rng {
 public:
  explicit Rng(unsigned long long seed);
  unsigned long long operator()();
};

}  // namespace fx::util
