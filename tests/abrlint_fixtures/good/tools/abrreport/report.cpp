// Clean include hygiene for a tool: sibling headers by bare name, project
// headers src-root-relative.
#include "report.hpp"

#include "obs/names.hpp"

int report() { return 0; }
