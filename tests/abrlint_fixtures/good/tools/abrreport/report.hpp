#pragma once

int report();
