// Tests for the abrlint determinism linter: library-level checks of the
// comment/string stripper and allowlist parser, plus end-to-end runs of the
// real binary over known-good and known-bad fixture trees with exact output
// assertions. CMake injects ABRLINT_PATH, ABRLINT_FIXTURES (the fixture
// directory) and ABR_REPO_ROOT (the real repository, which must lint clean).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "abrlint.hpp"

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string fixtures(const std::string& tail) {
  return std::string(ABRLINT_FIXTURES) + "/" + tail;
}

std::string lint(const std::string& args) {
  return std::string(ABRLINT_PATH) + " " + args;
}

// ---------------------------------------------------------------------------
// Library: source stripping.

TEST(AbrlintStrip, RemovesLineAndBlockComments) {
  const auto stripped = abr::lint::strip_source(
      "int a;  // std::mt19937 here is just prose\n"
      "/* steady_clock in a block\n   comment */ int b;\n");
  EXPECT_EQ(stripped.code.find("mt19937"), std::string::npos);
  EXPECT_EQ(stripped.code.find("steady_clock"), std::string::npos);
  EXPECT_NE(stripped.code.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.code.find("int b;"), std::string::npos);
  // Newlines survive so violation line numbers stay accurate.
  EXPECT_EQ(std::count(stripped.code.begin(), stripped.code.end(), '\n'), 3);
}

TEST(AbrlintStrip, CapturesStringLiteralsWithLineNumbers) {
  const auto stripped =
      abr::lint::strip_source("const char* a = \"abr_x\";\n"
                            "const char* b = \"rand()\";\n");
  ASSERT_EQ(stripped.literals.size(), 2u);
  EXPECT_EQ(stripped.literals[0].text, "abr_x");
  EXPECT_EQ(stripped.literals[0].line, 1);
  EXPECT_EQ(stripped.literals[1].text, "rand()");
  EXPECT_EQ(stripped.literals[1].line, 2);
  // Literal contents must not leak into the scanned code stream.
  EXPECT_EQ(stripped.code.find("rand"), std::string::npos);
}

TEST(AbrlintStrip, HandlesDigitSeparatorsAndRawStrings) {
  const auto stripped =
      abr::lint::strip_source("int big = 1'000'000;\n"
                            "const char* r = R\"(time( inside raw)\";\n");
  EXPECT_NE(stripped.code.find("1'000'000"), std::string::npos);
  EXPECT_EQ(stripped.code.find("time("), std::string::npos);
}

// ---------------------------------------------------------------------------
// Library: allowlist parsing.

TEST(AbrlintAllowlist, RequiresJustificationComment) {
  std::vector<abr::lint::Violation> errors;
  const auto entries = abr::lint::parse_allowlist(
      "# why this is fine\n"
      "src/core/a.cpp wall-clock steady_clock\n"
      "\n"
      "src/core/b.cpp wall-clock time\n",
      errors, "list.txt");
  // The unjustified entry is rejected outright: it is reported as an error
  // and does not become an active suppression.
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].justified);
  EXPECT_EQ(entries[0].file, "src/core/a.cpp");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].rule, "allowlist");
  EXPECT_EQ(errors[0].line, 4);
}

TEST(AbrlintAllowlist, RejectsMalformedLines) {
  std::vector<abr::lint::Violation> errors;
  const auto entries =
      abr::lint::parse_allowlist("# comment\nonly-two fields\n", errors, "l");
  EXPECT_TRUE(entries.empty());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].rule, "allowlist");
}

// ---------------------------------------------------------------------------
// Binary: fixture trees.

TEST(AbrlintBinary, GoodTreeIsClean) {
  const auto result = run_command(lint(fixtures("good")));
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.output, "abrlint: OK\n");
}

TEST(AbrlintBinary, BadTreeReportsExactViolations) {
  const auto result = run_command(lint(fixtures("bad")));
  EXPECT_EQ(result.exit_code, 1);
  const std::string expected =
      "bench/sloppy_bench.cpp:3: include-relative: relative include "
      "\"../src/core/wall_clock.hpp\" (project includes are "
      "src-root-relative)\n"
      "src/core/wall_clock.cpp:9: wall-clock: std::chrono::steady_clock read "
      "in deterministic layer src/core (runs must be pure functions of "
      "trace+seed)\n"
      "src/core/wall_clock.cpp:13: wall-clock: time() call in deterministic "
      "layer src/core (runs must be pure functions of trace+seed)\n"
      "src/core/wall_clock.cpp:16: unseeded-rng: rand() call (seed every "
      "random stream by name)\n"
      "src/media/unchecked.cpp:5: unchecked-parse: atoi() parse without an "
      "overflow/garbage contract (use util/checked_parse.hpp)\n"
      "src/media/unchecked.cpp:9: unchecked-parse: stol() parse without an "
      "overflow/garbage contract (use util/checked_parse.hpp)\n"
      "src/net/raw_metric.cpp:6: metric-literal: raw metric name "
      "\"abr_raw_total\" (declare it in obs/names.hpp and use the constant)\n"
      "src/obs/names.hpp:9: metric-undocumented: \"abr_ghost_total\" is "
      "documented in neither README.md nor DESIGN.md\n"
      "src/obs/names.hpp:9: metric-unused: kGhostTotal (\"abr_ghost_total\") "
      "is referenced by no code outside obs/names.*\n"
      "src/qoe/hygiene.hpp:3: include-pragma: #pragma once must be the "
      "header's first directive\n"
      "src/qoe/hygiene.hpp:3: include-relative: relative include "
      "\"../core/wall_clock.hpp\" (project includes are src-root-relative)\n"
      "src/qoe/hygiene.hpp:4: include-angle-project: project header "
      "<core/algorithms.hpp> included with angle brackets (use "
      "\"core/algorithms.hpp\")\n"
      "src/qoe/hygiene.hpp:5: include-missing: include "
      "\"qoe/missing_header.hpp\" resolves neither under src/ nor next to "
      "this file\n"
      "src/sim/unseeded.cpp:8: std-rng: std::mt19937 (use util::Rng: fixed "
      "algorithm, portable streams)\n"
      "src/sim/unseeded.cpp:11: unseeded-rng: std::random_device use (seed "
      "every random stream by name)\n"
      "src/sim/unseeded.cpp:14: rng-literal-seed: Rng seeded from an inline "
      "numeric literal (name the seed so experiment configs can find and "
      "vary it)\n"
      "tools/abrreport/report.cpp:2: include-relative: relative include "
      "\"../../src/obs/names.hpp\" (project includes are src-root-relative)\n"
      "abrlint: 17 violations\n";
  EXPECT_EQ(result.output, expected);
}

TEST(AbrlintBinary, JustifiedAllowlistSuppressesOnlyItsEntry) {
  const auto result =
      run_command(lint("--allowlist " + fixtures("allowlists/justified.txt") +
                       " " + fixtures("bad")));
  EXPECT_EQ(result.exit_code, 1);
  // The steady_clock finding is suppressed; the rest of the file's
  // violations still fire.
  EXPECT_EQ(result.output.find("steady_clock read"), std::string::npos);
  EXPECT_NE(result.output.find("wall_clock.cpp:13: wall-clock: time()"),
            std::string::npos);
  EXPECT_NE(result.output.find("abrlint: 16 violations"), std::string::npos);
}

TEST(AbrlintBinary, UnjustifiedAllowlistEntryIsRejected) {
  const auto result = run_command(
      lint("--allowlist " + fixtures("allowlists/unjustified.txt") + " " +
           fixtures("bad")));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find(
                "unjustified.txt:4: allowlist: entry for "
                "src/core/wall_clock.cpp lacks a justification comment"),
            std::string::npos);
}

TEST(AbrlintBinary, StaleAllowlistEntryIsFlagged) {
  const auto result = run_command(
      lint("--allowlist " + fixtures("allowlists/stale.txt") + " " +
           fixtures("bad")));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("stale.txt:3: allowlist: stale entry"),
            std::string::npos);
}

TEST(AbrlintBinary, MissingRootExitsTwo) {
  const auto result = run_command(lint(fixtures("no_such_tree")));
  EXPECT_EQ(result.exit_code, 2);
}

// The real repository must lint clean with its checked-in allowlist. This is
// the same invocation CI runs; a failure here means a determinism or metric
// naming regression slipped into src/.
TEST(AbrlintBinary, RealRepositoryIsClean) {
  const auto result = run_command(lint(ABR_REPO_ROOT));
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_EQ(result.output, "abrlint: OK\n");
}

}  // namespace
