// abrreport library: the flat JSONL parser, per-algorithm aggregation over
// journal records, table rendering, and the scrape-body validator entry
// point CI's telemetry smoke job uses.
#include "abrreport.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace abr::tools {
namespace {

TEST(ParseFlatJson, ParsesStringsNumbersAndBooleans) {
  JsonObject object;
  std::string error;
  ASSERT_TRUE(parse_flat_json(
      R"({"name":"s0","qoe":-12.5,"chunks":65,"warm":true,"skip":false})",
      object, error))
      << error;
  EXPECT_EQ(object.at("name").kind, JsonValue::Kind::kString);
  EXPECT_EQ(object.at("name").text, "s0");
  EXPECT_DOUBLE_EQ(object.at("qoe").number, -12.5);
  EXPECT_DOUBLE_EQ(object.at("chunks").number, 65.0);
  EXPECT_TRUE(object.at("warm").boolean);
  EXPECT_FALSE(object.at("skip").boolean);
}

TEST(ParseFlatJson, DecodesEscapes) {
  JsonObject object;
  std::string error;
  ASSERT_TRUE(parse_flat_json(R"({"a":"x\"y\\z\n","b":"A\u00e9"})",
                              object, error))
      << error;
  EXPECT_EQ(object.at("a").text, "x\"y\\z\n");
  EXPECT_EQ(object.at("b").text, "A\xc3\xa9");
}

TEST(ParseFlatJson, AcceptsEmptyObjectAndWhitespace) {
  JsonObject object;
  std::string error;
  EXPECT_TRUE(parse_flat_json("  { }  ", object, error)) << error;
  EXPECT_TRUE(object.empty());
}

TEST(ParseFlatJson, RejectsMalformedInput) {
  JsonObject object;
  std::string error;
  EXPECT_FALSE(parse_flat_json("", object, error));
  EXPECT_FALSE(parse_flat_json("[1,2]", object, error));
  EXPECT_FALSE(parse_flat_json(R"({"a":})", object, error));
  EXPECT_FALSE(parse_flat_json(R"({"a":1)", object, error));
  EXPECT_FALSE(parse_flat_json(R"({"a":1} trailing)", object, error));
  EXPECT_FALSE(parse_flat_json(R"({"a":"unterminated)", object, error));
  EXPECT_FALSE(parse_flat_json(R"({"a":"\q"})", object, error));
}

TEST(Percentile, NearestRank) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0,
                               10.0},
                              0.5),
                   5.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0,
                               10.0},
                              0.9),
                   9.0);
}

std::istringstream sample_journal() {
  return std::istringstream(
      R"({"type":"chunk","session":"s0","algo":"MPC","chunk":0,"nodes":100,"warm_start":false,"path":"online"}
{"type":"chunk","session":"s0","algo":"MPC","chunk":1,"nodes":50,"warm_start":true,"path":"online"}
{"type":"chunk","session":"s1","algo":"FastMPC","chunk":0,"nodes":0,"warm_start":false,"path":"table"}
{"type":"session","session":"s0","algo":"MPC","chunks":2,"qoe":100,"qoe_utility":150,"qoe_switch_penalty":20,"qoe_rebuffer_charge":10,"qoe_startup_charge":20,"avg_bitrate_kbps":800,"rebuffer_s":1.5,"switches":3,"degraded":1,"skipped":0,"attempts":4,"faults":2}
{"type":"session","session":"s1","algo":"FastMPC","chunks":1,"qoe":60,"avg_bitrate_kbps":600,"switches":1}
not json at all
)");
}

TEST(SummarizeJournal, AggregatesPerAlgorithm) {
  auto in = sample_journal();
  const ReportSummary summary = summarize_journal(in);
  EXPECT_EQ(summary.lines, 6u);
  EXPECT_EQ(summary.chunk_records, 3u);
  EXPECT_EQ(summary.session_records, 2u);
  EXPECT_EQ(summary.malformed_lines, 1u);
  EXPECT_NE(summary.first_error.find("line 6"), std::string::npos)
      << summary.first_error;

  ASSERT_EQ(summary.algorithms.size(), 2u);
  // Sorted by name: FastMPC before MPC.
  const AlgorithmSummary& fast = summary.algorithms[0];
  EXPECT_EQ(fast.algorithm, "FastMPC");
  EXPECT_EQ(fast.sessions, 1u);
  EXPECT_EQ(fast.chunks, 1u);
  EXPECT_EQ(fast.table_chunks, 1u);
  EXPECT_EQ(fast.online_chunks, 0u);

  const AlgorithmSummary& mpc = summary.algorithms[1];
  EXPECT_EQ(mpc.algorithm, "MPC");
  EXPECT_EQ(mpc.sessions, 1u);
  EXPECT_EQ(mpc.chunks, 2u);
  EXPECT_EQ(mpc.online_chunks, 2u);
  EXPECT_EQ(mpc.warm_starts, 1u);
  EXPECT_EQ(mpc.nodes_expanded, 150u);
  EXPECT_DOUBLE_EQ(mpc.qoe_sum, 100.0);
  EXPECT_DOUBLE_EQ(mpc.utility_sum, 150.0);
  EXPECT_DOUBLE_EQ(mpc.switch_penalty_sum, 20.0);
  EXPECT_DOUBLE_EQ(mpc.rebuffer_charge_sum, 10.0);
  EXPECT_DOUBLE_EQ(mpc.startup_charge_sum, 20.0);
  EXPECT_EQ(mpc.switches, 3u);
  EXPECT_EQ(mpc.degraded_chunks, 1u);
  EXPECT_EQ(mpc.attempts, 4u);
  EXPECT_EQ(mpc.faults, 2u);
}

TEST(RenderReport, ProducesTablesForEveryAlgorithm) {
  auto in = sample_journal();
  const std::string report = render_report(summarize_journal(in));
  EXPECT_NE(report.find("Fig. 9 style"), std::string::npos);
  EXPECT_NE(report.find("Fig. 11 style"), std::string::npos);
  EXPECT_NE(report.find("FastMPC"), std::string::npos);
  EXPECT_NE(report.find("MPC"), std::string::npos);
  EXPECT_NE(report.find("1 malformed"), std::string::npos);
  EXPECT_NE(report.find("warm%"), std::string::npos);
}

TEST(LoadJournal, ThrowsOnMissingFile) {
  EXPECT_THROW(load_journal("/nonexistent-dir/journal.jsonl"),
               std::runtime_error);
}

TEST(CheckMetricsFile, ValidatesExposition) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto good = dir / "abrreport_good_metrics.txt";
  const auto bad = dir / "abrreport_bad_metrics.txt";
  {
    std::ofstream out(good);
    out << "# TYPE requests counter\nrequests 1\n";
  }
  {
    std::ofstream out(bad);
    out << "bad-name 1\n";
  }
  std::ostringstream log;
  EXPECT_EQ(check_metrics_file(good.string(), log), 0);
  EXPECT_NE(log.str().find("valid"), std::string::npos);
  EXPECT_EQ(check_metrics_file(bad.string(), log), 1);
  EXPECT_EQ(check_metrics_file("/nonexistent-dir/metrics.txt", log), 2);
  std::filesystem::remove(good);
  std::filesystem::remove(bad);
}

}  // namespace
}  // namespace abr::tools
