#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include "sim/player.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace abr::core {
namespace {

TEST(Algorithms, NamesAreStable) {
  EXPECT_STREQ(algorithm_name(Algorithm::kRateBased), "RB");
  EXPECT_STREQ(algorithm_name(Algorithm::kBufferBased), "BB");
  EXPECT_STREQ(algorithm_name(Algorithm::kFastMpc), "FastMPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kRobustMpc), "RobustMPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpc), "MPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpcOpt), "MPC-OPT");
  EXPECT_STREQ(algorithm_name(Algorithm::kDashJs), "dash.js");
  EXPECT_STREQ(algorithm_name(Algorithm::kFestive), "FESTIVE");
}

TEST(Algorithms, AllAlgorithmsListsPaperComparison) {
  const auto all = all_algorithms();
  EXPECT_EQ(all.size(), 6u);  // the six lines in Fig. 8
}

TEST(Algorithms, FactoryProducesMatchingControllerNames) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  for (const Algorithm algorithm :
       {Algorithm::kRateBased, Algorithm::kBufferBased, Algorithm::kFastMpc,
        Algorithm::kRobustMpc, Algorithm::kMpc, Algorithm::kDashJs,
        Algorithm::kFestive}) {
    const auto instance = make_algorithm(algorithm, manifest, qoe, options);
    ASSERT_NE(instance.controller, nullptr);
    ASSERT_NE(instance.predictor, nullptr);
    EXPECT_EQ(instance.controller->name(), algorithm_name(algorithm));
  }
}

TEST(Algorithms, MpcOptUsesPerfectPredictor) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto instance = make_algorithm(Algorithm::kMpcOpt, manifest, qoe);
  EXPECT_EQ(instance.predictor->name(), "perfect");
  EXPECT_EQ(instance.controller->name(), "MPC");
}

TEST(Algorithms, DefaultPredictorIsHarmonicMean5) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto instance = make_algorithm(Algorithm::kRateBased, manifest, qoe);
  EXPECT_EQ(instance.predictor->name(), "harmonic-mean-5");
}

TEST(Algorithms, EveryAlgorithmCompletesASession) {
  util::Rng rng(13);
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto trace = trace::MarkovConfig{}.generate(rng, 320.0);
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  for (const Algorithm algorithm : all_algorithms()) {
    auto instance = make_algorithm(algorithm, manifest, qoe, options);
    const auto result = sim::simulate(trace, manifest, qoe, {},
                                      *instance.controller,
                                      *instance.predictor);
    ASSERT_EQ(result.chunks.size(), manifest.chunk_count())
        << algorithm_name(algorithm);
    ASSERT_GE(result.average_bitrate_kbps, 350.0);
    ASSERT_LE(result.average_bitrate_kbps, 3000.0);
  }
}

TEST(Algorithms, ControllersAreReusableAcrossSessions) {
  util::Rng rng(14);
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  auto instance = make_algorithm(Algorithm::kRobustMpc, manifest, qoe);
  const auto trace_a = trace::HsdpaLikeConfig{}.generate(rng, 320.0);
  const auto first = sim::simulate(trace_a, manifest, qoe, {},
                                   *instance.controller, *instance.predictor);
  // Re-running the same trace must reproduce the same result exactly: the
  // player resets the controller, so no state leaks across sessions.
  const auto second = sim::simulate(trace_a, manifest, qoe, {},
                                    *instance.controller, *instance.predictor);
  ASSERT_EQ(first.chunks.size(), second.chunks.size());
  for (std::size_t k = 0; k < first.chunks.size(); ++k) {
    ASSERT_EQ(first.chunks[k].level, second.chunks[k].level) << "chunk " << k;
  }
  EXPECT_DOUBLE_EQ(first.qoe, second.qoe);
}

TEST(Algorithms, FastMpcReusesProvidedTable) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  // Building with a shared table must not rebuild (cheap construction).
  const auto instance = make_algorithm(Algorithm::kFastMpc, manifest, qoe,
                                       options);
  EXPECT_EQ(instance.controller->prediction_horizon(), 5u);
}

TEST(Algorithms, MpcHorizonOptionPropagates) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.mpc_horizon = 3;
  const auto instance = make_algorithm(Algorithm::kMpc, manifest, qoe, options);
  EXPECT_EQ(instance.controller->prediction_horizon(), 3u);
}

}  // namespace
}  // namespace abr::core
