#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/player.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace abr::core {
namespace {

/// The controller name make_algorithm is expected to produce. Identical to
/// algorithm_name except where the factory deliberately reuses another
/// controller (kMpcOpt is plain MPC paired with the perfect predictor).
std::string expected_controller_name(Algorithm algorithm) {
  if (algorithm == Algorithm::kMpcOpt) return "MPC";
  return algorithm_name(algorithm);
}

TEST(Algorithms, NamesAreStable) {
  EXPECT_STREQ(algorithm_name(Algorithm::kRateBased), "RB");
  EXPECT_STREQ(algorithm_name(Algorithm::kBufferBased), "BB");
  EXPECT_STREQ(algorithm_name(Algorithm::kFastMpc), "FastMPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kRobustMpc), "RobustMPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpc), "MPC");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpcOpt), "MPC-OPT");
  EXPECT_STREQ(algorithm_name(Algorithm::kDashJs), "dash.js");
  EXPECT_STREQ(algorithm_name(Algorithm::kFestive), "FESTIVE");
  EXPECT_STREQ(algorithm_name(Algorithm::kBola), "BOLA");
  EXPECT_STREQ(algorithm_name(Algorithm::kMpcDp), "MPC-DP");
}

TEST(Algorithms, RegistryCoversEveryAlgorithmExactlyOnce) {
  const auto registered = registered_algorithms();
  ASSERT_EQ(registered.size(), kAlgorithmCount);
  for (std::size_t i = 0; i < registered.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(registered[i]), i);
    EXPECT_STRNE(algorithm_name(registered[i]), "?");
  }
  // The paper's comparison set is a strict subset of the registry.
  for (const Algorithm algorithm : all_algorithms()) {
    EXPECT_NE(std::find(registered.begin(), registered.end(), algorithm),
              registered.end())
        << algorithm_name(algorithm);
  }
}

TEST(Algorithms, AllAlgorithmsListsPaperComparison) {
  const auto all = all_algorithms();
  EXPECT_EQ(all.size(), 6u);  // the six lines in Fig. 8
}

TEST(Algorithms, FactoryProducesMatchingControllerNames) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  for (const Algorithm algorithm : registered_algorithms()) {
    const auto instance = make_algorithm(algorithm, manifest, qoe, options);
    ASSERT_NE(instance.controller, nullptr);
    ASSERT_NE(instance.predictor, nullptr);
    EXPECT_EQ(instance.controller->name(), expected_controller_name(algorithm));
  }
}

TEST(Algorithms, MpcOptUsesPerfectPredictor) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto instance = make_algorithm(Algorithm::kMpcOpt, manifest, qoe);
  EXPECT_EQ(instance.predictor->name(), "perfect");
  EXPECT_EQ(instance.controller->name(), "MPC");
}

TEST(Algorithms, DefaultPredictorIsHarmonicMean5) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto instance = make_algorithm(Algorithm::kRateBased, manifest, qoe);
  EXPECT_EQ(instance.predictor->name(), "harmonic-mean-5");
}

TEST(Algorithms, EveryAlgorithmCompletesASession) {
  util::Rng rng(13);
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto trace = trace::MarkovConfig{}.generate(rng, 320.0);
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  // Enumerate from the registry so a newly added policy cannot silently
  // skip this end-to-end check.
  for (const Algorithm algorithm : registered_algorithms()) {
    auto instance = make_algorithm(algorithm, manifest, qoe, options);
    const auto result = sim::simulate(trace, manifest, qoe, {},
                                      *instance.controller,
                                      *instance.predictor);
    ASSERT_EQ(result.chunks.size(), manifest.chunk_count())
        << algorithm_name(algorithm);
    ASSERT_GE(result.average_bitrate_kbps, 350.0);
    ASSERT_LE(result.average_bitrate_kbps, 3000.0);
  }
}

TEST(Algorithms, ControllersAreReusableAcrossSessions) {
  util::Rng rng(14);
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const auto trace_a = trace::HsdpaLikeConfig{}.generate(rng, 320.0);
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  for (const Algorithm algorithm : registered_algorithms()) {
    auto instance = make_algorithm(algorithm, manifest, qoe, options);
    const auto first = sim::simulate(trace_a, manifest, qoe, {},
                                     *instance.controller,
                                     *instance.predictor);
    // Re-running the same trace must reproduce the same result exactly: the
    // player resets the controller, so no state leaks across sessions.
    const auto second = sim::simulate(trace_a, manifest, qoe, {},
                                      *instance.controller,
                                      *instance.predictor);
    ASSERT_EQ(first.chunks.size(), second.chunks.size());
    for (std::size_t k = 0; k < first.chunks.size(); ++k) {
      ASSERT_EQ(first.chunks[k].level, second.chunks[k].level)
          << algorithm_name(algorithm) << " chunk " << k;
    }
    EXPECT_DOUBLE_EQ(first.qoe, second.qoe) << algorithm_name(algorithm);
  }
}

TEST(Algorithms, FastMpcReusesProvidedTable) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.fastmpc_table = default_fastmpc_table(manifest, qoe, 30.0);
  // Building with a shared table must not rebuild (cheap construction).
  const auto instance = make_algorithm(Algorithm::kFastMpc, manifest, qoe,
                                       options);
  EXPECT_EQ(instance.controller->prediction_horizon(), 5u);
}

TEST(Algorithms, MpcHorizonOptionPropagates) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  AlgorithmOptions options;
  options.mpc_horizon = 3;
  const auto instance = make_algorithm(Algorithm::kMpc, manifest, qoe, options);
  EXPECT_EQ(instance.controller->prediction_horizon(), 3u);
}

}  // namespace
}  // namespace abr::core
