#include <gtest/gtest.h>

#include <vector>

#include "core/buffer_based.hpp"
#include "core/dashjs_rules.hpp"
#include "core/festive.hpp"
#include "core/rate_based.hpp"
#include "test_helpers.hpp"

namespace abr::core {
namespace {

sim::AbrState state_with(double buffer, std::size_t prev, bool has_prev,
                         std::span<const double> history,
                         std::span<const double> prediction,
                         bool playing = true) {
  sim::AbrState state;
  state.chunk_index = has_prev ? 1 : 0;
  state.buffer_s = buffer;
  state.prev_level = prev;
  state.has_prev = has_prev;
  state.throughput_history_kbps = history;
  state.prediction_kbps = prediction;
  state.playback_started = playing;
  return state;
}

// ---------------------------------------------------------------- RB ------

TEST(RateBased, PicksMaxBitrateUnderPrediction) {
  const auto manifest = media::VideoManifest::envivio_default();
  RateBasedController rb;
  const std::vector<double> history = {1100.0};
  const std::vector<double> prediction = {1100.0};
  EXPECT_EQ(rb.decide(state_with(10.0, 0, true, history, prediction), manifest),
            2u);  // 1000 kbps
}

TEST(RateBased, NoForecastStartsLowest) {
  const auto manifest = media::VideoManifest::envivio_default();
  RateBasedController rb;
  const std::vector<double> none;
  EXPECT_EQ(rb.decide(state_with(10.0, 0, false, none, none), manifest), 0u);
}

TEST(RateBased, IgnoresBufferLevel) {
  const auto manifest = media::VideoManifest::envivio_default();
  RateBasedController rb;
  const std::vector<double> history = {2100.0};
  const std::vector<double> prediction = {2100.0};
  const auto low = rb.decide(state_with(0.5, 0, true, history, prediction),
                             manifest);
  const auto high = rb.decide(state_with(29.0, 0, true, history, prediction),
                              manifest);
  EXPECT_EQ(low, high);
  EXPECT_EQ(low, 3u);  // 2000 kbps
}

TEST(RateBased, SafetyFactorScalesTarget) {
  const auto manifest = media::VideoManifest::envivio_default();
  RateBasedController conservative(0.5);
  const std::vector<double> history = {2100.0};
  const std::vector<double> prediction = {2100.0};
  EXPECT_EQ(conservative.decide(
                state_with(10.0, 0, true, history, prediction), manifest),
            2u);  // 0.5 * 2100 = 1050 -> 1000 kbps
}

/// Parameterized sweep: RB's decision equals highest_level_not_above for a
/// range of forecasts.
class RateBasedSweep : public ::testing::TestWithParam<double> {};

TEST_P(RateBasedSweep, MatchesLadderLookup) {
  const auto manifest = media::VideoManifest::envivio_default();
  RateBasedController rb;
  const std::vector<double> history = {GetParam()};
  const std::vector<double> prediction = {GetParam()};
  EXPECT_EQ(rb.decide(state_with(10.0, 0, true, history, prediction), manifest),
            manifest.highest_level_not_above(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Forecasts, RateBasedSweep,
                         ::testing::Values(100.0, 350.0, 599.0, 600.0, 999.0,
                                           1500.0, 2500.0, 3000.0, 9000.0));

// ---------------------------------------------------------------- BB ------

TEST(BufferBased, ReservoirForcesLowest) {
  const auto manifest = media::VideoManifest::envivio_default();
  BufferBasedController bb(5.0, 10.0);
  const std::vector<double> none;
  EXPECT_EQ(bb.decide(state_with(0.0, 3, true, none, none), manifest), 0u);
  EXPECT_EQ(bb.decide(state_with(5.0, 3, true, none, none), manifest), 0u);
}

TEST(BufferBased, AboveCushionPicksHighest) {
  const auto manifest = media::VideoManifest::envivio_default();
  BufferBasedController bb(5.0, 10.0);
  const std::vector<double> none;
  EXPECT_EQ(bb.decide(state_with(15.0, 0, true, none, none), manifest), 4u);
  EXPECT_EQ(bb.decide(state_with(30.0, 0, true, none, none), manifest), 4u);
}

TEST(BufferBased, LinearRampBetween) {
  const auto manifest = media::VideoManifest::envivio_default();
  BufferBasedController bb(5.0, 10.0);
  // f(10) = 350 + 0.5 * (3000 - 350) = 1675 -> level 2 (1000 kbps).
  EXPECT_NEAR(bb.rate_map_kbps(10.0, manifest), 1675.0, 1e-9);
  const std::vector<double> none;
  EXPECT_EQ(bb.decide(state_with(10.0, 4, true, none, none), manifest), 2u);
}

TEST(BufferBased, RateMapIsMonotoneInBuffer) {
  const auto manifest = media::VideoManifest::envivio_default();
  BufferBasedController bb(5.0, 10.0);
  double prev = 0.0;
  for (double b = 0.0; b <= 30.0; b += 0.25) {
    const double rate = bb.rate_map_kbps(b, manifest);
    ASSERT_GE(rate, prev);
    prev = rate;
  }
}

TEST(BufferBased, IgnoresThroughput) {
  const auto manifest = media::VideoManifest::envivio_default();
  BufferBasedController bb(5.0, 10.0);
  const std::vector<double> slow = {100.0};
  const std::vector<double> fast = {9000.0};
  EXPECT_EQ(bb.decide(state_with(12.0, 1, true, slow, slow), manifest),
            bb.decide(state_with(12.0, 1, true, fast, fast), manifest));
}

// ------------------------------------------------------------- FESTIVE ----

TEST(Festive, StartsLowest) {
  const auto manifest = media::VideoManifest::envivio_default();
  FestiveController festive;
  const std::vector<double> none;
  EXPECT_EQ(festive.decide(state_with(0.0, 0, false, none, none), manifest),
            0u);
}

TEST(Festive, StepsUpOneLevelAtATime) {
  const auto manifest = media::VideoManifest::envivio_default();
  FestiveController festive;
  festive.reset();
  const std::vector<double> history = {9000.0};
  const std::vector<double> prediction = {9000.0};
  // Even with huge headroom, the first move from level 0 is to level 1.
  std::size_t level = 0;
  for (int k = 1; k < 12; ++k) {
    const auto next = festive.decide(
        state_with(20.0, level, true, history, prediction), manifest);
    EXPECT_LE(next, level + 1) << "jumped more than one level at chunk " << k;
    level = next;
  }
  EXPECT_GT(level, 0u);  // eventually climbs
}

TEST(Festive, SwitchUpRequiresDwellTime) {
  const auto manifest = media::VideoManifest::envivio_default();
  FestiveController festive;
  festive.reset();
  const std::vector<double> history = {9000.0};
  const std::vector<double> prediction = {9000.0};
  // First decision after start: chunks_at_current = 0 < 1, cannot go up yet.
  const auto first = festive.decide(
      state_with(20.0, 0, true, history, prediction), manifest);
  EXPECT_EQ(first, 0u);
  // After dwelling one chunk, the move to level 1 is allowed.
  const auto second = festive.decide(
      state_with(20.0, 0, true, history, prediction), manifest);
  EXPECT_EQ(second, 1u);
}

TEST(Festive, DownSwitchIsImmediate) {
  const auto manifest = media::VideoManifest::envivio_default();
  FestiveController festive;
  festive.reset();
  const std::vector<double> history = {300.0};
  const std::vector<double> prediction = {300.0};
  const auto level = festive.decide(
      state_with(20.0, 3, true, history, prediction), manifest);
  EXPECT_EQ(level, 2u);  // one step down, no dwell requirement
}

TEST(Festive, ManySwitchesRaiseStabilityScoreAndHold) {
  const auto manifest = media::VideoManifest::envivio_default();
  FestiveController festive;
  festive.reset();
  // Alternate the throughput so the reference level flips; after a few
  // forced switches the stability score (2^switches) should make FESTIVE
  // hold rather than chase every flip.
  std::size_t level = 0;
  std::size_t switches = 0;
  for (int k = 1; k <= 20; ++k) {
    const double c = (k % 2 == 0) ? 3500.0 : 700.0;
    const std::vector<double> history = {c};
    const std::vector<double> prediction = {c};
    const auto next = festive.decide(
        state_with(20.0, level, true, history, prediction), manifest);
    if (next != level) ++switches;
    level = next;
  }
  EXPECT_LT(switches, 10u);  // far fewer than the 19 flips offered
}

// ------------------------------------------------------------- dash.js ----

TEST(DashJsRules, FirstChunkLowest) {
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  const std::vector<double> none;
  EXPECT_EQ(rules.decide(state_with(0.0, 0, false, none, none, false),
                         manifest),
            0u);
}

TEST(DashJsRules, BadDownloadRatioStepsDown) {
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  // Previous chunk at 2000 kbps measured only 900 kbps: ratio 0.45 ->
  // sustainable 900 -> level 1 (600 kbps).
  const std::vector<double> history = {900.0};
  const std::vector<double> prediction = {900.0};
  EXPECT_EQ(rules.decide(state_with(20.0, 3, true, history, prediction),
                         manifest),
            1u);
}

TEST(DashJsRules, GoodRatioJumpsToSustainableLevel) {
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  // At level 1 (600) with measured 2000 kbps the v1.2 ratio rule jumps
  // straight to the sustainable level 3 (2000 kbps) — no smoothing.
  const std::vector<double> history = {2000.0};
  const std::vector<double> prediction = {2000.0};
  EXPECT_EQ(rules.decide(state_with(20.0, 1, true, history, prediction),
                         manifest),
            3u);
}

TEST(DashJsRules, LowBufferForcesLowest) {
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  const std::vector<double> history = {5000.0};
  const std::vector<double> prediction = {5000.0};
  EXPECT_EQ(rules.decide(state_with(2.0, 3, true, history, prediction),
                         manifest),
            0u);
}

TEST(DashJsRules, StallHoldoffForbidsUpswitch) {
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  const std::vector<double> history = {5000.0};
  const std::vector<double> prediction = {5000.0};
  // Prime the controller, then present a stalled (empty) buffer.
  rules.decide(state_with(10.0, 2, true, history, prediction), manifest);
  rules.decide(state_with(0.0, 2, true, history, prediction), manifest);
  // Buffer recovered above the low-water mark, but the holdoff still blocks
  // the up-switch the download ratio would otherwise grant.
  const auto level = rules.decide(
      state_with(9.0, 2, true, history, prediction), manifest);
  EXPECT_EQ(level, 2u);
}

TEST(DashJsRules, OscillatesOnAlternatingThroughput) {
  // The behaviour the paper observes in Section 7.2: the unsmoothed ratio
  // rule switches on every throughput flip.
  const auto manifest = media::VideoManifest::envivio_default();
  DashJsRulesController rules;
  rules.reset();
  std::size_t level = 2;
  std::size_t switches = 0;
  for (int k = 1; k <= 20; ++k) {
    const double c = (k % 2 == 0) ? 2600.0 : 700.0;
    const std::vector<double> history = {c};
    const std::vector<double> prediction = {c};
    const auto next =
        rules.decide(state_with(20.0, level, true, history, prediction),
                     manifest);
    if (next != level) ++switches;
    level = next;
  }
  EXPECT_GE(switches, 10u);
}

}  // namespace
}  // namespace abr::core
