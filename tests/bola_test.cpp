#include "core/bola.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "media/manifest.hpp"
#include "sim/controller.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace abr::core {
namespace {

sim::AbrState state_at(double buffer_s, std::size_t chunk,
                       const std::vector<double>& prediction) {
  sim::AbrState state;
  state.chunk_index = chunk;
  state.buffer_s = buffer_s;
  state.prediction_kbps = prediction;
  state.playback_started = buffer_s > 0.0;
  return state;
}

TEST(Bola, AutoParametersResolvePositive) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  const BolaController bola(manifest, qoe, {});
  EXPECT_GT(bola.gamma_p(), 0.0);
  EXPECT_GT(bola.lyapunov_v(), 0.0);
  // Default threshold: two chunk durations.
  EXPECT_DOUBLE_EQ(bola.low_buffer_threshold_s(),
                   2.0 * manifest.chunk_duration_s());
}

TEST(Bola, EmptyBufferPicksLowestRung) {
  // The auto gamma_p is chosen so that at Q = 0 the lowest rung wins
  // strictly; use a huge forecast so the safety cap cannot be the reason.
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaController bola(manifest, qoe, {});
  const std::vector<double> prediction(1, 1e9);
  for (std::size_t chunk = 0; chunk < manifest.chunk_count(); chunk += 7) {
    EXPECT_EQ(bola.decide(state_at(0.0, chunk, prediction), manifest), 0u);
  }
}

TEST(Bola, NearFullBufferPicksTopRung) {
  // V is calibrated so the top rung is uniquely optimal one chunk short of a
  // full buffer (and stays optimal beyond).
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaConfig config;
  config.buffer_capacity_s = 30.0;
  BolaController bola(manifest, qoe, config);
  const std::size_t top = manifest.level_count() - 1;
  const std::vector<double> prediction(1, 1e9);
  const double near_full = config.buffer_capacity_s -
                           manifest.chunk_duration_s();
  EXPECT_EQ(bola.decide(state_at(near_full, 3, prediction), manifest), top);
  EXPECT_EQ(bola.decide(state_at(config.buffer_capacity_s, 3, prediction),
                        manifest),
            top);
}

TEST(Bola, ArgmaxMatchesBruteForceScore) {
  // Recompute the published objective (V (v_m + gamma p) - Q) / S_m from the
  // controller's own resolved parameters and check decide() maximizes it
  // whenever the low-buffer cap is not in play.
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaController bola(manifest, qoe, {});
  util::Rng rng(77);

  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t chunk = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(
                               manifest.chunk_count()) - 1));
    const double buffer_s =
        rng.uniform(bola.low_buffer_threshold_s(), 30.0);
    const double q = buffer_s / manifest.chunk_duration_s();
    std::size_t expected = 0;
    double best = 0.0;
    for (std::size_t level = 0; level < manifest.level_count(); ++level) {
      const double utility = qoe.quality(manifest.bitrate_kbps(level)) -
                             qoe.quality(manifest.bitrate_kbps(0));
      const double score =
          (bola.lyapunov_v() * (utility + bola.gamma_p()) - q) /
          manifest.chunk_kilobits(chunk, level);
      if (level == 0 || score > best) {
        expected = level;
        best = score;
      }
    }
    const std::vector<double> prediction(1, rng.uniform(200.0, 5000.0));
    EXPECT_EQ(bola.decide(state_at(buffer_s, chunk, prediction), manifest),
              expected)
        << "chunk " << chunk << " buffer " << buffer_s;
  }
}

TEST(Bola, LowBufferCapBindsOnlyBelowThreshold) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaController bola(manifest, qoe, {});
  // A forecast that sustains only the lowest rung.
  const std::vector<double> weak(1, manifest.bitrate_kbps(0) + 1.0);

  const double below = bola.low_buffer_threshold_s() * 0.5;
  EXPECT_EQ(bola.decide(state_at(below, 5, weak), manifest), 0u);

  // Above the threshold the cap vanishes: with a comfortable buffer, the
  // Lyapunov argmax reaches above the sustainable rung.
  const double above = 25.0;
  EXPECT_GT(bola.decide(state_at(above, 5, weak), manifest), 0u);
}

TEST(Bola, ExplicitConfigOverridesAuto) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaConfig config;
  config.gamma_p = 123.0;
  config.low_buffer_threshold_s = 1.5;
  const BolaController bola(manifest, qoe, config);
  EXPECT_DOUBLE_EQ(bola.gamma_p(), 123.0);
  EXPECT_DOUBLE_EQ(bola.low_buffer_threshold_s(), 1.5);
}

TEST(Bola, RejectsBadConfig) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaConfig zero_gamma;
  zero_gamma.gamma_p = 0.0;
  EXPECT_THROW(BolaController(manifest, qoe, zero_gamma),
               std::invalid_argument);
  BolaConfig bad_capacity;
  bad_capacity.buffer_capacity_s = 0.0;
  EXPECT_THROW(BolaController(manifest, qoe, bad_capacity),
               std::invalid_argument);
}

TEST(Bola, DecideIsAPureFunctionOfState) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  BolaController bola(manifest, qoe, {});
  const std::vector<double> prediction(1, 1400.0);
  const auto state = state_at(12.0, 9, prediction);
  const std::size_t first = bola.decide(state, manifest);
  bola.reset();
  EXPECT_EQ(bola.decide(state, manifest), first);
  ASSERT_NE(bola.last_decision(), nullptr);
  EXPECT_STREQ(bola.last_decision()->path, "rule");
}

}  // namespace
}  // namespace abr::core
