// Unit tests for util/checked_parse.hpp: the overflow/NaN/Inf-safe numeric
// conversions every hostile-input parser routes through. The interesting
// cases live at the edges — UINT64_MAX-adjacent doubles, values where a
// naive `<= UINT64_MAX` comparison silently rounds, and the textual
// "inf"/"nan" spellings std::from_chars accepts but JSON bans.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/checked_parse.hpp"

namespace abr::util {
namespace {

TEST(U64FromDouble, AcceptsExactIntegers) {
  std::uint64_t out = 0;
  EXPECT_TRUE(u64_from_double(0.0, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(u64_from_double(42.0, out));
  EXPECT_EQ(out, 42u);
  // 2^53: still exactly representable and well inside uint64 range.
  EXPECT_TRUE(u64_from_double(9007199254740992.0, out));
  EXPECT_EQ(out, 9007199254740992ull);
}

TEST(U64FromDouble, Uint64MaxAdjacentBoundary) {
  std::uint64_t out = 0;
  // The largest double below 2^64 is 2^64 - 2048; it must convert.
  const double below = std::nextafter(18446744073709551616.0, 0.0);
  EXPECT_TRUE(u64_from_double(below, out));
  EXPECT_EQ(out, 18446744073709549568ull);  // 2^64 - 2048
  // 2^64 itself does not fit. A naive `v <= (double)UINT64_MAX` comparison
  // would accept it (UINT64_MAX rounds UP to 2^64 as a double) and the cast
  // would be UB; the half-open bound must reject it.
  EXPECT_FALSE(u64_from_double(18446744073709551616.0, out));
  EXPECT_FALSE(u64_from_double(2e19, out));
}

TEST(U64FromDouble, RejectsNegativeFractionalAndNonFinite) {
  std::uint64_t out = 0;
  EXPECT_FALSE(u64_from_double(-1.0, out));
  EXPECT_FALSE(u64_from_double(-0.5, out));
  EXPECT_FALSE(u64_from_double(1.5, out));
  EXPECT_FALSE(u64_from_double(std::numeric_limits<double>::infinity(), out));
  EXPECT_FALSE(u64_from_double(-std::numeric_limits<double>::infinity(), out));
  EXPECT_FALSE(u64_from_double(std::numeric_limits<double>::quiet_NaN(), out));
}

TEST(IntFromDouble, RangeChecked) {
  int out = 0;
  EXPECT_TRUE(int_from_double(503.0, out));
  EXPECT_EQ(out, 503);
  EXPECT_TRUE(int_from_double(-7.0, out));
  EXPECT_EQ(out, -7);
  EXPECT_FALSE(int_from_double(2147483648.0, out));   // INT_MAX + 1
  EXPECT_FALSE(int_from_double(-2147483649.0, out));  // INT_MIN - 1
  EXPECT_FALSE(int_from_double(0.25, out));
  EXPECT_FALSE(int_from_double(std::nan(""), out));
}

TEST(ParseU64, FullConsumptionAndOverflow) {
  std::uint64_t out = 0;
  EXPECT_TRUE(parse_u64("0", out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", out));  // UINT64_MAX
  EXPECT_EQ(out, std::numeric_limits<std::uint64_t>::max());
  // One past UINT64_MAX: stoull would wrap or throw; parse_u64 just fails.
  EXPECT_FALSE(parse_u64("18446744073709551616", out));
  EXPECT_FALSE(parse_u64("99999999999999999999", out));
  EXPECT_FALSE(parse_u64("", out));
  EXPECT_FALSE(parse_u64("12x", out));
  EXPECT_FALSE(parse_u64("-1", out));
  EXPECT_FALSE(parse_u64(" 1", out));
  EXPECT_FALSE(parse_u64("1.0", out));
}

TEST(ParseFiniteDouble, RejectsInfNanSpellings) {
  double out = 0.0;
  EXPECT_TRUE(parse_finite_double("1.25", out));
  EXPECT_DOUBLE_EQ(out, 1.25);
  EXPECT_TRUE(parse_finite_double("-3e2", out));
  EXPECT_DOUBLE_EQ(out, -300.0);
  // std::from_chars accepts these spellings; the finite wrapper must not.
  EXPECT_FALSE(parse_finite_double("inf", out));
  EXPECT_FALSE(parse_finite_double("-inf", out));
  EXPECT_FALSE(parse_finite_double("nan", out));
  EXPECT_FALSE(parse_finite_double("1e999", out));  // overflows to +inf
  EXPECT_FALSE(parse_finite_double("", out));
  EXPECT_FALSE(parse_finite_double("1.5extra", out));
}

TEST(IsJsonNumber, StrictGrammar) {
  EXPECT_TRUE(is_json_number("0"));
  EXPECT_TRUE(is_json_number("-0"));
  EXPECT_TRUE(is_json_number("10"));
  EXPECT_TRUE(is_json_number("-1.25"));
  EXPECT_TRUE(is_json_number("1e9"));
  EXPECT_TRUE(is_json_number("2.5E-3"));
  EXPECT_TRUE(is_json_number("1e+2"));

  EXPECT_FALSE(is_json_number(""));
  EXPECT_FALSE(is_json_number("+1"));       // leading plus
  EXPECT_FALSE(is_json_number("01"));       // leading zero
  EXPECT_FALSE(is_json_number(".5"));       // bare fraction
  EXPECT_FALSE(is_json_number("1."));       // empty fraction
  EXPECT_FALSE(is_json_number("1e"));       // empty exponent
  EXPECT_FALSE(is_json_number("nan"));
  EXPECT_FALSE(is_json_number("NaN"));
  EXPECT_FALSE(is_json_number("inf"));
  EXPECT_FALSE(is_json_number("Infinity"));
  EXPECT_FALSE(is_json_number("0x10"));
}

TEST(SizeFromDouble, MatchesU64OnThisPlatform) {
  std::size_t out = 0;
  EXPECT_TRUE(size_from_double(123.0, out));
  EXPECT_EQ(out, 123u);
  EXPECT_FALSE(size_from_double(-1.0, out));
  EXPECT_FALSE(size_from_double(1e300, out));
}

}  // namespace
}  // namespace abr::util
