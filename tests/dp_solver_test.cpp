// Exactness contract of the value-iteration backend: over a seeded random
// grid of horizon problems, the DP plan's exact objective must sit within
// [bnb - tolerance_bound, bnb] of the branch-and-bound optimum. The bound is
// the Lipschitz discretization argument documented on DpHorizonSolver:
//
//   mu * delta * N (N - 1) / 2  +  (mu_event > 0 ? 2 (N - 1) mu_event : 0),
//
// with delta = Bmax / buffer_bins. With the default 600 bins, Bmax = 30 and
// the balanced weights this is a few hundred QoE units — loose by design;
// the observed gap (pinned below) is two orders of magnitude smaller.
#include "core/dp_solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/fastmpc_table.hpp"
#include "core/horizon_solver.hpp"
#include "media/manifest.hpp"
#include "test_helpers.hpp"
#include "util/binning.hpp"
#include "util/rng.hpp"

namespace abr::core {
namespace {

/// A randomized but reproducible horizon problem; `forecast` provides the
/// backing storage for the span.
HorizonProblem random_problem(util::Rng& rng,
                              const media::VideoManifest& manifest,
                              std::vector<double>& forecast) {
  forecast.resize(5);
  double kbps = rng.uniform(200.0, 5000.0);
  for (double& f : forecast) {
    kbps = std::clamp(kbps * rng.uniform(0.6, 1.5), 150.0, 6000.0);
    f = kbps;
  }
  HorizonProblem problem;
  problem.buffer_s = rng.uniform(0.0, 30.0);
  problem.prev_level = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(manifest.level_count()) - 1));
  problem.has_prev = rng.uniform() < 0.8;
  problem.predicted_kbps = forecast;
  problem.first_chunk = static_cast<std::size_t>(rng.uniform_int(0, 40));
  problem.buffer_capacity_s = 30.0;
  return problem;
}

TEST(DpSolver, MatchesBranchAndBoundWithinToleranceOnSeededGrid) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpSolverConfig config;
  config.cross_check = true;
  DpHorizonSolver solver(manifest, qoe, config);

  const std::uint64_t grid_seed = 4242;
  util::Rng rng(grid_seed);
  std::vector<double> forecast;
  for (int i = 0; i < 300; ++i) {
    const HorizonProblem problem = random_problem(rng, manifest, forecast);
    ASSERT_GT(solver.tolerance_bound(problem), 0.0);
    solver.solve(problem);
  }
  const auto& stats = solver.cross_check_stats();
  EXPECT_EQ(stats.solves, 300u);
  EXPECT_EQ(stats.violations, 0u);
  // The DP plan is scored exactly, so it can never beat the optimum; the
  // worst observed gap stays at ~4% of the analytic bound (empirical pin —
  // raise deliberately if the discretization changes).
  EXPECT_GE(stats.max_gap, 0.0);
  EXPECT_LE(stats.max_gap, 150.0);
  // The greedy first decision almost always coincides with the optimum.
  EXPECT_GE(stats.first_decision_matches, 285u);
}

TEST(DpSolver, ObjectiveIsTheExactScoreOfItsOwnPlan) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpHorizonSolver solver(manifest, qoe);
  const HorizonSolver bnb(manifest, qoe);

  const std::uint64_t plan_seed = 9091;
  util::Rng rng(plan_seed);
  std::vector<double> forecast;
  for (int i = 0; i < 50; ++i) {
    const HorizonProblem problem = random_problem(rng, manifest, forecast);
    const HorizonSolution dp = solver.solve(problem);
    // The reported objective is the plan rescored by the exact recurrence.
    EXPECT_NEAR(dp.objective, solver.plan_objective(problem, dp.levels),
                1e-9);
    // ... and both solvers score the *reference* plan identically, so any
    // objective gap is purely a plan difference, never a scoring skew.
    const HorizonSolution reference = bnb.solve(problem);
    EXPECT_NEAR(reference.objective,
                solver.plan_objective(problem, reference.levels), 1e-9);
    EXPECT_LE(dp.objective, reference.objective + 1e-9);
  }
}

TEST(DpSolver, SolveIsDeterministic) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpHorizonSolver solver(manifest, qoe);
  const std::vector<double> forecast = {900.0, 1100.0, 700.0, 1300.0, 1000.0};
  HorizonProblem problem;
  problem.buffer_s = 8.0;
  problem.prev_level = 2;
  problem.has_prev = true;
  problem.predicted_kbps = forecast;
  problem.first_chunk = 12;

  const HorizonSolution a = solver.solve(problem);
  const HorizonSolution b = solver.solve(problem);
  EXPECT_EQ(a.levels, b.levels);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
}

TEST(DpSolver, ToleranceBoundScalesWithGridResolution) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpSolverConfig coarse;
  coarse.buffer_bins = 100;
  DpSolverConfig fine;
  fine.buffer_bins = 1000;
  const DpHorizonSolver coarse_solver(manifest, qoe, coarse);
  const DpHorizonSolver fine_solver(manifest, qoe, fine);

  const std::vector<double> forecast(5, 1000.0);
  HorizonProblem problem;
  problem.predicted_kbps = forecast;
  const double coarse_bound = coarse_solver.tolerance_bound(problem);
  const double fine_bound = fine_solver.tolerance_bound(problem);
  EXPECT_GT(coarse_bound, 0.0);
  // The mu * delta * N(N-1)/2 term shrinks 10x with a 10x finer grid; any
  // mu_event term is resolution-independent. Writing the bounds as
  // coarse = 10 m + c and fine = m + c gives m = (coarse - fine) / 9, and
  // the recovered constant c must be non-negative.
  EXPECT_LT(fine_bound, coarse_bound);
  const double mu_event_term = fine_bound - (coarse_bound - fine_bound) / 9.0;
  EXPECT_GE(mu_event_term, -1e-9);
}

TEST(DpSolver, SliceDecisionsMatchPerStateSolves) {
  // The FastMPC bulk build path must agree with the online path: each
  // (prev, root-bin) decision of solve_slice equals the first level of a
  // fresh solve() started at that bin center.
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpHorizonSolver solver(manifest, qoe);

  const std::vector<double> forecast = {800.0, 800.0, 800.0, 800.0, 800.0};
  const std::size_t levels = manifest.level_count();
  const std::size_t root_bins = 20;
  const util::LinearBinner roots(0.0, 30.0, root_bins);
  std::vector<std::uint8_t> decisions(levels * root_bins, 0xff);
  solver.solve_slice(forecast, 0, 30.0, roots, root_bins, decisions);

  for (std::size_t prev = 0; prev < levels; ++prev) {
    for (std::size_t b = 0; b < root_bins; ++b) {
      HorizonProblem problem;
      problem.buffer_s = roots.center(b);
      problem.prev_level = prev;
      problem.has_prev = true;
      problem.predicted_kbps = forecast;
      problem.first_chunk = 0;
      problem.buffer_capacity_s = 30.0;
      const HorizonSolution solution = solver.solve(problem);
      EXPECT_EQ(decisions[prev * root_bins + b], solution.levels.front())
          << "prev " << prev << " bin " << b;
    }
  }
}

TEST(DpSolver, FastMpcTableDpBackendStaysCloseToBnbTable) {
  // Building the FastMPC table through the DP backend must produce the same
  // decision in nearly every cell; disagreements are confined to cells where
  // the two optima are within the discretization tolerance of each other.
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig bnb_config;
  bnb_config.flat_lookup = true;
  FastMpcConfig dp_config = bnb_config;
  dp_config.dp_backend = true;
  const FastMpcTable bnb_table = FastMpcTable::build(manifest, qoe, bnb_config);
  const FastMpcTable dp_table = FastMpcTable::build(manifest, qoe, dp_config);

  std::size_t queries = 0;
  std::size_t disagreements = 0;
  for (double buffer_s = 0.15; buffer_s < 30.0; buffer_s += 0.3) {
    for (double kbps = 100.0; kbps < 9000.0; kbps *= 1.15) {
      for (std::size_t prev = 0; prev < manifest.level_count(); ++prev) {
        ++queries;
        if (bnb_table.lookup(buffer_s, prev, kbps) !=
            dp_table.lookup(buffer_s, prev, kbps)) {
          ++disagreements;
        }
      }
    }
  }
  // Empirical pin: well under 1% of cells may differ (tolerance-tied ties).
  EXPECT_LE(disagreements, queries / 100) << disagreements << "/" << queries;
}

TEST(DpSolver, RejectsMalformedProblems) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  DpHorizonSolver solver(manifest, qoe);

  HorizonProblem empty;
  EXPECT_THROW(solver.solve(empty), std::invalid_argument);

  const std::vector<double> bad_forecast = {1000.0, 0.0, 1000.0};
  HorizonProblem nonpositive;
  nonpositive.predicted_kbps = bad_forecast;
  EXPECT_THROW(solver.solve(nonpositive), std::invalid_argument);

  DpSolverConfig zero_bins;
  zero_bins.buffer_bins = 0;
  EXPECT_THROW(DpHorizonSolver(manifest, qoe, zero_bins),
               std::invalid_argument);
}

}  // namespace
}  // namespace abr::core
