#include "core/fastmpc_table.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/horizon_solver.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace abr::core {
namespace {

FastMpcConfig small_config() {
  FastMpcConfig config;
  config.buffer_bins = 12;
  config.throughput_bins = 16;
  config.horizon = 3;
  config.threads = 2;
  return config;
}

TEST(FastMpcTable, BuildValidatesConfig) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig zero = small_config();
  zero.buffer_bins = 0;
  EXPECT_THROW(FastMpcTable::build(manifest, qoe, zero), std::invalid_argument);
}

TEST(FastMpcTable, CellCountMatchesDimensions) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  EXPECT_EQ(table.cell_count(), 12u * 3u * 16u);
  EXPECT_EQ(table.full_table_bytes(), table.cell_count());
  EXPECT_EQ(table.level_count(), 3u);
}

/// The defining property of FastMPC (Section 5.1): a lookup at a bin-center
/// scenario returns exactly the decision the online MPC solver would make.
TEST(FastMpcTable, LookupMatchesExactSolveAtBinCenters) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const FastMpcConfig config = small_config();
  const auto table = FastMpcTable::build(manifest, qoe, config);

  const media::VideoManifest generic = media::VideoManifest::cbr(
      config.horizon, manifest.chunk_duration_s(), manifest.bitrates_kbps());
  HorizonSolver solver(generic, qoe);
  const util::LinearBinner buffer_binner(0.0, config.buffer_capacity_s,
                                         config.buffer_bins);
  const util::LogBinner throughput_binner(config.throughput_lo_kbps,
                                          config.throughput_hi_kbps,
                                          config.throughput_bins);

  util::Rng rng(91);
  for (int trial = 0; trial < 200; ++trial) {
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.buffer_bins) - 1));
    const auto prev = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const auto c = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.throughput_bins) - 1));

    const std::vector<double> forecast(config.horizon,
                                       throughput_binner.center(c));
    HorizonProblem problem;
    problem.buffer_s = buffer_binner.center(b);
    problem.prev_level = prev;
    problem.has_prev = true;
    problem.predicted_kbps = forecast;
    problem.buffer_capacity_s = config.buffer_capacity_s;

    ASSERT_EQ(table.lookup(buffer_binner.center(b), prev,
                           throughput_binner.center(c)),
              solver.solve(problem).levels.front());
  }
}

TEST(FastMpcTable, LookupClampsOutOfRangeQueries) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  // Extreme queries must not crash and must return valid levels.
  EXPECT_LT(table.lookup(-5.0, 0, 1.0), 3u);
  EXPECT_LT(table.lookup(1e6, 2, 1e9), 3u);
}

TEST(FastMpcTable, HighThroughputHighBufferPicksTop) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  EXPECT_EQ(table.lookup(28.0, 2, 8000.0), 2u);
  EXPECT_EQ(table.lookup(1.0, 0, 60.0), 0u);
}

TEST(FastMpcTable, DecisionsMonotoneInThroughputAtFixedBuffer) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  for (std::size_t prev = 0; prev < 3; ++prev) {
    std::size_t previous_level = 0;
    for (double c = 60.0; c < 9000.0; c *= 1.3) {
      const std::size_t level = table.lookup(20.0, prev, c);
      ASSERT_GE(level, previous_level)
          << "non-monotone at c=" << c << " prev=" << prev;
      previous_level = level;
    }
  }
}

TEST(FastMpcTable, SerializeRoundTrip) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  const FastMpcTable restored = FastMpcTable::deserialize(table.serialize());
  EXPECT_TRUE(table == restored);
  EXPECT_EQ(restored.lookup(12.0, 1, 900.0), table.lookup(12.0, 1, 900.0));
}

TEST(FastMpcTable, FileRoundTrip) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  const auto path =
      std::filesystem::temp_directory_path() / "abr_fastmpc_test.bin";
  table.save(path.string());
  const FastMpcTable loaded = FastMpcTable::load(path.string());
  EXPECT_TRUE(table == loaded);
  std::filesystem::remove(path);
}

TEST(FastMpcTable, DeserializeRejectsGarbage) {
  EXPECT_THROW(FastMpcTable::deserialize(""), std::invalid_argument);
  EXPECT_THROW(FastMpcTable::deserialize("NOTMAGIC........."),
               std::invalid_argument);
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto table = FastMpcTable::build(manifest, qoe, small_config());
  std::string bytes = table.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(FastMpcTable::deserialize(bytes), std::invalid_argument);
}

TEST(FastMpcTable, RleCompressesRealTables) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig config;
  config.buffer_bins = 30;
  config.throughput_bins = 30;
  config.horizon = 3;
  const auto table = FastMpcTable::build(manifest, qoe, config);
  // Adjacent scenarios share decisions, so RLE must beat the full table
  // (this is the Section 5.2 compression claim).
  EXPECT_LT(table.rle_binary_bytes(), table.full_table_bytes());
  EXPECT_LT(table.js_rle_bytes(), table.js_full_bytes());
  EXPECT_GT(table.run_count(), 0u);
}

TEST(FastMpcController, RequiresTable) {
  EXPECT_THROW(FastMpcController(nullptr), std::invalid_argument);
}

TEST(FastMpcController, DecisionsComeFromTable) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  auto table = std::make_shared<const FastMpcTable>(
      FastMpcTable::build(manifest, qoe, small_config()));
  FastMpcController controller(table);
  EXPECT_EQ(controller.prediction_horizon(), 3u);

  sim::AbrState state;
  state.chunk_index = 2;
  state.buffer_s = 14.0;
  state.prev_level = 1;
  state.has_prev = true;
  const std::vector<double> prediction(3, 900.0);
  state.prediction_kbps = prediction;
  EXPECT_EQ(controller.decide(state, manifest), table->lookup(14.0, 1, 900.0));

  // No forecast: lowest level.
  const std::vector<double> none;
  state.prediction_kbps = none;
  EXPECT_EQ(controller.decide(state, manifest), 0u);
}

TEST(FastMpcController, RejectsMismatchedManifest) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  auto table = std::make_shared<const FastMpcTable>(
      FastMpcTable::build(manifest, qoe, small_config()));
  FastMpcController controller(table);
  const auto other = media::VideoManifest::envivio_default();  // 5 levels
  sim::AbrState state;
  const std::vector<double> prediction(3, 900.0);
  state.prediction_kbps = prediction;
  EXPECT_THROW(controller.decide(state, other), std::logic_error);
}

TEST(FastMpcTable, SingleThreadAndMultiThreadBuildsAgree) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig sequential = small_config();
  sequential.threads = 1;
  FastMpcConfig parallel = small_config();
  parallel.threads = 4;
  const auto a = FastMpcTable::build(manifest, qoe, sequential);
  const auto b = FastMpcTable::build(manifest, qoe, parallel);
  EXPECT_TRUE(a == b);
}

/// The warm-start exactness guarantee at table granularity: sweeping with
/// neighbor-seeded solves produces the same table, cell for cell, as cold
/// solving every scenario — while expanding far fewer nodes.
TEST(FastMpcTable, WarmBuildEqualsColdBuild) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig cold_config;
  cold_config.buffer_bins = 25;
  cold_config.throughput_bins = 25;
  cold_config.horizon = 4;
  cold_config.warm_start = false;
  FastMpcConfig warm_config = cold_config;
  warm_config.warm_start = true;

  FastMpcBuildStats cold_stats;
  FastMpcBuildStats warm_stats;
  const auto cold = FastMpcTable::build(manifest, qoe, cold_config, &cold_stats);
  const auto warm = FastMpcTable::build(manifest, qoe, warm_config, &warm_stats);

  EXPECT_TRUE(cold == warm);
  EXPECT_EQ(cold_stats.solves, cold.cell_count());
  EXPECT_EQ(warm_stats.solves, warm.cell_count());
  EXPECT_GT(cold_stats.total_nodes_expanded, 0u);
  EXPECT_LT(warm_stats.total_nodes_expanded, cold_stats.total_nodes_expanded);
}

/// The flat decoded array is a lookup representation only: every query must
/// return the same decision as the RLE binary search, and the serialized
/// form (and so the Table 1 size accounting) must be unchanged.
TEST(FastMpcTable, FlatLookupMatchesRleLookup) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  FastMpcConfig rle_config = small_config();
  FastMpcConfig flat_config = small_config();
  flat_config.flat_lookup = true;
  const auto rle = FastMpcTable::build(manifest, qoe, rle_config);
  const auto flat = FastMpcTable::build(manifest, qoe, flat_config);

  EXPECT_TRUE(rle == flat);
  EXPECT_EQ(rle.serialize(), flat.serialize());
  util::Rng rng(94);
  for (int trial = 0; trial < 500; ++trial) {
    const double buffer = rng.uniform(-2.0, 35.0);
    const auto prev = static_cast<std::size_t>(rng.uniform_int(0, 2));
    const double throughput = rng.uniform(20.0, 20000.0);
    ASSERT_EQ(flat.lookup(buffer, prev, throughput),
              rle.lookup(buffer, prev, throughput))
        << "buffer " << buffer << " prev " << prev << " tput " << throughput;
  }
}

}  // namespace
}  // namespace abr::core
