// The deterministic fault-injection framework, virtual-time side: FaultPlan
// schedules, JSON round-trip, RetryPolicy backoff, FaultySource behaviour,
// and PlayerSession degradation/skip accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/buffer_based.hpp"
#include "predict/predictor.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "test_helpers.hpp"
#include "testing/fault_plan.hpp"
#include "testing/faulty_source.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace abr {
namespace {

testing::FaultPlan heavy_plan() {
  testing::FaultPlan plan;
  plan.seed = 42;
  plan.latency_rate = 0.05;
  plan.stall_rate = 0.08;
  plan.partial_rate = 0.05;
  plan.reset_rate = 0.1;
  plan.http_error_rate = 0.1;
  plan.latency_min_s = 0.2;
  plan.latency_max_s = 1.0;
  plan.stall_min_s = 0.5;
  plan.stall_max_s = 1.5;
  return plan;
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  const auto plan = heavy_plan();
  for (std::size_t chunk = 0; chunk < 200; ++chunk) {
    for (std::size_t attempt = 0; attempt < 2; ++attempt) {
      const auto a = plan.decide(chunk, attempt);
      const auto b = plan.decide(chunk, attempt);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
      EXPECT_DOUBLE_EQ(a.stall_s, b.stall_s);
      EXPECT_DOUBLE_EQ(a.body_fraction, b.body_fraction);
    }
  }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  auto a = heavy_plan();
  auto b = heavy_plan();
  b.seed = 43;
  std::size_t differing = 0;
  for (std::size_t chunk = 0; chunk < 500; ++chunk) {
    if (a.decide(chunk, 0).kind != b.decide(chunk, 0).kind) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(FaultPlan, RatesAreRespectedOverManyChunks) {
  testing::FaultPlan plan;
  plan.seed = 7;
  plan.reset_rate = 0.2;
  plan.stall_rate = 0.1;
  const std::size_t n = 50000;
  std::size_t resets = 0;
  std::size_t stalls = 0;
  for (std::size_t chunk = 0; chunk < n; ++chunk) {
    switch (plan.decide(chunk, 0).kind) {
      case testing::FaultKind::kReset: ++resets; break;
      case testing::FaultKind::kStall: ++stalls; break;
      default: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(resets) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(stalls) / n, 0.1, 0.01);
}

TEST(FaultPlan, AttemptsBeyondLimitAreNeverFaulted) {
  testing::FaultPlan plan;
  plan.reset_rate = 1.0;
  plan.max_faulty_attempts = 3;
  for (std::size_t chunk = 0; chunk < 50; ++chunk) {
    for (std::size_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(plan.decide(chunk, attempt).kind, testing::FaultKind::kReset);
    }
    EXPECT_EQ(plan.decide(chunk, 3).kind, testing::FaultKind::kNone);
    EXPECT_EQ(plan.decide(chunk, 99).kind, testing::FaultKind::kNone);
  }
}

TEST(FaultPlan, MagnitudesStayInConfiguredRanges) {
  auto plan = heavy_plan();
  plan.latency_rate = 0.5;
  plan.stall_rate = 0.5;
  for (std::size_t chunk = 0; chunk < 2000; ++chunk) {
    const auto d = plan.decide(chunk, 0);
    if (d.kind == testing::FaultKind::kLatencySpike) {
      EXPECT_GE(d.latency_s, plan.latency_min_s);
      EXPECT_LT(d.latency_s, plan.latency_max_s);
    } else if (d.kind == testing::FaultKind::kStall) {
      EXPECT_GE(d.stall_s, plan.stall_min_s);
      EXPECT_LT(d.stall_s, plan.stall_max_s);
      EXPECT_GE(d.body_fraction, 0.1);
      EXPECT_LE(d.body_fraction, 0.9);
    }
  }
}

TEST(FaultPlan, JsonRoundTripPreservesEveryField) {
  auto plan = heavy_plan();
  plan.http_status = 502;
  plan.error_response_s = 0.25;
  plan.reset_delay_s = 0.15;
  plan.max_faulty_attempts = 5;
  const auto parsed = testing::FaultPlan::from_json(plan.to_json());
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_DOUBLE_EQ(parsed.latency_rate, plan.latency_rate);
  EXPECT_DOUBLE_EQ(parsed.stall_rate, plan.stall_rate);
  EXPECT_DOUBLE_EQ(parsed.partial_rate, plan.partial_rate);
  EXPECT_DOUBLE_EQ(parsed.reset_rate, plan.reset_rate);
  EXPECT_DOUBLE_EQ(parsed.http_error_rate, plan.http_error_rate);
  EXPECT_DOUBLE_EQ(parsed.latency_min_s, plan.latency_min_s);
  EXPECT_DOUBLE_EQ(parsed.latency_max_s, plan.latency_max_s);
  EXPECT_DOUBLE_EQ(parsed.stall_min_s, plan.stall_min_s);
  EXPECT_DOUBLE_EQ(parsed.stall_max_s, plan.stall_max_s);
  EXPECT_EQ(parsed.http_status, plan.http_status);
  EXPECT_DOUBLE_EQ(parsed.error_response_s, plan.error_response_s);
  EXPECT_DOUBLE_EQ(parsed.reset_delay_s, plan.reset_delay_s);
  EXPECT_EQ(parsed.max_faulty_attempts, plan.max_faulty_attempts);
  // Decisions — the thing that matters — agree too.
  for (std::size_t chunk = 0; chunk < 100; ++chunk) {
    EXPECT_EQ(parsed.decide(chunk, 0).kind, plan.decide(chunk, 0).kind);
  }
}

TEST(FaultPlan, RejectsMalformedAndOutOfRangeInput) {
  EXPECT_THROW(testing::FaultPlan::from_json("{\"bogus_key\": 1}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("not json"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": }"),
               std::invalid_argument);
  // Rates summing past 1.
  EXPECT_THROW(testing::FaultPlan::from_json(
                   "{\"reset_rate\": 0.7, \"stall_rate\": 0.7}"),
               std::invalid_argument);
  // Non-5xx injected status.
  EXPECT_THROW(testing::FaultPlan::from_json("{\"http_status\": 404}"),
               std::invalid_argument);
  testing::FaultPlan inverted;
  inverted.stall_min_s = 3.0;
  inverted.stall_max_s = 1.0;
  EXPECT_THROW(inverted.validate(), std::invalid_argument);
}

TEST(FaultPlan, IntegerFieldsAreOverflowChecked) {
  // UINT64_MAX itself is not exactly double-representable; the nearest
  // representable seed below 2^64 must load without wrapping.
  const auto plan = testing::FaultPlan::from_json(
      "{\"seed\": 18446744073709549568}");  // 2^64 - 2048
  EXPECT_EQ(plan.seed, 18446744073709549568ull);

  // 2^64 and beyond: stoull-style wraparound to 0 would silently change
  // the fault schedule; the checked parse throws instead.
  EXPECT_THROW(
      testing::FaultPlan::from_json("{\"seed\": 18446744073709551616}"),
      std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": 1e300}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": -1}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": 1.5}"),
               std::invalid_argument);

  // http_status must fit an int exactly.
  EXPECT_THROW(
      testing::FaultPlan::from_json("{\"http_status\": 2147483648}"),
      std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"http_status\": 503.7}"),
               std::invalid_argument);

  // max_faulty_attempts is a size_t with the same contract.
  EXPECT_THROW(testing::FaultPlan::from_json(
                   "{\"max_faulty_attempts\": 18446744073709551616}"),
               std::invalid_argument);
  EXPECT_THROW(
      testing::FaultPlan::from_json("{\"max_faulty_attempts\": -2}"),
      std::invalid_argument);
}

TEST(FaultPlan, JsonRejectsNonFiniteAndTrailingGarbage) {
  EXPECT_THROW(testing::FaultPlan::from_json("{\"stall_rate\": NaN}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"stall_rate\": Infinity}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"stall_rate\": 1e999}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": 01}"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(testing::FaultPlan::from_json("{\"seed\": 1}}"),
               std::invalid_argument);
}

TEST(FaultPlan, LoadReadsAPlanFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "abr_fault_plan_test.json";
  {
    std::ofstream out(path);
    out << "{\"seed\": 9, \"reset_rate\": 0.5, \"max_faulty_attempts\": 1}\n";
  }
  const auto plan = testing::FaultPlan::load(path.string());
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.reset_rate, 0.5);
  EXPECT_EQ(plan.max_faulty_attempts, 1u);
  std::filesystem::remove(path);
  EXPECT_THROW(testing::FaultPlan::load(path.string()), std::runtime_error);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  sim::RetryPolicy policy;
  policy.initial_backoff_s = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 3.0;
  policy.jitter_fraction = 0.0;
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2, rng), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3, rng), 2.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(4, rng), 3.0);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff_s(9, rng), 3.0);
}

TEST(RetryPolicy, JitterIsSeededAndBounded) {
  sim::RetryPolicy policy;
  policy.initial_backoff_s = 1.0;
  policy.jitter_fraction = 0.25;
  util::Rng a(5);
  util::Rng b(5);
  for (int i = 0; i < 100; ++i) {
    const double x = policy.backoff_s(1, a);
    EXPECT_DOUBLE_EQ(x, policy.backoff_s(1, b));  // same seed, same schedule
    EXPECT_GE(x, 0.75);
    EXPECT_LE(x, 1.25);
  }
}

sim::SessionResult run_faulty_session(const trace::ThroughputTrace& trace,
                                      const media::VideoManifest& manifest,
                                      const testing::FaultPlan& plan,
                                      const sim::RetryPolicy& retry) {
  const auto qoe = abr::testing::balanced_qoe();
  sim::TraceChunkSource base(trace, manifest);
  testing::FaultySource source(base, plan, retry);
  core::BufferBasedController controller(5.0, 10.0);
  predict::HarmonicMeanPredictor predictor(5);
  sim::PlayerSession session(manifest, qoe, {});
  return session.run(source, controller, predictor);
}

TEST(FaultySource, SessionsAreBitIdenticalAcrossRuns) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto traces = trace::make_dataset(trace::DatasetKind::kHsdpa, 1, 320.0,
                                          2024);
  const auto plan = heavy_plan();
  const auto a = run_faulty_session(traces[0], manifest, plan, {});
  const auto b = run_faulty_session(traces[0], manifest, plan, {});
  ASSERT_EQ(a.chunks.size(), b.chunks.size());
  for (std::size_t k = 0; k < a.chunks.size(); ++k) {
    EXPECT_EQ(a.chunks[k].level, b.chunks[k].level);
    EXPECT_EQ(a.chunks[k].attempts, b.chunks[k].attempts);
    EXPECT_EQ(a.chunks[k].skipped, b.chunks[k].skipped);
    EXPECT_DOUBLE_EQ(a.chunks[k].download_s, b.chunks[k].download_s);
    EXPECT_DOUBLE_EQ(a.chunks[k].rebuffer_s, b.chunks[k].rebuffer_s);
    EXPECT_DOUBLE_EQ(a.chunks[k].buffer_after_s, b.chunks[k].buffer_after_s);
  }
  EXPECT_DOUBLE_EQ(a.qoe, b.qoe);
}

TEST(FaultySource, NoFaultPlanBehavesLikeBareSource) {
  const auto manifest = abr::testing::small_manifest();
  const auto trace = trace::ThroughputTrace::constant(2000.0, 1000.0);
  const auto qoe = abr::testing::balanced_qoe();
  core::BufferBasedController bare_controller(5.0, 10.0);
  predict::HarmonicMeanPredictor bare_predictor(5);
  const auto bare = sim::simulate(trace, manifest, qoe, {}, bare_controller,
                                  bare_predictor);
  testing::FaultPlan empty_plan;  // all rates zero
  const auto wrapped = run_faulty_session(trace, manifest, empty_plan, {});
  ASSERT_EQ(bare.chunks.size(), wrapped.chunks.size());
  for (std::size_t k = 0; k < bare.chunks.size(); ++k) {
    EXPECT_EQ(bare.chunks[k].level, wrapped.chunks[k].level);
    EXPECT_DOUBLE_EQ(bare.chunks[k].download_s, wrapped.chunks[k].download_s);
    EXPECT_EQ(wrapped.chunks[k].attempts, 1u);
  }
  EXPECT_DOUBLE_EQ(bare.qoe, wrapped.qoe);
}

TEST(FaultySource, HeavyFaultsDegradeQoeButSessionCompletes) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto traces = trace::make_dataset(trace::DatasetKind::kHsdpa, 1, 320.0,
                                          2024);
  const auto qoe = abr::testing::balanced_qoe();
  core::BufferBasedController clean_controller(5.0, 10.0);
  predict::HarmonicMeanPredictor clean_predictor(5);
  const auto clean = sim::simulate(traces[0], manifest, qoe, {},
                                   clean_controller, clean_predictor);

  sim::TraceChunkSource base(traces[0], manifest);
  testing::FaultySource source(base, heavy_plan(), {});
  core::BufferBasedController faulty_controller(5.0, 10.0);
  predict::HarmonicMeanPredictor faulty_predictor(5);
  sim::PlayerSession session(manifest, qoe, {});
  const auto faulty = session.run(source, faulty_controller, faulty_predictor);

  ASSERT_EQ(faulty.chunks.size(), manifest.chunk_count());
  EXPECT_GT(source.faults_injected(), 0u);
  EXPECT_GT(source.retries(), 0u);
  EXPECT_GT(faulty.total_attempts, manifest.chunk_count());
  // The controller pays for the faults one way or another: lost time lowers
  // the buffer, which lowers the chosen bitrates and the session QoE. (It
  // does not necessarily rebuffer more — BB trades bitrate for safety.)
  EXPECT_LT(faulty.qoe, clean.qoe);
  EXPECT_LT(faulty.average_bitrate_kbps, clean.average_bitrate_kbps);
  EXPECT_EQ(faulty.skipped_chunks, 0u);  // retry budget beats the fault depth
}

TEST(FaultySource, DoomedChunksAreSkippedWithHonestRebufferCharge) {
  const auto manifest = abr::testing::small_manifest();
  const auto trace = trace::ThroughputTrace::constant(2000.0, 1000.0);
  testing::FaultPlan doom;
  doom.reset_rate = 1.0;
  doom.max_faulty_attempts = 1000;  // beyond any retry budget
  sim::RetryPolicy retry;
  retry.max_attempts = 3;
  const auto qoe_model = abr::testing::balanced_qoe();
  sim::TraceChunkSource base(trace, manifest);
  testing::FaultySource source(base, doom, retry);
  // A fixed non-zero level so the degradation path (fall back to rung 0,
  // then skip) is exercised on every chunk.
  abr::testing::FixedLevelController controller(2);
  abr::testing::ConstantPredictor predictor(2000.0);
  sim::PlayerSession session(manifest, qoe_model, {});
  const auto result = session.run(source, controller, predictor);

  ASSERT_EQ(result.chunks.size(), manifest.chunk_count());
  EXPECT_EQ(result.skipped_chunks, manifest.chunk_count());
  const double chunk_duration = manifest.chunk_duration_s();
  for (const auto& record : result.chunks) {
    EXPECT_TRUE(record.skipped);
    EXPECT_DOUBLE_EQ(record.bitrate_kbps, 0.0);
    // Chosen level failed, fallback failed: two exhausted retry loops.
    EXPECT_EQ(record.attempts, 2 * retry.max_attempts);
    EXPECT_GE(record.rebuffer_s, chunk_duration);  // the skip charge
    EXPECT_DOUBLE_EQ(record.buffer_after_s, 0.0);  // nothing ever arrived
  }
  EXPECT_LT(result.qoe, 0.0);  // all stall penalty, no quality

  // The QoE decomposition (Eq. 5) must still hold from the chunk log.
  const auto qoe = abr::testing::balanced_qoe();
  std::vector<double> bitrates;
  std::vector<double> rebuffers;
  for (const auto& record : result.chunks) {
    bitrates.push_back(record.bitrate_kbps);
    rebuffers.push_back(record.rebuffer_s);
  }
  EXPECT_NEAR(result.qoe,
              qoe.session_qoe(bitrates, rebuffers, result.startup_delay_s),
              1e-6);
}

/// Fails every transfer above the lowest rung; delivers level 0 faithfully.
class LowestRungOnlySource final : public sim::ChunkSource {
 public:
  LowestRungOnlySource(const trace::ThroughputTrace& trace,
                       const media::VideoManifest& manifest)
      : inner_(trace, manifest) {}

  sim::FetchOutcome fetch(std::size_t chunk, std::size_t level) override {
    if (level != 0) {
      inner_.wait(0.3);  // the failed attempts burn some time
      sim::FetchOutcome failed;
      failed.failed = true;
      failed.attempts = 2;
      failed.duration_s = 0.3;
      return failed;
    }
    return inner_.fetch(chunk, 0);
  }
  void wait(double seconds) override { inner_.wait(seconds); }
  double now() const override { return inner_.now(); }

 private:
  sim::TraceChunkSource inner_;
};

TEST(PlayerSession, DegradesToLowestRungWhenChosenLevelFails) {
  const auto manifest = abr::testing::small_manifest();
  const auto trace = trace::ThroughputTrace::constant(5000.0, 1000.0);
  const auto qoe = abr::testing::balanced_qoe();
  LowestRungOnlySource source(trace, manifest);
  // Always asks for the top rung; every chunk must fall back to rung 0.
  abr::testing::FixedLevelController controller(2);
  abr::testing::ConstantPredictor predictor(5000.0);
  sim::PlayerSession session(manifest, qoe, {});
  const auto result = session.run(source, controller, predictor);

  ASSERT_EQ(result.chunks.size(), manifest.chunk_count());
  EXPECT_EQ(result.degraded_chunks, manifest.chunk_count());
  EXPECT_EQ(result.skipped_chunks, 0u);
  for (const auto& record : result.chunks) {
    EXPECT_TRUE(record.degraded);
    EXPECT_FALSE(record.skipped);
    EXPECT_EQ(record.level, 0u);
    EXPECT_DOUBLE_EQ(record.bitrate_kbps, manifest.bitrate_kbps(0));
    EXPECT_EQ(record.attempts, 3u);  // 2 failed high + 1 successful low
  }
}

TEST(PlayerSession, DegradationCanBeDisabled) {
  const auto manifest = abr::testing::small_manifest();
  const auto trace = trace::ThroughputTrace::constant(5000.0, 1000.0);
  const auto qoe = abr::testing::balanced_qoe();
  LowestRungOnlySource source(trace, manifest);
  abr::testing::FixedLevelController controller(2);
  abr::testing::ConstantPredictor predictor(5000.0);
  sim::SessionConfig config;
  config.degrade_on_failure = false;
  sim::PlayerSession session(manifest, qoe, config);
  const auto result = session.run(source, controller, predictor);
  EXPECT_EQ(result.degraded_chunks, 0u);
  EXPECT_EQ(result.skipped_chunks, manifest.chunk_count());
}

}  // namespace
}  // namespace abr
