// Hostile-input coverage for the flat-JSON line parser shared by the
// session journal reader and abrreport: truncated records, NaN/Inf number
// spellings, nesting attempts, duplicate keys, overflowing numbers, and
// trailing garbage. The same surface the fuzz_flat_json harness explores,
// pinned here as named regression cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "abrreport.hpp"

namespace abr::tools {
namespace {

JsonObject must_parse(const std::string& line) {
  JsonObject object;
  std::string error;
  EXPECT_TRUE(parse_flat_json(line, object, error)) << line << ": " << error;
  EXPECT_TRUE(error.empty());
  return object;
}

void must_reject(const std::string& line) {
  JsonObject object;
  std::string error;
  EXPECT_FALSE(parse_flat_json(line, object, error)) << line;
  EXPECT_FALSE(error.empty()) << "rejection must carry an error: " << line;
}

TEST(FlatJsonHostile, TruncatedRecords) {
  must_reject("");
  must_reject("{");
  must_reject("{\"type\"");
  must_reject("{\"type\":");
  must_reject("{\"type\": \"chunk\"");
  must_reject("{\"type\": \"chunk\",");
  must_reject("{\"a\": 1, ");
  must_reject("{\"a\": \"unterminated");
}

TEST(FlatJsonHostile, NanAndInfLiteralsAreMalformed) {
  // A journal writer can only emit finite numbers; every textual spelling
  // of the non-finite values must be rejected, not smuggled in as a number
  // (strtod-based parsers accept several of these).
  must_reject("{\"x\": nan}");
  must_reject("{\"x\": NaN}");
  must_reject("{\"x\": inf}");
  must_reject("{\"x\": -inf}");
  must_reject("{\"x\": Infinity}");
  must_reject("{\"x\": -Infinity}");
  // Overflowing scientific notation would parse to +inf under strtod.
  must_reject("{\"x\": 1e999}");
}

TEST(FlatJsonHostile, StrictNumberGrammar) {
  must_reject("{\"x\": 007}");   // leading zeros
  must_reject("{\"x\": .5}");    // bare fraction
  must_reject("{\"x\": 1.}");    // empty fraction
  must_reject("{\"x\": 1e}");    // empty exponent
  must_reject("{\"x\": +1}");    // leading plus
  must_reject("{\"x\": 0x10}");  // hex
  const JsonObject ok = must_parse(
      "{\"a\": 0, \"b\": -0.5, \"c\": 1.25e3, \"d\": 2E-2}");
  EXPECT_DOUBLE_EQ(ok.at("a").number, 0.0);
  EXPECT_DOUBLE_EQ(ok.at("b").number, -0.5);
  EXPECT_DOUBLE_EQ(ok.at("c").number, 1250.0);
  EXPECT_DOUBLE_EQ(ok.at("d").number, 0.02);
  for (const auto& [key, value] : ok) {
    EXPECT_TRUE(std::isfinite(value.number)) << key;
  }
}

TEST(FlatJsonHostile, NestingIsRejected) {
  // The journal schema is flat by design; nested containers are malformed.
  must_reject("{\"x\": {\"y\": 1}}");
  must_reject("{\"x\": [1, 2]}");
  // Deep nesting must fail cleanly too (no recursion blow-up).
  std::string deep = "{\"x\": ";
  for (int i = 0; i < 2000; ++i) deep += "{\"y\": ";
  must_reject(deep);
}

TEST(FlatJsonHostile, DuplicateKeysKeepOneEntry) {
  // std::map semantics: the record stays well-formed with a single entry;
  // which value wins is an implementation detail, but parsing must agree
  // with itself (re-parse gives the same object — the fuzz invariant).
  const JsonObject object = must_parse("{\"x\": 1, \"x\": 2}");
  EXPECT_EQ(object.size(), 1u);
  EXPECT_EQ(object.count("x"), 1u);
}

TEST(FlatJsonHostile, TrailingGarbage) {
  must_reject("{\"a\": 1} tail");
  must_reject("{\"a\": 1}}");
  must_reject("{\"a\": 1}{\"b\": 2}");
}

TEST(FlatJsonHostile, ValidJournalLinesStillParse) {
  const JsonObject chunk = must_parse(
      "{\"type\": \"chunk\", \"session\": \"s0\", \"index\": 3, "
      "\"bitrate_kbps\": 1850.0, \"degraded\": false, \"skipped\": true}");
  EXPECT_EQ(chunk.at("type").text, "chunk");
  EXPECT_EQ(chunk.at("type").kind, JsonValue::Kind::kString);
  EXPECT_DOUBLE_EQ(chunk.at("index").number, 3.0);
  EXPECT_FALSE(chunk.at("degraded").boolean);
  EXPECT_TRUE(chunk.at("skipped").boolean);
}

}  // namespace
}  // namespace abr::tools
