#include "sim/fleet_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/buffer_based.hpp"
#include "core/festive.hpp"
#include "core/rate_based.hpp"
#include "predict/predictor.hpp"
#include "sim/multiplayer.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace abr::sim {
namespace {

using ::abr::testing::ConstantPredictor;
using ::abr::testing::FixedLevelController;

// The SoA engine's contract is *bit* identity with the reference engine, so
// every double is compared with ==, not a tolerance.
void expect_identical(const MultiPlayerResult& a, const MultiPlayerResult& b) {
  EXPECT_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.link_utilization, b.link_utilization);
  ASSERT_EQ(a.players.size(), b.players.size());
  for (std::size_t i = 0; i < a.players.size(); ++i) {
    const SessionResult& pa = a.players[i];
    const SessionResult& pb = b.players[i];
    EXPECT_EQ(pa.startup_delay_s, pb.startup_delay_s) << "player " << i;
    EXPECT_EQ(pa.total_rebuffer_s, pb.total_rebuffer_s) << "player " << i;
    EXPECT_EQ(pa.qoe, pb.qoe) << "player " << i;
    EXPECT_EQ(pa.session_duration_s, pb.session_duration_s) << "player " << i;
    EXPECT_EQ(pa.average_bitrate_kbps, pb.average_bitrate_kbps)
        << "player " << i;
    EXPECT_EQ(pa.average_bitrate_change_kbps, pb.average_bitrate_change_kbps)
        << "player " << i;
    EXPECT_EQ(pa.total_wait_s, pb.total_wait_s) << "player " << i;
    EXPECT_EQ(pa.rebuffer_chunk_fraction, pb.rebuffer_chunk_fraction)
        << "player " << i;
    EXPECT_EQ(pa.switch_count, pb.switch_count) << "player " << i;
    ASSERT_EQ(pa.chunks.size(), pb.chunks.size()) << "player " << i;
    for (std::size_t k = 0; k < pa.chunks.size(); ++k) {
      const ChunkRecord& ra = pa.chunks[k];
      const ChunkRecord& rb = pb.chunks[k];
      EXPECT_EQ(ra.index, rb.index) << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.level, rb.level) << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.bitrate_kbps, rb.bitrate_kbps)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.size_kilobits, rb.size_kilobits)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.start_s, rb.start_s) << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.download_s, rb.download_s)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.throughput_kbps, rb.throughput_kbps)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.predicted_kbps, rb.predicted_kbps)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.buffer_before_s, rb.buffer_before_s)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.buffer_after_s, rb.buffer_after_s)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.rebuffer_s, rb.rebuffer_s)
          << "player " << i << " chunk " << k;
      EXPECT_EQ(ra.wait_s, rb.wait_s) << "player " << i << " chunk " << k;
    }
  }
}

TEST(FleetEngine, ValidatesArgumentsLikeReference) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto link = trace::ThroughputTrace::constant(2000.0, 1000.0);
  FixedLevelController controller(0);
  ConstantPredictor predictor(1000.0);
  BitrateController* controllers[] = {&controller};
  predict::ThroughputPredictor* predictors[] = {&predictor, &predictor};
  MultiPlayerConfig config;
  EXPECT_THROW(simulate_shared_link_soa(link, manifest, qoe, config,
                                        std::span<BitrateController* const>{},
                                        std::span(predictors, 0)),
               std::invalid_argument);
  EXPECT_THROW(simulate_shared_link_soa(link, manifest, qoe, config,
                                        std::span(controllers, 1),
                                        std::span(predictors, 2)),
               std::invalid_argument);
  MultiPlayerConfig fixed;
  fixed.session.startup_policy = StartupPolicy::kFixedDelay;
  EXPECT_THROW(simulate_shared_link_soa(link, manifest, qoe, fixed,
                                        std::span(controllers, 1),
                                        std::span(predictors, 1)),
               std::invalid_argument);
  MultiPlayerConfig bad_step;
  bad_step.time_step_s = 0.0;
  EXPECT_THROW(simulate_shared_link_soa(link, manifest, qoe, bad_step,
                                        std::span(controllers, 1),
                                        std::span(predictors, 1)),
               std::invalid_argument);
}

TEST(FleetEngine, BitIdenticalToReferenceHeterogeneousThreePlayers) {
  // Same seeded scenario as SharedLink.InvariantsWithHeterogeneousControllers:
  // a variable Markov link with three different controllers exercises rate
  // switches, rebuffers, and buffer-full waits.
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = testing::balanced_qoe();
  util::Rng rng(3);
  const auto link = trace::MarkovConfig{}.generate(rng, 600.0).scaled(2.0);

  const auto run = [&](bool soa) {
    core::RateBasedController rb;
    core::BufferBasedController bb;
    core::FestiveController festive;
    predict::HarmonicMeanPredictor hm1(5);
    predict::HarmonicMeanPredictor hm2(5);
    predict::HarmonicMeanPredictor hm3(5);
    BitrateController* controllers[] = {&rb, &bb, &festive};
    predict::ThroughputPredictor* predictors[] = {&hm1, &hm2, &hm3};
    MultiPlayerConfig config;
    config.startup_stagger_s = 1.5;
    return soa ? simulate_shared_link_soa(link, manifest, qoe, config,
                                          std::span(controllers, 3),
                                          std::span(predictors, 3))
               : simulate_shared_link(link, manifest, qoe, config,
                                      std::span(controllers, 3),
                                      std::span(predictors, 3));
  };

  const MultiPlayerResult reference = run(false);
  const MultiPlayerResult soa = run(true);
  expect_identical(reference, soa);
}

TEST(FleetEngine, BitIdenticalToReferenceAt256Players) {
  // A fleet-scale population: staggered joins, mixed fixed rungs, and a link
  // generous enough that players spend most of their time buffer-full
  // waiting — the exact regime the event heap optimizes, so divergence in
  // the wait/wake scheduling would show up here.
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const std::size_t n = 256;
  const auto link =
      trace::ThroughputTrace::constant(400.0 * static_cast<double>(n), 1000.0);

  const auto run = [&](bool soa) {
    std::vector<std::unique_ptr<FixedLevelController>> controllers;
    std::vector<std::unique_ptr<ConstantPredictor>> predictors;
    std::vector<BitrateController*> controller_ptrs;
    std::vector<predict::ThroughputPredictor*> predictor_ptrs;
    for (std::size_t i = 0; i < n; ++i) {
      controllers.push_back(std::make_unique<FixedLevelController>(i % 3));
      predictors.push_back(std::make_unique<ConstantPredictor>(400.0));
      controller_ptrs.push_back(controllers.back().get());
      predictor_ptrs.push_back(predictors.back().get());
    }
    MultiPlayerConfig config;
    config.startup_stagger_s = 0.1;
    return soa ? simulate_shared_link_soa(
                     link, manifest, qoe, config,
                     std::span<BitrateController* const>(controller_ptrs),
                     std::span<predict::ThroughputPredictor* const>(
                         predictor_ptrs))
               : simulate_shared_link(
                     link, manifest, qoe, config,
                     std::span<BitrateController* const>(controller_ptrs),
                     std::span<predict::ThroughputPredictor* const>(
                         predictor_ptrs));
  };

  const MultiPlayerResult reference = run(false);
  const MultiPlayerResult soa = run(true);
  expect_identical(reference, soa);
}

TEST(FleetEngine, StarvedLinkThrowsLikeReference) {
  const auto manifest = testing::small_manifest();
  const auto qoe = testing::balanced_qoe();
  const auto link = trace::ThroughputTrace::constant(1.0, 1000.0);
  FixedLevelController controller(2);
  ConstantPredictor predictor(1.0);
  BitrateController* controllers[] = {&controller};
  predict::ThroughputPredictor* predictors[] = {&predictor};
  EXPECT_THROW(simulate_shared_link_soa(link, manifest, qoe, {},
                                        std::span(controllers, 1),
                                        std::span(predictors, 1)),
               std::runtime_error);
}

}  // namespace
}  // namespace abr::sim
