// Golden-file regression for the MPC family: the exact decision sequence
// (and resulting session dynamics) of MPC, RobustMPC, and FastMPC on two
// fixed seeded traces is committed under tests/golden/ and must never drift
// unintentionally. Everything in the pipeline is deterministic, so the
// comparison is bit-exact on the serialized log.
//
// To regenerate after an *intentional* behaviour change:
//   ABR_UPDATE_GOLDEN=1 ./build/tests/abr_tests --gtest_filter='GoldenDecisions.*'
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/algorithms.hpp"
#include "sim/chunk_source.hpp"
#include "sim/player.hpp"
#include "test_helpers.hpp"
#include "testing/fault_plan.hpp"
#include "testing/faulty_source.hpp"
#include "trace/generators.hpp"

#ifndef ABR_GOLDEN_DIR
#error "ABR_GOLDEN_DIR must be defined by the build"
#endif

namespace abr {
namespace {

struct GoldenTrace {
  const char* key;
  trace::ThroughputTrace trace;
};

std::vector<GoldenTrace> golden_traces() {
  std::vector<GoldenTrace> traces;
  traces.push_back({"hsdpa2024",
                    trace::make_dataset(trace::DatasetKind::kHsdpa, 1, 320.0,
                                        2024)[0]});
  traces.push_back({"fcc7", trace::make_dataset(trace::DatasetKind::kFcc, 1,
                                                320.0, 7)[0]});
  return traces;
}

/// Serializes a session to the golden format: one line per chunk with the
/// decision and its measurable consequences, then the session QoE. %.17g
/// round-trips doubles exactly, so equality of the text implies equality of
/// the underlying numbers.
std::string serialize(const char* algorithm, const char* trace_key,
                      const sim::SessionResult& result) {
  std::ostringstream out;
  out << "# algorithm=" << algorithm << " trace=" << trace_key << "\n";
  out << "# chunk level bitrate_kbps download_s rebuffer_s\n";
  char line[160];
  for (const auto& record : result.chunks) {
    std::snprintf(line, sizeof(line), "%zu %zu %.17g %.17g %.17g\n",
                  record.index, record.level, record.bitrate_kbps,
                  record.download_s, record.rebuffer_s);
    out << line;
  }
  char footer[64];
  std::snprintf(footer, sizeof(footer), "qoe %.17g\n", result.qoe);
  out << footer;
  return out.str();
}

void check_golden(core::Algorithm algorithm, const char* key,
                  const core::AlgorithmOptions& options) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = abr::testing::balanced_qoe();
  const bool update = std::getenv("ABR_UPDATE_GOLDEN") != nullptr;

  for (const auto& golden : golden_traces()) {
    auto instance = core::make_algorithm(algorithm, manifest, qoe, options);
    const auto result =
        sim::simulate(golden.trace, manifest, qoe, {}, *instance.controller,
                      *instance.predictor);
    const std::string actual = serialize(key, golden.key, result);
    const std::string path = std::string(ABR_GOLDEN_DIR) + "/" + key + "_" +
                             golden.key + ".txt";
    if (update) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with ABR_UPDATE_GOLDEN=1";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "decision log for " << key << " on " << golden.key
        << " drifted from " << path
        << " — if the change is intentional, regenerate with "
           "ABR_UPDATE_GOLDEN=1 and review the diff";
  }
}

TEST(GoldenDecisions, MpcIsBitExact) {
  check_golden(core::Algorithm::kMpc, "mpc", {});
}

TEST(GoldenDecisions, RobustMpcIsBitExact) {
  check_golden(core::Algorithm::kRobustMpc, "robustmpc", {});
}

TEST(GoldenDecisions, FastMpcIsBitExact) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = abr::testing::balanced_qoe();
  core::AlgorithmOptions options;
  options.fastmpc_table = core::default_fastmpc_table(manifest, qoe, 30.0);
  check_golden(core::Algorithm::kFastMpc, "fastmpc", options);
}

TEST(GoldenDecisions, BolaIsBitExact) {
  check_golden(core::Algorithm::kBola, "bola", {});
}

// BOLA's decision log must also be pinned under a fault storm: the faulty
// delivery path perturbs buffer dynamics, so drift in either the controller
// or the fault machinery shows up here. Two back-to-back runs must agree
// byte-for-byte before either is compared against the committed golden.
TEST(GoldenDecisions, BolaUnderFaultsIsBitExact) {
  const auto manifest = media::VideoManifest::envivio_default();
  const auto qoe = abr::testing::balanced_qoe();
  const bool update = std::getenv("ABR_UPDATE_GOLDEN") != nullptr;

  abr::testing::FaultPlan plan;
  plan.seed = 97;
  plan.latency_rate = 0.05;
  plan.stall_rate = 0.05;
  plan.partial_rate = 0.03;
  plan.reset_rate = 0.03;
  plan.http_error_rate = 0.04;

  for (const auto& golden : golden_traces()) {
    auto run_once = [&] {
      auto instance =
          core::make_algorithm(core::Algorithm::kBola, manifest, qoe, {});
      sim::TraceChunkSource base(golden.trace, manifest);
      abr::testing::FaultySource faulty(base, plan);
      const sim::PlayerSession player(manifest, qoe, {});
      return player.run(faulty, *instance.controller, *instance.predictor);
    };
    const std::string actual =
        serialize("bola_faults", golden.key, run_once());
    const std::string again =
        serialize("bola_faults", golden.key, run_once());
    ASSERT_EQ(actual, again)
        << "BOLA under faults is non-deterministic on " << golden.key;

    const std::string path = std::string(ABR_GOLDEN_DIR) + "/bola_faults_" +
                             golden.key + ".txt";
    if (update) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      out << actual;
      continue;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " — regenerate with ABR_UPDATE_GOLDEN=1";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(expected.str(), actual)
        << "BOLA-under-faults decision log drifted from " << path
        << " — if the change is intentional, regenerate with "
           "ABR_UPDATE_GOLDEN=1 and review the diff";
  }
}

}  // namespace
}  // namespace abr
